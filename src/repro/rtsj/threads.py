"""Deterministic cooperative scheduler.

Threads are generator coroutines produced by the interpreter; each yield
is either an ``int`` (cycles to charge) or the :data:`YIELD` sentinel (end
the time slice, e.g. ``yieldnow()``).  Scheduling is strict-priority
round-robin: all runnable real-time threads run before any regular
thread, matching the RTSJ model where real-time threads preempt regular
ones.  A pending garbage collection runs between slices and pauses only
the regular threads.

The whole machine is single-CPU: the global cycle clock advances by every
charged cost, so "execution time" (Figure 12) is the final clock value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import (DeadlockError, ReproError, SanitizerViolation,
                      ThreadCrashError, ThreadSpawnError)
from .regions import MemoryArea
from .stats import Stats

#: yielded by a coroutine to voluntarily end its time slice
YIELD = object()

Coroutine = Generator[Any, None, None]


@dataclass
class SimThread:
    name: str
    coroutine: Coroutine
    realtime: bool = False
    done: bool = False
    #: shared regions this thread is currently inside (for refcounts)
    shared_stack: List[MemoryArea] = field(default_factory=list)
    #: live interpreter frames (GC root discovery)
    frames: List[Dict[str, Any]] = field(default_factory=list)
    #: cycles consumed by this thread
    cycles: int = 0
    #: clock value when the thread last got the CPU (latency metric)
    last_scheduled: int = 0
    max_dispatch_latency: int = 0

    @property
    def no_heap(self) -> bool:
        """Our RT forked threads are no-heap real-time threads."""
        return self.realtime


class Scheduler:
    def __init__(self, stats: Stats, quantum: int = 2000,
                 max_cycles: int = 2_000_000_000,
                 gc_hook: Optional[Callable[[], int]] = None,
                 checkpoint_hook: Optional[Callable[[], None]] = None,
                 degrade: bool = False,
                 fault_injector: Optional[Any] = None) -> None:
        self.stats = stats
        self.quantum = quantum
        self.max_cycles = max_cycles
        self.threads: List[SimThread] = []
        self.gc_hook = gc_hook  # returns pause cycles, or 0 if no GC ran
        #: sanitizer entry point, called once per scheduling round
        self.checkpoint_hook = checkpoint_hook
        #: graceful degradation: a failing thread is finished with a
        #: structured diagnostic and the run queue keeps draining;
        #: False (the default) preserves fail-stop semantics — the
        #: first failure aborts the run
        self.degrade = degrade
        #: structured diagnostics of threads that failed (degrade mode)
        self.diagnostics: List[ReproError] = []
        self.fault_injector = fault_injector
        self.failure: Optional[BaseException] = None
        # dispatch latency (cycles a runnable thread waited for the
        # CPU) — the metric the paper's real-time claims are about
        self._h_latency = stats.metrics.histogram(
            "repro_dispatch_latency_cycles",
            "cycles a thread waited between time slices",
            buckets=(100, 500, 1000, 2000, 5000, 10000, 50000, 200000))
        # pre-bound: skip the labels()/observe() pair per slice when the
        # registry is a null implementation (`repro bench` runs)
        self._observe_latency = not stats.metrics.null
        #: flight recorder (None when post-mortem recording is off)
        self._rec = stats.recorder

    def spawn(self, thread: SimThread) -> None:
        injector = self.fault_injector
        if injector is not None and injector.fire("thread_spawn",
                                                  thread.name):
            err = ThreadSpawnError(
                f"injected fault: spawn of thread '{thread.name}' "
                "denied")
            err.injected = True
            raise err
        thread.last_scheduled = self.stats.cycles
        self.threads.append(thread)
        self.stats.threads_spawned += 1

    # ------------------------------------------------------------------

    def _finish(self, thread: SimThread) -> None:
        from .regions import release_shared
        thread.done = True
        self.stats.tracer.emit(
            "thread-finished", thread.name, cycle=self.stats.cycles,
            thread=thread.name,
            attrs={"cycles": thread.cycles,
                   "max_dispatch_latency": thread.max_dispatch_latency})
        rec = self._rec
        if rec is not None:
            rec.record("thread-finished", thread.name,
                       cycle=self.stats.cycles, thread=thread.name,
                       attrs={"cycles": thread.cycles})
        # a terminating thread exits all its shared regions (Section 2.2)
        for area in reversed(thread.shared_stack):
            if release_shared(area, thread.name) or not area.live:
                self.stats.tracer.emit(
                    "region-destroyed", area.name,
                    cycle=self.stats.cycles, thread=thread.name)
        thread.shared_stack.clear()

    def _fail(self, thread: SimThread, err: BaseException) -> None:
        """A simulated thread failed: stamp the diagnostic, finish the
        thread, and either record it (degrade mode) or arm fail-stop."""
        if isinstance(err, ReproError):
            if err.thread is None:
                err.thread = thread.name
            if err.cycle is None:
                err.cycle = self.stats.cycles
        self.stats.tracer.emit(
            "thread-failed", thread.name, cycle=self.stats.cycles,
            thread=thread.name,
            attrs={"error": type(err).__name__, "message": str(err)})
        # an aborted thread may die inside open trace spans (LT watchdog
        # abort, ThreadCrashError mid-region): close them so exported
        # traces stay well-nested
        self.stats.tracer.close_abandoned(thread.name,
                                          cycle=self.stats.cycles)
        rec = self._rec
        if rec is not None:
            rec.record("thread-aborted", thread.name,
                       cycle=self.stats.cycles, thread=thread.name,
                       attrs={"error": type(err).__name__,
                              "message": str(err)})
        self._finish(thread)
        # a sanitizer violation means runtime state is already corrupt:
        # degrading past it would sanitize nothing, so it stays fatal
        if (self.degrade and isinstance(err, ReproError)
                and not isinstance(err, SanitizerViolation)):
            self.diagnostics.append(err)
            self.stats.threads_aborted += 1
            return
        if self.failure is None:
            self.failure = err

    def _run_slice(self, thread: SimThread) -> None:
        latency = self.stats.cycles - thread.last_scheduled
        if latency > thread.max_dispatch_latency:
            thread.max_dispatch_latency = latency
        if self._observe_latency:
            self._h_latency.labels(
                realtime="true" if thread.realtime else "false"
            ).observe(latency)
        # hot loop: every simulated cycle cost is one yielded int that
        # passes through here.  ``stats.cycles`` must advance per yield
        # (trace timestamps and watermarks read it mid-slice), but the
        # per-thread attribution is batched to one update per slice —
        # committed before _finish so the thread-finished event sees the
        # thread's final cycle count.
        budget = self.quantum
        stats = self.stats
        coro_next = thread.coroutine.__next__
        spent = 0
        try:
            while budget > 0:
                try:
                    item = coro_next()
                except StopIteration:
                    spent = self._commit(thread, spent)
                    self._finish(thread)
                    return
                except RecursionError:
                    # the simulated program's call stack overflowed the
                    # host interpreter's: surface it as the simulated
                    # platform's StackOverflowError equivalent
                    from ..errors import InterpreterError
                    spent = self._commit(thread, spent)
                    self._fail(thread, InterpreterError(
                        f"simulated call stack overflow in thread "
                        f"'{thread.name}' (deep recursion)"))
                    return
                except ReproError as err:
                    spent = self._commit(thread, spent)
                    self._fail(thread, err)
                    return
                except Exception as exc:
                    # a host-level crash inside one simulated thread
                    # must not abandon the whole run queue with a bare
                    # traceback: finish the thread and surface a
                    # structured diagnostic instead
                    spent = self._commit(thread, spent)
                    self._fail(thread, ThreadCrashError(
                        f"thread '{thread.name}' crashed: "
                        f"{type(exc).__name__}: {exc}", cause=exc))
                    return
                if item is YIELD:
                    break
                budget -= item
                spent += item
                stats.cycles += item
        finally:
            self._commit(thread, spent)
        thread.last_scheduled = self.stats.cycles

    def _commit(self, thread: SimThread, spent: int) -> int:
        """Fold one slice's cycles into the per-thread attribution.
        Returns 0 so callers can reset their accumulator."""
        if spent:
            thread.cycles += spent
            by_thread = self.stats.cycles_by_thread
            by_thread[thread.name] = \
                by_thread.get(thread.name, 0) + spent
        return 0

    def _shutdown(self) -> None:
        """Abort path: close every unfinished coroutine so region
        ``finally`` blocks run, shared regions are released, and thread
        counts return to zero.  Region epilogues charge cycles directly
        (they never yield), so ``close()`` cannot trip on a yield inside
        a ``finally``."""
        for thread in self.threads:
            if thread.done:
                continue
            try:
                thread.coroutine.close()
            except Exception:
                pass  # teardown is best-effort; the diagnostic is set
            # close() runs region finallys, but a finally that raised
            # (swallowed above) can still leave spans open
            self.stats.tracer.close_abandoned(thread.name,
                                              cycle=self.stats.cycles)
            self._finish(thread)

    def run(self) -> None:
        """Run until every thread finishes.  Re-raises the first simulated
        runtime failure after stopping all threads (in degrade mode,
        per-thread failures land in ``diagnostics`` instead and the
        queue keeps draining)."""
        try:
            self._run_loop()
        except BaseException:
            self._shutdown()
            raise

    def _run_loop(self) -> None:
        while True:
            if self.failure is not None:
                raise self.failure
            alive = [t for t in self.threads if not t.done]
            if not alive:
                return
            if self.stats.cycles > self.max_cycles:
                raise DeadlockError(
                    f"simulation exceeded {self.max_cycles} cycles "
                    "(runaway program?)")
            if self.checkpoint_hook is not None:
                self.checkpoint_hook()
            if self.gc_hook is not None:
                pause = self.gc_hook()
                if pause:
                    # the pause hits the global clock; real-time threads
                    # are not blocked by it (asserted via latency metrics)
                    self.stats.charge(pause, "<gc>")
                    for t in alive:
                        if t.realtime:
                            # RT threads keep running during GC: their
                            # next dispatch is not delayed by the pause
                            t.last_scheduled = self.stats.cycles
            ran_any = False
            # strict priority: real-time threads first
            for thread in [t for t in alive if t.realtime] + \
                          [t for t in alive if not t.realtime]:
                if thread.done:
                    continue
                self._run_slice(thread)
                ran_any = True
            if not ran_any:
                raise DeadlockError("no runnable threads")
