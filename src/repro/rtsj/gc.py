"""A stop-the-world mark-sweep collector for the simulated heap.

The collector pauses *regular* threads for a number of cycles proportional
to the live and dead object populations; real-time threads are never
paused (that is precisely the property the paper's region discipline
buys).  Roots are the thread stacks, the static fields, portal fields, and
references out of non-heap areas into the heap.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from .objects import ArrayStorage, ObjRef
from .regions import MemoryArea, RegionManager
from .stats import CostModel, Stats


def _scan_value(value: Any, frontier: List[ObjRef]) -> None:
    if isinstance(value, ObjRef) and not value.gc_mark:
        value.gc_mark = True
        frontier.append(value)


class GarbageCollector:
    def __init__(self, regions: RegionManager, cost_model: CostModel,
                 stats: Stats, trigger_bytes: int,
                 fault_injector: Optional[Any] = None) -> None:
        self.regions = regions
        self.cost = cost_model
        self.stats = stats
        self.trigger_bytes = trigger_bytes
        self.fault_injector = fault_injector
        self._h_pause = stats.metrics.histogram(
            "repro_gc_pause_cycles",
            "stop-the-world pause length per collection",
            buckets=(1000, 2000, 4000, 8000, 16000, 32000, 64000,
                     128000, 256000))
        self._g_heap = stats.metrics.gauge(
            "repro_heap_live_bytes", "heap bytes live after the last "
            "collection")

    def should_collect(self) -> bool:
        return self.regions.heap.bytes_used >= self.trigger_bytes

    def collect(self, roots: Iterable[Any]) -> int:
        """Mark-sweep the heap; returns the cycle cost of the pause."""
        heap = self.regions.heap
        # mark
        frontier: List[ObjRef] = []
        for root in roots:
            _scan_value(root, frontier)
        # conservative root set: every reference held by a non-heap area
        for area in self.regions.live_areas():
            if area.is_heap:
                continue
            for obj in area.objects:
                _scan_value(obj, frontier)
            for value in area.portals.values():
                _scan_value(value, frontier)
        while frontier:
            obj = frontier.pop()
            for value in obj.fields.values():
                if isinstance(value, ArrayStorage):
                    continue  # scalar storage holds no references
                _scan_value(value, frontier)
        # sweep the heap
        live: List[ObjRef] = []
        dead = 0
        for obj in heap.objects:
            if obj.gc_mark:
                live.append(obj)
            else:
                dead += 1
                heap.free_object_bytes(obj)
                obj.generation -= 1  # turn extant references dangling
        heap.objects = live
        # unmark everything we marked (live set + survivors elsewhere)
        for area in self.regions.live_areas():
            for obj in area.objects:
                obj.gc_mark = False
        pause = (self.cost.gc_base
                 + self.cost.gc_per_live_object * len(live)
                 + self.cost.gc_per_dead_object * dead)
        injector = self.fault_injector
        if injector is not None and injector.fire(
                "gc_pause_spike", f"pause={pause}"):
            # a pause spike models an unlucky collection (fragmented
            # heap, finalizer storm).  Regular threads eat the longer
            # pause; RT threads stay unpaused — the latency histogram
            # asserts the paper's claim survives the spike.
            pause *= injector.gc_spike_factor
            self.stats.tracer.emit(
                "fault-injected", "gc_pause_spike",
                cycle=self.stats.cycles, thread="<gc>",
                attrs={"site": "gc_pause_spike", "pause": pause})
        self.stats.tracer.emit(
            "gc", f"collected {dead}, live {len(live)}",
            cycle=self.stats.cycles, thread="<gc>",
            attrs={"collected": dead, "live": len(live), "pause": pause,
                   "heap_bytes": heap.bytes_used})
        rec = self.stats.recorder
        if rec is not None:
            rec.record("gc", f"collected {dead}",
                       cycle=self.stats.cycles, thread="<gc>",
                       attrs={"collected": dead, "live": len(live),
                              "pause": pause,
                              "heap_bytes": heap.bytes_used})
        self._h_pause.observe(pause)
        self._g_heap.set(heap.bytes_used)
        self.stats.gc_runs += 1
        self.stats.gc_pause_cycles += pause
        self.stats.objects_freed += dead
        self.stats.gc_objects_collected += dead
        return pause
