"""Chaos harness: deterministic fault-injection campaigns over the
example corpus, with bit-for-bit schedule replay (``repro chaos``)."""

from .driver import (ChaosOutcome, campaign_telemetry, replay_schedule,
                     run_chaos, run_one, verify_replay)

__all__ = ["ChaosOutcome", "campaign_telemetry", "replay_schedule",
           "run_chaos", "run_one", "verify_replay"]
