"""The chaos campaign driver.

One *campaign* runs every program in a corpus under N seeded fault
plans, with the region sanitizer armed and graceful degradation on, and
asserts the robustness contract:

* **no crash without a diagnostic** — every failing run ends in a
  structured :class:`ReproError` (catchable, ``diagnostic()``-able),
  never a bare host traceback;
* **sanitizer-clean** — a well-typed program never trips an invariant,
  no matter which faults are injected (the runtime's recovery paths
  must preserve O1–O3/R1–R3);
* **deterministic replay** — re-executing a run's recorded fault
  schedule through a :class:`ReplayInjector` reproduces the run
  bit-for-bit (same fault sequence, status, cycle count, output, and
  stats summary).

Outcome taxonomy (``ChaosOutcome.status``):

``clean``      completed, zero faults injected
``recovered``  completed despite injected faults (retries, spills,
               degrade-mode thread aborts)
``diagnosed``  the run failed, but with a structured diagnostic
``violation``  the sanitizer found broken runtime state — a real bug
``crash``      a non-``ReproError`` escaped — the bug class chaos hunts

``violation`` and ``crash`` fail the campaign; everything else is the
contract working as designed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.api import AnalyzedProgram, analyze
from ..errors import ReproError, SanitizerViolation
from ..interp.machine import Machine, RunOptions
from ..rtsj.faults import (FaultPlan, FaultRecord, ReplayInjector,
                           fault_key, load_schedule, save_schedule)

#: chaos runs bound the clock tightly: an injected fault that degrades
#: a producer/consumer pair into a busy-wait should end in a prompt
#: DeadlockError ("cleanly diagnosed"), not a wall-clock explosion
DEFAULT_MAX_CYCLES = 5_000_000

#: keys of a diagnostic dict that are stable across in-process runs
#: (messages embed object ids from a process-global counter, so they
#: are excluded from replay identity)
_ERROR_IDENTITY_KEYS = ("type", "site", "injected", "thread", "cycle",
                       "invariant", "checkpoint")


def _error_identity(diag: Optional[Dict[str, Any]]) \
        -> Optional[Dict[str, Any]]:
    if diag is None:
        return None
    return {k: diag[k] for k in _ERROR_IDENTITY_KEYS if k in diag}


def _output_sha(output: Sequence[str]) -> str:
    digest = hashlib.sha256()
    for line in output:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class ChaosOutcome:
    """What one seeded run did, in replay-comparable terms."""

    program: str
    seed: int
    status: str                      # clean|recovered|diagnosed|...
    cycles: int
    faults: List[FaultRecord] = field(default_factory=list)
    #: degrade-mode thread aborts (run still completed)
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)
    #: the terminal diagnostic when the run failed
    error: Optional[Dict[str, Any]] = None
    output: List[str] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)
    #: the run's flight recorder (when recording was requested); not
    #: part of the replay identity — recording is cycle-neutral
    recorder: Optional[Any] = field(default=None, repr=False,
                                    compare=False)

    @property
    def ok(self) -> bool:
        return self.status not in ("violation", "crash")

    def identity(self) -> Dict[str, Any]:
        """The replay-comparable projection of this outcome."""
        return {
            "faults": fault_key(self.faults),
            "status": self.status,
            "cycles": self.cycles,
            "output_sha256": _output_sha(self.output),
            "summary": self.summary,
            "error": _error_identity(self.error),
            "diagnostics": [_error_identity(d)
                            for d in self.diagnostics],
        }


def run_one(program: Union[str, AnalyzedProgram],
            plan: Optional[FaultPlan] = None,
            injector: Optional[Any] = None,
            label: str = "<program>",
            max_cycles: int = DEFAULT_MAX_CYCLES,
            record: bool = False,
            backend: str = "interp") -> ChaosOutcome:
    """Execute one program under one fault plan (or explicit injector),
    sanitizer armed, degradation on.  Never raises for simulated
    failures — they land in the outcome.  ``record`` arms the flight
    recorder (cycle-neutral, so replay identity is unaffected).
    ``backend`` is plumbed through to :class:`RunOptions`; with fault
    injection active the compiled backends decline the configuration
    and the run falls back to the interpreter, so replay identity is
    backend-independent by construction."""
    analyzed = analyze(program) if isinstance(program, str) else program
    if analyzed.errors:
        raise analyzed.errors[0]
    options = RunOptions(checks_enabled=True, validate=True,
                         fault_plan=plan, fault_injector=injector,
                         sanitize=True, degrade=True,
                         max_cycles=max_cycles, record=record,
                         backend=backend)
    machine = Machine(analyzed, options)
    status = "clean"
    error: Optional[Dict[str, Any]] = None
    try:
        machine.run()
    except SanitizerViolation as err:
        status, error = "violation", err.diagnostic()
    except ReproError as err:
        status, error = "diagnosed", err.diagnostic()
    except Exception as err:  # noqa: BLE001 - the bug class chaos hunts
        status = "crash"
        error = {"type": type(err).__name__, "message": str(err)}
    faults = (list(machine.fault_injector.injected)
              if machine.fault_injector is not None else [])
    diagnostics = [d.diagnostic()
                   for d in machine.scheduler.diagnostics]
    if status == "clean" and (faults or diagnostics):
        status = "recovered"
    return ChaosOutcome(
        program=label,
        seed=plan.seed if plan is not None else -1,
        status=status,
        cycles=machine.stats.cycles,
        faults=faults,
        diagnostics=diagnostics,
        error=error,
        output=list(machine.output),
        summary=machine.stats.summary(),
        recorder=machine.recorder)


def verify_replay(program: Union[str, AnalyzedProgram],
                  plan: FaultPlan, baseline: ChaosOutcome,
                  max_cycles: int = DEFAULT_MAX_CYCLES) -> List[str]:
    """Re-run ``baseline``'s recorded schedule through a
    :class:`ReplayInjector` and diff the replay-comparable identity.
    Returns the list of mismatches (empty = bit-for-bit replay)."""
    injector = ReplayInjector(baseline.faults, plan)
    replay = run_one(program, injector=injector, label=baseline.program,
                     max_cycles=max_cycles)
    mismatches: List[str] = []
    want, got = baseline.identity(), replay.identity()
    for key in want:
        if want[key] != got[key]:
            mismatches.append(
                f"{key}: recorded {want[key]!r} != replayed "
                f"{got[key]!r}")
    return mismatches


def run_chaos(corpus: Sequence[Tuple[str, str]],
              seeds: Sequence[int],
              rate: float = 0.02,
              rates: Optional[Dict[str, float]] = None,
              sites: Optional[Tuple[str, ...]] = None,
              gc_spike_factor: int = 8,
              max_cycles: int = DEFAULT_MAX_CYCLES,
              verify: bool = True,
              schedule_dir: Optional[str] = None,
              backend: str = "interp") -> Dict[str, Any]:
    """Run every (label, source) program under every seed; optionally
    verify replay and persist the schedules.  Returns a report dict
    with per-run outcomes and campaign-level pass/fail."""
    import os
    results: List[Dict[str, Any]] = []
    failures: List[str] = []
    for label, source in corpus:
        analyzed = analyze(source)
        if analyzed.errors:
            raise analyzed.errors[0]
        for seed in seeds:
            plan = FaultPlan(seed=seed, rate=rate, rates=rates or {},
                             sites=sites,
                             gc_spike_factor=gc_spike_factor)
            outcome = run_one(analyzed, plan=plan, label=label,
                              max_cycles=max_cycles,
                              record=schedule_dir is not None,
                              backend=backend)
            entry: Dict[str, Any] = {
                "program": label,
                "seed": seed,
                "status": outcome.status,
                "cycles": outcome.cycles,
                "faults": len(outcome.faults),
                "threads_aborted": outcome.summary.get(
                    "threads_aborted", 0),
                "error": outcome.error,
            }
            if not outcome.ok:
                failures.append(
                    f"{label} seed={seed}: {outcome.status} "
                    f"({(outcome.error or {}).get('type')})")
            if verify:
                mismatches = verify_replay(analyzed, plan, outcome,
                                           max_cycles=max_cycles)
                entry["replay_ok"] = not mismatches
                if mismatches:
                    failures.append(
                        f"{label} seed={seed}: non-replayable schedule "
                        f"({'; '.join(mismatches)})")
            if schedule_dir is not None:
                safe = label.replace("/", "_").replace(".", "_")
                path = os.path.join(schedule_dir,
                                    f"{safe}-seed{seed}.schedule.jsonl")
                save_schedule(path, plan, outcome.faults, meta={
                    "program": label,
                    "source": source,
                    "max_cycles": max_cycles,
                    "identity": outcome.identity(),
                })
                entry["schedule"] = path
                # post-mortem: any run that failed (terminal error) or
                # broke the contract dumps its flight record next to
                # the schedule, so `repro inspect --schedule` can join
                # the two and map each injected fault to its reaction
                if (outcome.recorder is not None
                        and (outcome.error is not None
                             or not outcome.ok)):
                    from ..obs.flightrec import dump_flight
                    flight_path = os.path.join(
                        schedule_dir, f"{safe}-seed{seed}.flight.jsonl")
                    dump_flight(outcome.recorder, flight_path, meta={
                        "mode": "chaos",
                        "program": label,
                        "seed": seed,
                        "status": outcome.status,
                        "error": outcome.error,
                        "summary": outcome.summary,
                    })
                    entry["flight"] = flight_path
            results.append(entry)
    statuses: Dict[str, int] = {}
    total_faults = 0
    for entry in results:
        statuses[entry["status"]] = statuses.get(entry["status"], 0) + 1
        total_faults += entry["faults"]
    return {
        "runs": len(results),
        "statuses": statuses,
        "faults_injected": total_faults,
        "failures": failures,
        "ok": not failures,
        "results": results,
    }


def campaign_telemetry(report: Dict[str, Any]) -> Dict[str, Any]:
    """The compact chaos taxonomy a telemetry envelope carries: the
    campaign-level counts plus per-program status breakdown, without
    the per-run detail (the full report stays in ``--json`` output and
    schedule files)."""
    by_program: Dict[str, Dict[str, int]] = {}
    replay_checked = replay_ok = 0
    for entry in report.get("results", []):
        program = by_program.setdefault(entry["program"], {})
        program[entry["status"]] = program.get(entry["status"], 0) + 1
        if "replay_ok" in entry:
            replay_checked += 1
            if entry["replay_ok"]:
                replay_ok += 1
    taxonomy: Dict[str, Any] = {
        "runs": report.get("runs", 0),
        "statuses": dict(report.get("statuses", {})),
        "faults_injected": report.get("faults_injected", 0),
        "failures": len(report.get("failures", [])),
        "ok": bool(report.get("ok")),
        "by_program": by_program,
    }
    if replay_checked:
        taxonomy["replay_checked"] = replay_checked
        taxonomy["replay_ok"] = replay_ok
    return taxonomy


def replay_schedule(path: str,
                    source: Optional[str] = None) -> Dict[str, Any]:
    """Re-execute a persisted schedule file.  The program source
    embedded in the schedule's metadata is used unless ``source``
    overrides it.  Returns {ok, mismatches, outcome}."""
    plan, records, meta = load_schedule(path)
    program = source if source is not None else meta.get("source")
    if not program:
        raise ValueError(
            f"schedule {path} embeds no program source; pass the "
            "program explicitly")
    max_cycles = int(meta.get("max_cycles", DEFAULT_MAX_CYCLES))
    injector = ReplayInjector(records, plan)
    outcome = run_one(program, injector=injector,
                      label=str(meta.get("program", path)),
                      max_cycles=max_cycles)
    mismatches: List[str] = []
    recorded = meta.get("identity")
    if recorded is not None:
        got = outcome.identity()
        for key, want in recorded.items():
            have = got.get(key)
            if key == "faults":
                # JSON round-trip turns the (site, seq) tuples into lists
                have = [list(pair) for pair in have]
            if want != have:
                mismatches.append(
                    f"{key}: recorded {want!r} != replayed {have!r}")
    return {"ok": not mismatches, "mismatches": mismatches,
            "outcome": outcome}
