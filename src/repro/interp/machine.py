"""The simulated machine: program + regions + GC + scheduler + checks.

``run_source`` is the one-call entry point used by the examples, tests and
benchmarks::

    result = run_source(SOURCE, RunOptions(checks_enabled=True))
    print(result.stats.cycles, result.output)

``checks_enabled=True`` is the RTSJ baseline (dynamic checks performed and
charged); ``checks_enabled=False`` is the paper's statically-checked mode.
``validate=True`` (default) additionally *verifies* every check without
charging cycles, which is how the test suite asserts Theorems 3/4: a
well-typed program behaves identically in both modes and never violates a
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.api import AnalyzedProgram, analyze
from ..core.relations import RelationGraph
from ..errors import OwnershipTypeError, ReproError
from ..obs import MetricsRegistry, ProfileCollector, Tracer
from ..rtsj.checks import CheckEngine
from ..rtsj.faults import FaultInjector, FaultPlan, RecoveryPolicy
from ..rtsj.gc import GarbageCollector
from ..rtsj.objects import ArrayStorage, ObjRef
from ..rtsj.regions import RegionManager
from ..rtsj.sanitizer import RegionSanitizer, SanitizerConfig
from ..rtsj.stats import CostModel, Stats
from ..rtsj.threads import Scheduler, SimThread
from .interpreter import Frame, Interpreter


@dataclass
class RunOptions:
    #: perform + charge the RTSJ dynamic checks (Figure 12's "Dynamic
    #: Checks" column); False = the statically-checked build
    checks_enabled: bool = True
    #: verify the checks without charging cycles (soundness assertion)
    validate: bool = True
    cost_model: CostModel = field(default_factory=CostModel)
    #: heap bytes that trigger a garbage collection
    gc_trigger_bytes: int = 1 << 20
    #: scheduler time slice in cycles
    quantum: int = 2000
    #: runaway-guard on the global clock
    max_cycles: int = 2_000_000_000
    #: observability: pass a pre-built tracer/registry to share them
    #: with the caller (the CLI does, to export after the run); None
    #: means the machine builds its own
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    #: record high-volume trace events (region enter/exit spans,
    #: allocations, individual checks); implied by ``--trace-out``
    trace_detail: bool = False
    #: False wires *null* observability sinks (tracer, metrics, profile)
    #: into the run: no events recorded, no histogram samples, no
    #: per-site attribution — the interpreter's instrumentation code
    #: paths are compiled out.  Used by ``repro bench`` so wall-clock
    #: measurements exclude observability overhead.  Explicitly passed
    #: ``tracer``/``metrics`` objects take precedence.
    instrument: bool = True
    # -- robustness plane (all off by default: a plain run compiles in
    #    none of the fault/sanitizer code paths) --
    #: seeded fault-injection plan; builds a FaultInjector for the run
    fault_plan: Optional[FaultPlan] = None
    #: pre-built injector (e.g. a ReplayInjector); wins over fault_plan
    fault_injector: Optional[Any] = None
    #: retry/backoff/spill policy used when an injector is active
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: run the region sanitizer at checkpoints
    sanitize: bool = False
    sanitizer_config: Optional[SanitizerConfig] = None
    #: graceful degradation: a failing thread is finished with a
    #: structured diagnostic instead of aborting the whole run
    degrade: bool = False
    # -- flight recorder (post-mortem ring buffer, off by default: a
    #    plain run carries ``recorder is None`` through every compiled
    #    closure and cycle counts stay byte-identical) --
    #: record causally-linked events into a bounded ring buffer
    record: bool = False
    #: ring capacity when ``record`` builds the recorder
    record_capacity: int = 1 << 16
    #: pre-built recorder (wins over ``record``); a
    #: ``NullFlightRecorder`` counts as recording-off
    recorder: Optional[Any] = None
    # -- sampling tier (always-on observability at bounded cost) --
    #: store only every N-th instant detail trace event per kind
    #: (checks, allocs); 1 = store everything
    trace_sample: int = 1
    #: store only every N-th high-volume flight record per kind; exact
    #: aggregates (kind_counts, check_totals) are kept regardless
    record_sample: int = 1
    # -- execution backend --
    #: "interp" = the coroutine interpreter; "py" = compiled Python
    #: source (fused straight-line code when the program/configuration
    #: allows, a faithful generator transliteration otherwise); "c" =
    #: compiled C via cffi.  Unsupported program/configuration
    #: combinations fall back towards the interpreter with identical
    #: observable behaviour (see ``execute``).  "py-fused"/"py-faithful"
    #: force one specific py form (tests/benchmarks).
    backend: str = "interp"


@dataclass
class RunResult:
    output: List[str]
    stats: Stats
    options: RunOptions
    #: structured diagnostics of threads aborted in degrade mode
    diagnostics: List[ReproError] = field(default_factory=list)
    #: faults injected during the run (replayable schedule)
    fault_records: List[Any] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class Machine:
    """One simulated execution of an analyzed program."""

    def __init__(self, analyzed: AnalyzedProgram,
                 options: Optional[RunOptions] = None) -> None:
        self.analyzed = analyzed
        self.options = options or RunOptions()
        self.cost_model = self.options.cost_model
        if self.options.instrument:
            tracer = self.options.tracer or Tracer()
            metrics = self.options.metrics or MetricsRegistry()
            profile = ProfileCollector()
        else:
            from ..obs import (NullMetricsRegistry, NullProfile,
                               NullTracer)
            tracer = self.options.tracer or NullTracer()
            metrics = self.options.metrics or NullMetricsRegistry()
            profile = NullProfile()
        if self.options.trace_detail:
            tracer.detailed = True
        if self.options.trace_sample > 1:
            tracer.sample = self.options.trace_sample
        # flight recorder: None unless asked for, so every subsystem's
        # ``recorder is not None`` test compiles the hooks out
        recorder = self.options.recorder
        if recorder is None and self.options.record:
            from ..obs import FlightRecorder
            recorder = FlightRecorder(self.options.record_capacity,
                                      sample=self.options.record_sample)
        if recorder is not None and not recorder.enabled:
            recorder = None
        self.recorder = recorder
        self.stats = Stats(tracer=tracer, metrics=metrics,
                           profile=profile, recorder=recorder)
        self.regions = RegionManager()
        if recorder is not None:
            recorder.bind_clock(self.stats)
            self.regions.attach_recorder(recorder)
        # fault-injection plane: an explicit injector (replay) wins
        # over a plan; both default to None so plain runs carry no hooks
        self.fault_injector = self.options.fault_injector
        if self.fault_injector is None \
                and self.options.fault_plan is not None:
            self.fault_injector = FaultInjector(self.options.fault_plan)
        self.recovery = self.options.recovery
        if self.fault_injector is not None:
            self.fault_injector.stats = self.stats
            self.regions.attach_injector(self.fault_injector)
        self.checks = CheckEngine(self.cost_model, self.stats,
                                  enabled=self.options.checks_enabled,
                                  validate=self.options.validate)
        self.checks.fault_injector = self.fault_injector
        self.gc = GarbageCollector(self.regions, self.cost_model,
                                   self.stats,
                                   self.options.gc_trigger_bytes,
                                   fault_injector=self.fault_injector)
        self.sanitizer: Optional[RegionSanitizer] = None
        if self.options.sanitize \
                or self.options.sanitizer_config is not None:
            self.sanitizer = RegionSanitizer(
                self.regions, self.stats,
                config=self.options.sanitizer_config)
        self.scheduler = Scheduler(self.stats,
                                   quantum=self.options.quantum,
                                   max_cycles=self.options.max_cycles,
                                   gc_hook=self._maybe_collect,
                                   checkpoint_hook=(
                                       self.sanitizer.on_quantum
                                       if self.sanitizer is not None
                                       else None),
                                   degrade=self.options.degrade,
                                   fault_injector=self.fault_injector)
        if self.sanitizer is not None:
            self.sanitizer.scheduler = self.scheduler
        self.statics: Dict[Tuple[str, str], Any] = {}
        self.output: List[str] = []
        self.interpreter = Interpreter(self)
        self._init_statics()
        # compiled program (codegen backends); None = interpret.  A
        # backend that cannot compile this program/configuration is a
        # routing decision, not an error: note the reason and interpret.
        self.program = None
        self.program_bailed = False
        self.codegen_fallback: Optional[str] = None
        if self.options.backend != "interp":
            from .codegen_base import CodegenUnsupported
            from .codegen_py import select_program
            try:
                self.program = select_program(self, self.options.backend)
            except CodegenUnsupported as exc:
                self.codegen_fallback = str(exc)

    # ------------------------------------------------------------------

    def _init_statics(self) -> None:
        from ..lang import ast
        from .interpreter import _literal_value
        for cls in self.analyzed.program.classes:
            for fld in cls.fields:
                if not fld.static:
                    continue
                value = None
                if fld.init is not None:
                    value = _literal_value(fld.init)
                elif isinstance(fld.declared_type, ast.PrimTypeAst):
                    value = {"int": 0, "float": 0.0,
                             "boolean": False}.get(fld.declared_type.name)
                self.statics[(cls.name, fld.name)] = value

    def charge_direct(self, thread: SimThread, cycles: int) -> None:
        """Charge cycles outside the scheduler's quantum accounting (used
        from ``finally`` blocks where yielding is unsafe)."""
        thread.cycles += cycles
        self.stats.charge(cycles, thread.name)

    def _gc_roots(self):
        for thread in self.scheduler.threads:
            for frame in thread.frames:
                if isinstance(frame, Frame):
                    if frame.this is not None:
                        yield frame.this
                    for value in frame.vars.values():
                        yield value
                    for value in frame.temps:
                        yield value
        for value in self.statics.values():
            yield value

    def _maybe_collect(self) -> int:
        if not self.gc.should_collect():
            return 0
        return self.gc.collect(self._gc_roots())

    # ------------------------------------------------------------------

    def _spawn_main(self, main_thread: SimThread) -> None:
        """Spawn the main thread under the recovery policy: injected
        denials are retried with backoff charged to the clock, same as
        fork-site denials inside the interpreter."""
        from ..errors import ThreadSpawnError
        attempt = 0
        while True:
            try:
                self.scheduler.spawn(main_thread)
                if attempt:
                    self.stats.faults_recovered += 1
                return
            except ThreadSpawnError as err:
                if not err.injected \
                        or attempt >= self.recovery.max_retries:
                    if self.recorder is not None:
                        self.recorder.record(
                            "thread-aborted", "main",
                            cycle=self.stats.cycles, thread="main",
                            attrs={"error": type(err).__name__})
                    raise
                backoff = self.recovery.backoff_cycles(attempt)
                self.stats.recovery_retries += 1
                self.stats.recovery_backoff_cycles += backoff
                if self.recorder is not None:
                    self.recorder.record(
                        "recovery", f"retry {attempt}",
                        cycle=self.stats.cycles, thread="main",
                        attrs={"backoff": backoff, "attempt": attempt})
                attempt += 1
                self.stats.charge(backoff, "main")

    def run(self) -> RunResult:
        main_thread = SimThread(name="main", coroutine=iter(()))
        main_thread.coroutine = (
            self.program.main_coroutine(main_thread)
            if self.program is not None
            else self.interpreter.main_coroutine(main_thread))
        if self.recorder is not None:
            eid = self.recorder.record(
                "thread-spawned", "main", cycle=0, thread="main",
                attrs={"realtime": False, "method": "<main>"})
            self.recorder.seed("main", eid)
        try:
            self._spawn_main(main_thread)
            self.scheduler.run()
            if self.sanitizer is not None:
                self.sanitizer.on_end()
        finally:
            # publish end-of-run gauges even when the run failed: the
            # trace/metrics files are most valuable for a crashed run
            self.finalize_metrics()
        return RunResult(
            self.output, self.stats, self.options,
            diagnostics=list(self.scheduler.diagnostics),
            fault_records=(list(self.fault_injector.injected)
                           if self.fault_injector is not None else []))

    def finalize_metrics(self) -> None:
        """Mirror the flat counters and per-region/per-thread state into
        the metrics registry (histograms are maintained live)."""
        stats, registry = self.stats, self.stats.metrics
        if registry.null:
            return  # uninstrumented run: nothing to publish into
        self.regions.export_metrics(registry)
        for name, value in stats.summary().items():
            if name == "cycles_by_thread":
                gauge = registry.gauge(
                    "repro_thread_cycles",
                    "simulated cycles consumed per thread")
                for thread_name, cycles in value.items():
                    gauge.labels(thread=thread_name).set(cycles)
            elif name == "quantiles":
                # derived estimates, already exported as per-histogram
                # `{quantile="..."}` lines by the Prometheus renderer
                continue
            else:
                registry.gauge(f"repro_run_{name}",
                               f"final value of the '{name}' run "
                               "counter").set(value)
        for name in ("alloc_cycles", "region_cycles", "thread_cycles",
                     "io_cycles"):
            registry.gauge(f"repro_run_{name}",
                           f"final value of the '{name}' run "
                           "counter").set(getattr(stats, name))
        latency = registry.gauge(
            "repro_thread_max_dispatch_latency_cycles",
            "worst-case dispatch latency observed per thread")
        for thread in self.scheduler.threads:
            latency.labels(
                thread=thread.name,
                realtime="true" if thread.realtime else "false",
            ).set(thread.max_dispatch_latency)
        # self-measured observability cost (host seconds, never charged
        # to the simulated clock) — the "how much does watching cost"
        # gauge the sampling tier exists to bound
        overhead = registry.gauge(
            "repro_observability_overhead_seconds",
            "host seconds spent inside observability recording paths")
        tracer = stats.tracer
        if not tracer.null:
            overhead.labels(component="tracer").set(
                round(tracer.overhead_s, 6))
            if tracer.sampled_out:
                registry.gauge(
                    "repro_trace_events_sampled_out",
                    "detail trace events skipped by the sampling "
                    "stride").set(tracer.sampled_out)
        recorder = self.recorder
        if recorder is not None:
            overhead.labels(component="flightrec").set(
                round(recorder.overhead_s, 6))
            seen = registry.gauge(
                "repro_flight_events",
                "flight-recorder events by disposition")
            seen.labels(disposition="seen").set(recorder.events_seen)
            seen.labels(disposition="sampled_out").set(
                recorder.sampled_out)

    # ------------------------------------------------------------------
    # Figure 6: ownership / outlives graph extraction
    # ------------------------------------------------------------------

    def ownership_graph(self, include_dead: bool = False) -> RelationGraph:
        graph = RelationGraph()
        areas = [a for a in self.regions.areas
                 if a.live or include_dead]
        for area in areas:
            graph.add_node(f"region:{area.area_id}", area.name, "region")
        for area in areas:
            for other in areas:
                if other is not area and other.outlives(area):
                    graph.add_outlives(f"region:{other.area_id}",
                                       f"region:{area.area_id}")
        for area in areas:
            for obj in area.objects:
                if not (obj.alive or include_dead):
                    continue
                node = f"obj:{obj.oid}"
                graph.add_node(node, f"{obj.class_name}#{obj.oid}",
                               "object")
        for area in areas:
            for obj in area.objects:
                node = f"obj:{obj.oid}"
                if node not in graph.labels:
                    continue
                owner = obj.owner
                if isinstance(owner, ObjRef):
                    owner_node = f"obj:{owner.oid}"
                else:
                    owner_node = f"region:{owner.area_id}"
                if owner_node in graph.labels:
                    graph.add_owns(owner_node, node)
        return graph


def execute(analyzed: AnalyzedProgram,
            options: Optional[RunOptions] = None
            ) -> Tuple[RunResult, "Machine"]:
    """Run ``analyzed`` on the requested backend, falling back towards
    the interpreter when the compiled program bails.

    A fused-backend program *bails* (rather than raising) the moment it
    would have to do anything whose observable behaviour it cannot
    reproduce exactly — an error path, a GC trigger, a cycle-limit
    stop.  The partial run's state is unusable at that point, so the
    program is re-executed from scratch on the backend's declared
    fallback (``py`` fused -> faithful -> interpreter) on a *fresh*
    machine.  The returned result is therefore always exactly the
    interpreter's, whatever backend actually produced it.
    """
    machine = Machine(analyzed, options)
    result = machine.run()
    while machine.program_bailed:
        from dataclasses import replace
        fallback = machine.program.fallback_backend
        options = replace(machine.options, backend=fallback)
        machine = Machine(analyzed, options)
        result = machine.run()
    return result, machine


def run_source(source: Union[str, AnalyzedProgram],
               options: Optional[RunOptions] = None,
               require_well_typed: bool = True) -> RunResult:
    """Analyze (if needed) and execute ``source`` on the simulated
    platform."""
    analyzed = analyze(source) if isinstance(source, str) else source
    if require_well_typed and analyzed.errors:
        raise analyzed.errors[0]
    return execute(analyzed, options)[0]
