"""Faithful (generator) Python-source backend.

``compile_faithful`` emits one Python *generator* function per method
body that transliterates the interpreter's compiled closures statement
by statement: the same ``yield <cycles>`` stream, the same
:class:`~repro.interp.interpreter.Frame` objects on ``thread.frames``
(so GC roots are identical at every preemption point), the same
``frame.temps`` pinning discipline, and the same error sites with the
same messages.  Unlike the fused backend it therefore supports
``fork``/``RT fork`` — child threads run compiled method bodies on the
existing coroutine scheduler — and it never needs to bail: any
exception it raises is a *real* simulated failure handled by the
scheduler exactly as an interpreter run would be.

What it wins over the interpreter is the closure-dispatch overhead:
the builder-closure resume chain (one generator frame per nested
expression consumer) collapses into flat statement code inside a
single generator frame per *activation*, with cost constants baked
into the text.  What it deliberately keeps is everything observable:
``frame.vars`` dict lookups (runtime local-vs-field classification),
checked/unchecked field helpers bound on the interpreter, the scoped
region protocol, and the statement preamble (``stats.steps``/
``temps.clear()``).

Eligibility mirrors the fused backend's machine-level gate (null
observability sinks, no recorder/faults/sanitizer/degrade), but the
lowering *hazards* do not apply: they describe what slot renaming
cannot mirror, and this backend does not rename.  The only program
gate is the emitter itself — constructs it does not cover (subregions,
declared region kinds, ...) raise :class:`CodegenUnsupported` during
emission and the machine runs the interpreter instead.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (InterpreterError, MemoryAccessError,
                      RealtimeViolationError)
from ..lang import ast
from ..rtsj.objects import ObjRef, make_array
from ..rtsj.regions import LT, VT
from ..rtsj.threads import SimThread, YIELD
from .codegen_base import (CodegenUnsupported, IdentityCache,
                           SourceWriter, bake, cost_key,
                           mangle)
from .interpreter import (Frame, _MISSING, _Return, _java_div, _java_mod,
                          _ref_eq, _restore)
from .lower import THIS, LoweredProgram, MethodUnit, lower
from .values import RegionHandle, format_value, region_of_owner

_MAIN_KEY = ("", "<main>")

_ARRAY_CLASSES = ("IntArray", "FloatArray")

#: host objects the generated module closes over; ``SPANS`` is added
#: per emission (error messages embed real source positions)
_BASE_CTX: Dict[str, Any] = {
    "Frame": Frame,
    "Return": _Return,
    "MISSING": _MISSING,
    "ObjRef": ObjRef,
    "RegionHandle": RegionHandle,
    "make_array": make_array,
    "region_of_owner": region_of_owner,
    "format_value": format_value,
    "sqrt": math.sqrt,
    "java_div": _java_div,
    "java_mod": _java_mod,
    "ref_eq": _ref_eq,
    "restore": _restore,
    "InterpreterError": InterpreterError,
    "RealtimeViolationError": RealtimeViolationError,
    "MemoryAccessError": MemoryAccessError,
    "SimThread": SimThread,
    "YIELD": YIELD,
    "LT": LT,
    "VT": VT,
}

#: non-short-circuit binary operators (the interpreter's ``_BIN_OPS``
#: domain) -> emitted combining expression
_BIN_TEXT = {
    "+": "({l} + {r})",
    "-": "({l} - {r})",
    "*": "({l} * {r})",
    "<": "({l} < {r})",
    "<=": "({l} <= {r})",
    ">": "({l} > {r})",
    ">=": "({l} >= {r})",
    "/": "JDIV({l}, {r})",
    "%": "JMOD({l}, {r})",
    "==": "REFEQ({l}, {r})",
    "!=": "(not REFEQ({l}, {r}))",
}


def _fn_name(key: Tuple[str, str]) -> str:
    return f"g_{mangle(key[0])}__{mangle(key[1])}"


def _tuple_text(parts: List[str]) -> str:
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


class _FaithfulEmitter:
    """Emits the whole program as one module of generator functions."""

    def __init__(self, lowered: LoweredProgram, active: bool,
                 cost: Any) -> None:
        self.low = lowered
        self.active = active          # checks.active: RT guards emitted
        self.c = cost
        self.w = SourceWriter()
        self.spans: List[Any] = []
        self._span_ix: Dict[int, int] = {}
        self.ntmp = 0

    # -- small helpers ---------------------------------------------------

    def tmp(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"

    def sp(self, span: Any) -> str:
        ix = self._span_ix.get(id(span))
        if ix is None:
            ix = len(self.spans)
            self.spans.append(span)
            self._span_ix[id(span)] = ix
        return f"SP[{ix}]"

    def preamble(self) -> None:
        self.w.emit("ST.steps += 1")
        self.w.emit("F.temps.clear()")

    # -- operands (the interpreter's ``_operand`` inlining) --------------

    def operand_kind(self, e: ast.Expr) -> int:
        t = type(e)
        if t in (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.NullLit):
            return 0
        if t is ast.VarRef:
            return 1
        if t is ast.ThisRef:
            return 2
        return 3

    def emit_operand(self, e: ast.Expr, rn: str) -> str:
        """Evaluate ``e`` exactly as an inlined operand (same yields and
        ``temps`` effects as the interpreter) and return the atom
        holding its value."""
        w = self.w
        t = type(e)
        if t in (ast.IntLit, ast.FloatLit, ast.BoolLit):
            return bake(e.value)
        if t is ast.NullLit:
            return "None"
        if t is ast.VarRef:
            v = self.tmp()
            w.emit(f"{v} = F.vars.get({bake(e.name)}, _MISS)")
            w.emit(f"if {v} is not _MISS:")
            w.indent()
            w.emit(f"yield {self.c.op_local}")
            w.dedent()
            w.emit("else:")
            w.indent()
            w.emit(f"{v} = yield from FR(F.this, {bake(e.name)}, T, "
                   f"{self.sp(e.span)})")
            w.dedent()
            w.emit(f"if isinstance({v}, ObjRef):")
            w.indent()
            w.emit(f"F.temps.append({v})")
            w.dedent()
            return v
        if t is ast.ThisRef:
            v = self.tmp()
            w.emit(f"{v} = F.this")
            w.emit(f"if {v} is not None:")
            w.indent()
            w.emit(f"F.temps.append({v})")
            w.dedent()
            return v
        return self.emit_expr(e, rn)

    # -- owner names -----------------------------------------------------

    def owner_atom(self, name: str) -> str:
        """The interpreter's ``_owner_resolver``/``owner_value``: no
        yields, an ``InterpreterError`` for unbound names."""
        if name == "this":
            return "F.this"
        if name == "heap":
            return "HEAP"
        if name == "immortal":
            return "IMM"
        if name == "initialRegion":
            return "F.initial_region"
        w = self.w
        v = self.tmp()
        w.emit(f"{v} = F.owners.get({bake(name)}, _MISS)")
        w.emit(f"if {v} is _MISS:")
        w.indent()
        w.emit(f"raise InterpreterError({bake(f'owner {name!r} unbound at runtime')})")
        w.dedent()
        return v

    # -- expressions -----------------------------------------------------

    def emit_expr(self, e: ast.Expr, rn: str) -> str:
        t = type(e)
        if t in (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.NullLit,
                 ast.VarRef, ast.ThisRef):
            return self.emit_operand(e, rn)
        if t is ast.Binary:
            return self.emit_binary(e, rn)
        if t is ast.Unary:
            return self.emit_unary(e, rn)
        if t is ast.FieldRead:
            return self.emit_field_read(e, rn)
        if t is ast.NewExpr:
            return self.emit_new(e, rn)
        if t is ast.Invoke:
            return self.emit_invoke(e, rn, preamble=False)
        if t is ast.BuiltinCall:
            return self.emit_builtin(e, rn, preamble=False)
        raise CodegenUnsupported(f"expression {type(e).__name__}")

    def emit_binary(self, e: ast.Binary, rn: str) -> str:
        w = self.w
        op = e.op
        if op == "&&":
            res = self.tmp()
            left = self.emit_operand(e.left, rn)
            w.emit(f"yield {self.c.op_basic}")
            w.emit(f"if {left}:")
            w.indent()
            right = self.emit_operand(e.right, rn)
            w.emit(f"{res} = bool({right})")
            w.dedent()
            w.emit("else:")
            w.indent()
            w.emit(f"{res} = False")
            w.dedent()
            return res
        if op == "||":
            res = self.tmp()
            left = self.emit_operand(e.left, rn)
            w.emit(f"yield {self.c.op_basic}")
            w.emit(f"if {left}:")
            w.indent()
            w.emit(f"{res} = True")
            w.dedent()
            w.emit("else:")
            w.indent()
            right = self.emit_operand(e.right, rn)
            w.emit(f"{res} = bool({right})")
            w.dedent()
            return res
        combine = _BIN_TEXT.get(op)
        if combine is None:
            raise CodegenUnsupported(f"operator {op!r}")
        left = self.emit_operand(e.left, rn)
        right = self.emit_operand(e.right, rn)
        w.emit(f"yield {self.c.op_basic}")
        res = self.tmp()
        w.emit(f"{res} = {combine.format(l=left, r=right)}")
        return res

    def emit_unary(self, e: ast.Unary, rn: str) -> str:
        w = self.w
        v = self.emit_operand(e.operand, rn)
        w.emit(f"yield {self.c.op_basic}")
        res = self.tmp()
        if e.op == "!":
            w.emit(f"{res} = (not {v})")
        else:
            w.emit(f"{res} = -{v}")
        return res

    def emit_field_read(self, e: ast.FieldRead, rn: str) -> str:
        w = self.w
        fname = bake(e.field_name)
        span = self.sp(e.span)
        res = self.tmp()
        target = e.target
        if isinstance(target, ast.VarRef) \
                and target.name in self.low.info.classes:
            # possibly a static read — decided at runtime, exactly as
            # the interpreter does (a local can shadow the class name)
            cls = bake(target.name)
            w.emit(f"if {cls} not in F.vars:")
            w.indent()
            w.emit(f"{res} = yield from SR({cls}, {fname}, T, {span})")
            w.dedent()
            w.emit("else:")
            w.indent()
            recv = self.tmp()
            w.emit(f"{recv} = F.vars[{cls}]")
            w.emit(f"yield {self.c.op_local}")
            w.emit(f"if isinstance({recv}, ObjRef):")
            w.indent()
            w.emit(f"F.temps.append({recv})")
            w.dedent()
            w.emit(f"if isinstance({recv}, RegionHandle):")
            w.indent()
            w.emit(f"{res} = yield from PR({recv}.area, {fname}, T, "
                   f"{span})")
            w.dedent()
            w.emit("else:")
            w.indent()
            w.emit(f"{res} = yield from FR({recv}, {fname}, T, {span})")
            w.dedent()
            w.dedent()
        else:
            recv = self.emit_operand(target, rn)
            w.emit(f"if isinstance({recv}, RegionHandle):")
            w.indent()
            w.emit(f"{res} = yield from PR({recv}.area, {fname}, T, "
                   f"{span})")
            w.dedent()
            w.emit("else:")
            w.indent()
            w.emit(f"{res} = yield from FR({recv}, {fname}, T, {span})")
            w.dedent()
        w.emit(f"if isinstance({res}, ObjRef):")
        w.indent()
        w.emit(f"F.temps.append({res})")
        w.dedent()
        return res

    def emit_new(self, e: ast.NewExpr, rn: str) -> str:
        w = self.w
        c = self.c
        owners = [self.owner_atom(o.name) for o in e.owners]
        ov = self.tmp()
        w.emit(f"{ov} = {_tuple_text(owners)}")
        tg = self.tmp()
        w.emit(f"{tg} = region_of({ov}[0])")
        if self.active:
            w.emit("if T.realtime:")
            w.indent()
            w.emit(f"if {tg}.is_heap:")
            w.indent()
            w.emit("raise MemoryAccessError("
                   "'no-heap real-time thread allocated in the heap')")
            w.dedent()
            w.emit(f"if {tg}.policy == VT:")
            w.indent()
            w.emit('raise RealtimeViolationError(f"real-time thread '
                   f"allocated in a VT region '{{{tg}.name}}'\")")
            w.dedent()
            w.dedent()
        obj = self.tmp()
        if e.class_name in _ARRAY_CLASSES:
            if not e.args:
                raise CodegenUnsupported("array new without a length")
            ln = self.emit_operand(e.args[0], rn)
            w.emit(f"if {ln} < 0:")
            w.indent()
            w.emit(f'raise InterpreterError(f"negative array length '
                   f'{{{ln}}}")')
            w.dedent()
            w.emit(f"{obj} = make_array({bake(e.class_name)}, {ov}, "
                   f"{tg}, {ln})")
        else:
            layout = self.low.layouts.get(e.class_name)
            if layout is None:
                raise CodegenUnsupported(
                    f"no layout for class {e.class_name!r}")
            names = _tuple_text([bake(n) for n, _ in layout])
            w.emit(f"{obj} = ObjRef({bake(e.class_name)}, {ov}, "
                   f"{names}, {tg})")
            inits = [(n, init) for n, init in layout if init is not None]
            if inits:
                fl = self.tmp()
                w.emit(f"{fl} = {obj}.fields")
                for n, init in inits:
                    w.emit(f"{fl}[{bake(n)}] = {bake(init)}")
        fresh = self.tmp()
        w.emit(f"{fresh} = {tg}.allocate({obj})")
        sz = self.tmp()
        w.emit(f"{sz} = {obj}.size_bytes")
        cy = self.tmp()
        w.emit(f"{cy} = {c.alloc_base} + {c.alloc_per_byte} * {sz}")
        w.emit(f"if {tg}.policy == VT:")
        w.indent()
        w.emit(f"{cy} += {c.vt_alloc_extra} + {c.vt_chunk_cost} * {fresh}")
        w.dedent()
        w.emit(f"if {tg}.is_heap:")
        w.indent()
        w.emit(f"{cy} += {c.heap_alloc_extra}")
        w.emit(f"if {tg}.bytes_used > ST.peak_heap_bytes:")
        w.indent()
        w.emit(f"ST.peak_heap_bytes = {tg}.bytes_used")
        w.dedent()
        w.dedent()
        w.emit("ST.allocations += 1")
        w.emit(f"ST.bytes_allocated += {sz}")
        w.emit(f"ST.alloc_cycles += {cy}")
        # pin before yielding the allocation cost (GC at the preemption
        # point must see the newborn object) — interpreter order
        w.emit(f"F.temps.append({obj})")
        w.emit(f"yield {cy}")
        return obj

    def emit_invoke(self, e: ast.Invoke, rn: str,
                    preamble: bool) -> str:
        w = self.w
        if preamble:
            self.preamble()
        recv = self.emit_operand(e.target, rn)
        obj = self.tmp()
        what = f"call '{e.method_name}'"
        w.emit(f"{obj} = REQ({recv}, {self.sp(e.span)}, {bake(what)})")
        owners = [self.owner_atom(o.name) for o in e.owner_args]
        args = [self.emit_operand(a, rn) for a in e.args]
        fact = self._invoke_fact(e)
        res = self.tmp()
        if fact[0] == "native":
            op = fact[1]
            st = self.tmp()
            w.emit(f"{st} = {obj}.fields['__storage__']")
            if op == "get":
                if len(args) < 1:
                    raise CodegenUnsupported("array get arity")
                w.emit(f"yield {self.c.op_field_read}")
                vl = self.tmp()
                w.emit(f"{vl} = {st}.values")
                ix = self.tmp()
                w.emit(f"{ix} = {args[0]}")
                w.emit(f"if 0 <= {ix} < len({vl}):")
                w.indent()
                w.emit(f"{res} = {vl}[{ix}]")
                w.dedent()
                w.emit("else:")
                w.indent()
                w.emit(f'raise InterpreterError(f"array index {{{ix}}} '
                       f'out of bounds (length {{len({vl})}})")')
                w.dedent()
            elif op == "set":
                if len(args) < 2:
                    raise CodegenUnsupported("array set arity")
                w.emit(f"yield {self.c.op_field_write}")
                ix = self.tmp()
                w.emit(f"{ix} = {args[0]}")
                vl = self.tmp()
                w.emit(f"{vl} = {st}.values")
                w.emit(f"if not 0 <= {ix} < len({vl}):")
                w.indent()
                w.emit(f'raise InterpreterError(f"array index {{{ix}}} '
                       f'out of bounds (length {{len({vl})}})")')
                w.dedent()
                w.emit(f"{vl}[{ix}] = {args[1]}")
                w.emit(f"{res} = None")
            elif op == "length":
                w.emit(f"yield {self.c.op_basic}")
                w.emit(f"{res} = len({st}.values)")
            else:
                raise CodegenUnsupported(f"native {op!r}")
        else:
            w.emit(f"yield {self.c.op_invoke}")
            ovt = _tuple_text(owners)
            argt = _tuple_text(args)
            fn = self.tmp()
            meth = bake(e.method_name)
            w.emit(f"{fn} = CALLS.get(({obj}.class_name, {meth}))")
            w.emit(f"if {fn} is None:")
            w.indent()
            w.emit(f"{res} = yield from CM({obj}, {meth}, {ovt}, "
                   f"{argt}, {rn}, T)")
            w.dedent()
            w.emit("else:")
            w.indent()
            w.emit(f"{res} = yield from {fn}({obj}, {ovt}, {argt}, "
                   f"{rn}, T)")
            w.dedent()
        w.emit(f"if isinstance({res}, ObjRef):")
        w.indent()
        w.emit(f"F.temps.append({res})")
        w.dedent()
        return res

    def _invoke_fact(self, e: ast.Invoke) -> Tuple[Any, ...]:
        for unit in self.low.units.values():
            fact = unit.facts.invokes.get(id(e))
            if fact is not None:
                return fact
        raise CodegenUnsupported("invoke without lowering facts")

    def emit_builtin(self, e: ast.BuiltinCall, rn: str,
                     preamble: bool) -> str:
        w = self.w
        c = self.c
        name = e.name
        if preamble:
            self.preamble()
        specialized = name in ("print", "io", "sqrt", "itof", "ftoi",
                               "check") and len(e.args) == 1
        res = self.tmp()
        if specialized:
            v = self.emit_operand(e.args[0], rn)
            if name == "print":
                w.emit(f"yield {c.op_builtin}")
                w.emit(f"OUT.append(format_value({v}))")
                w.emit(f"{res} = None")
            elif name == "io":
                cyv = self.tmp()
                w.emit(f"{cyv} = {c.op_builtin} + max(int({v}), 0)")
                w.emit(f"ST.io_cycles += {cyv}")
                w.emit(f"yield {cyv}")
                w.emit(f"{res} = int({v})")
            elif name == "sqrt":
                w.emit(f"yield {c.op_builtin}")
                w.emit(f"if {v} < 0:")
                w.indent()
                w.emit(f'raise InterpreterError(f"sqrt of negative '
                       f'{{{v}}}")')
                w.dedent()
                w.emit(f"{res} = _sqrt({v})")
            elif name == "itof":
                w.emit(f"yield {c.op_basic}")
                w.emit(f"{res} = float({v})")
            elif name == "ftoi":
                w.emit(f"yield {c.op_basic}")
                w.emit(f"{res} = int({v})")
            else:  # check
                w.emit(f"yield {c.op_basic}")
                w.emit(f"if not {v}:")
                w.indent()
                msg = f"program assertion failed at {e.span}"
                w.emit(f"raise InterpreterError({bake(msg)})")
                w.dedent()
                w.emit(f"{res} = None")
            return res
        if name == "yieldnow" and not e.args:
            w.emit(f"ST.thread_cycles += {c.thread_yield}")
            w.emit(f"yield {c.thread_yield}")
            w.emit("yield YIELD")
            w.emit(f"{res} = None")
            return res
        # generic fallback, transliterating the interpreter's: evaluate
        # every argument in order, then apply by name
        atoms = [self.emit_expr(a, rn) for a in e.args]
        ar = self.tmp()
        w.emit(f"{ar} = [{', '.join(atoms)}]")
        if name == "print":
            w.emit(f"yield {c.op_builtin}")
            w.emit(f"OUT.append(format_value({ar}[0]))")
            w.emit(f"{res} = None")
        elif name == "io":
            cyv = self.tmp()
            w.emit(f"{cyv} = {c.op_builtin} + max(int({ar}[0]), 0)")
            w.emit(f"ST.io_cycles += {cyv}")
            w.emit(f"yield {cyv}")
            w.emit(f"{res} = int({ar}[0])")
        elif name == "yieldnow":
            w.emit(f"ST.thread_cycles += {c.thread_yield}")
            w.emit(f"yield {c.thread_yield}")
            w.emit("yield YIELD")
            w.emit(f"{res} = None")
        elif name == "sqrt":
            w.emit(f"yield {c.op_builtin}")
            w.emit(f"if {ar}[0] < 0:")
            w.indent()
            w.emit(f'raise InterpreterError(f"sqrt of negative '
                   f'{{{ar}[0]}}")')
            w.dedent()
            w.emit(f"{res} = _sqrt({ar}[0])")
        elif name == "itof":
            w.emit(f"yield {c.op_basic}")
            w.emit(f"{res} = float({ar}[0])")
        elif name == "ftoi":
            w.emit(f"yield {c.op_basic}")
            w.emit(f"{res} = int({ar}[0])")
        elif name == "check":
            w.emit(f"yield {c.op_basic}")
            w.emit(f"if not {ar}[0]:")
            w.indent()
            msg = f"program assertion failed at {e.span}"
            w.emit(f"raise InterpreterError({bake(msg)})")
            w.dedent()
            w.emit(f"{res} = None")
        else:
            w.emit(f"raise InterpreterError({bake(f'unknown builtin {name!r}')})")
            w.emit(f"{res} = None")
        return res

    # -- statements ------------------------------------------------------

    def emit_block(self, block: ast.Block, rn: str) -> None:
        if not block.stmts:
            self.w.emit("pass")
            return
        for s in block.stmts:
            self.stmt(s, rn)

    def stmt(self, s: ast.Stmt, rn: str) -> None:
        w = self.w
        c = self.c
        t = type(s)
        if t is ast.LocalDecl:
            self.preamble()
            if s.init is None:
                w.emit(f"yield {c.op_local}")
                w.emit(f"F.vars[{bake(s.name)}] = None")
            else:
                v = self.emit_operand(s.init, rn)
                w.emit(f"yield {c.op_local}")
                w.emit(f"F.vars[{bake(s.name)}] = {v}")
            return
        if t is ast.AssignLocal:
            self.preamble()
            v = self.emit_operand(s.value, rn)
            w.emit(f"if {bake(s.name)} in F.vars:")
            w.indent()
            w.emit(f"yield {c.op_local}")
            w.emit(f"F.vars[{bake(s.name)}] = {v}")
            w.dedent()
            w.emit("else:")
            w.indent()
            w.emit(f"yield from FW(F.this, {bake(s.name)}, {v}, T, "
                   f"{self.sp(s.span)})")
            w.dedent()
            return
        if t is ast.AssignField:
            self.emit_assign_field(s, rn)
            return
        if t is ast.ExprStmt:
            e = s.expr
            if type(e) is ast.Invoke:
                self.emit_invoke(e, rn, preamble=True)
            elif type(e) is ast.BuiltinCall:
                self.emit_builtin(e, rn, preamble=True)
            else:
                self.preamble()
                self.emit_expr(e, rn)
            return
        if t is ast.If:
            self.emit_if(s, rn)
            return
        if t is ast.While:
            self.emit_while(s, rn)
            return
        if t is ast.Return:
            self.preamble()
            v = self.emit_operand(s.value, rn) \
                if s.value is not None else "None"
            w.emit(f"yield {c.op_return}")
            w.emit(f"raise _Return({v})")
            return
        if t is ast.Block:
            self.preamble()
            for inner in s.stmts:
                self.stmt(inner, rn)
            return
        if t is ast.RegionStmt:
            self.emit_region(s, rn)
            return
        if t is ast.Fork:
            self.emit_fork(s, rn)
            return
        raise CodegenUnsupported(f"statement {type(s).__name__}")

    def emit_assign_field(self, s: ast.AssignField, rn: str) -> None:
        w = self.w
        fname = bake(s.field_name)
        span = self.sp(s.span)
        self.preamble()
        v = self.emit_operand(s.value, rn)
        target = s.target
        if isinstance(target, ast.VarRef) \
                and target.name in self.low.info.classes:
            cls = bake(target.name)
            w.emit(f"if {cls} not in F.vars:")
            w.indent()
            w.emit(f"yield from SW({cls}, {fname}, {v}, T, {span})")
            w.dedent()
            w.emit("else:")
            w.indent()
            recv = self.tmp()
            w.emit(f"{recv} = F.vars[{cls}]")
            w.emit(f"yield {self.c.op_local}")
            w.emit(f"if isinstance({recv}, ObjRef):")
            w.indent()
            w.emit(f"F.temps.append({recv})")
            w.dedent()
            w.emit(f"if isinstance({recv}, RegionHandle):")
            w.indent()
            w.emit(f"yield from PW({recv}.area, {fname}, {v}, T, {span})")
            w.dedent()
            w.emit("else:")
            w.indent()
            w.emit(f"yield from FW({recv}, {fname}, {v}, T, {span})")
            w.dedent()
            w.dedent()
            return
        recv = self.emit_operand(target, rn)
        w.emit(f"if isinstance({recv}, RegionHandle):")
        w.indent()
        w.emit(f"yield from PW({recv}.area, {fname}, {v}, T, {span})")
        w.dedent()
        w.emit("else:")
        w.indent()
        w.emit(f"yield from FW({recv}, {fname}, {v}, T, {span})")
        w.dedent()

    def _flat_cond(self, cond: ast.Expr) -> Optional[ast.Binary]:
        if type(cond) is not ast.Binary or cond.op not in _BIN_TEXT:
            return None
        if self.operand_kind(cond.left) == 3 \
                or self.operand_kind(cond.right) == 3:
            return None
        return cond

    def emit_if(self, s: ast.If, rn: str) -> None:
        w = self.w
        self.preamble()
        cv = self._emit_cond(s.cond, rn)
        w.emit(f"if {cv}:")
        w.indent()
        self.emit_block(s.then_body, rn)
        w.dedent()
        if s.else_body is not None:
            w.emit("else:")
            w.indent()
            self.emit_block(s.else_body, rn)
            w.dedent()

    def emit_while(self, s: ast.While, rn: str) -> None:
        w = self.w
        self.preamble()
        w.emit("while True:")
        w.indent()
        cv = self._emit_cond(s.cond, rn)
        w.emit(f"if not {cv}:")
        w.indent()
        w.emit("break")
        w.dedent()
        self.emit_block(s.body, rn)
        w.dedent()

    def _emit_cond(self, cond: ast.Expr, rn: str) -> str:
        """Condition value with the interpreter's exact charging: a flat
        binary fuses (operands + op_basic + op_branch), anything else
        evaluates as a full expression then charges op_branch."""
        w = self.w
        flat = self._flat_cond(cond)
        if flat is not None:
            left = self.emit_operand(flat.left, rn)
            right = self.emit_operand(flat.right, rn)
            w.emit(f"yield {self.c.op_basic}")
            cv = self.tmp()
            w.emit(f"{cv} = {_BIN_TEXT[flat.op].format(l=left, r=right)}")
        else:
            cv = self.emit_expr(cond, rn)
        w.emit(f"yield {self.c.op_branch}")
        return cv

    def emit_region(self, s: ast.RegionStmt, rn: str) -> None:
        w = self.w
        c = self.c
        kind_name = s.kind.name if s.kind is not None else "LocalRegion"
        if kind_name in self.low.info.region_kinds \
                or kind_name == "SharedRegion":
            raise CodegenUnsupported("shared region")
        policy = "LT" if (s.policy is not None
                          and s.policy.kind == "LT") else "VT"
        budget = s.policy.size if s.policy is not None else 0
        self.preamble()
        if self.active:
            w.emit("if T.realtime:")
            w.indent()
            msg = ("real-time thread attempted to create a region "
                   f"'{s.region_name}'")
            w.emit(f"raise RealtimeViolationError({bake(msg)})")
            w.dedent()
        anc = self.tmp()
        w.emit(f"{anc} = set({rn}.ancestor_ids)")
        w.emit(f"{anc}.add({rn}.area_id)")
        w.emit("for _sh in T.shared_stack:")
        w.indent()
        w.emit(f"{anc} |= _sh.ancestor_ids")
        w.emit(f"{anc}.add(_sh.area_id)")
        w.dedent()
        area = self.tmp()
        cy = self.tmp()
        w.emit(f"{area}, {cy} = CREATE({bake(s.region_name)}, "
               f"{bake(kind_name)}, {policy}, {budget}, {anc}, None, "
               "False, T)")
        w.emit(f"ST.region_cycles += {cy}")
        w.emit(f"yield {cy}")
        sv_o = self.tmp()
        sv_v = self.tmp()
        w.emit(f"{sv_o} = F.owners.get({bake(s.region_name)})")
        w.emit(f"{sv_v} = F.vars.get({bake(s.handle_name)})")
        w.emit(f"F.owners[{bake(s.region_name)}] = {area}")
        w.emit(f"F.vars[{bake(s.handle_name)}] = RegionHandle({area})")
        w.emit("try:")
        w.indent()
        self.emit_block(s.body, area)
        w.dedent()
        w.emit("finally:")
        w.indent()
        # charged directly: yielding inside a finally would break
        # generator close semantics (interpreter does the same)
        w.emit(f"CD(T, {c.region_exit})")
        w.emit(f"ST.region_cycles += {c.region_exit}")
        w.emit(f"ST.objects_freed += {area}.destroy(T.name)")
        w.emit(f"RESTORE(F.owners, {bake(s.region_name)}, {sv_o})")
        w.emit(f"RESTORE(F.vars, {bake(s.handle_name)}, {sv_v})")
        w.dedent()

    def emit_fork(self, s: ast.Fork, rn: str) -> None:
        w = self.w
        c = self.c
        call = s.call
        self.preamble()
        recv = self.emit_expr(call.target, rn)
        obj = self.tmp()
        w.emit(f"{obj} = REQ({recv}, {self.sp(s.span)}, 'fork')")
        owners = [self.owner_atom(o.name) for o in call.owner_args]
        ar = self.tmp()
        w.emit(f"{ar} = []")
        for a in call.args:
            v = self.emit_expr(a, rn)
            w.emit(f"{ar}.append({v})")
        if s.realtime and self.active:
            w.emit(f"for _rv in [{obj}] + {ar}:")
            w.indent()
            w.emit("if isinstance(_rv, ObjRef) and _rv.area.is_heap:")
            w.indent()
            w.emit('raise MemoryAccessError(f"RT fork passed a heap '
                   'reference {_rv!r} to a no-heap real-time thread")')
            w.dedent()
            w.dedent()
        w.emit(f"yield {c.thread_spawn}")
        w.emit(f"ST.thread_cycles += {c.thread_spawn}")
        nm = self.tmp()
        prefix = "rt-thread-" if s.realtime else "thread-"
        w.emit(f"{nm} = {bake(prefix)} + str(len(SCHED.threads))")
        ch = self.tmp()
        w.emit(f"{ch} = SimThread(name={nm}, coroutine=iter(()), "
               f"realtime={bake(bool(s.realtime))})")
        w.emit(f"{ch}.coroutine = _tco({ch}, {obj}, "
               f"{bake(call.method_name)}, {_tuple_text(owners)}, "
               f"tuple({ar}), {rn})")
        # the child inherits the parent's shared regions (Section 2.2)
        w.emit("for _sh in T.shared_stack:")
        w.indent()
        w.emit("_sh.thread_count += 1")
        w.emit(f"{ch}.shared_stack.append(_sh)")
        w.dedent()
        w.emit(f"SCHED.spawn({ch})")

    # -- units and module ------------------------------------------------

    def emit_unit(self, unit: MethodUnit) -> None:
        w = self.w
        if unit.is_main:
            w.emit("def _main(T):")
            w.indent()
            w.emit("if False:")
            w.indent()
            w.emit("yield")
            w.dedent()
            w.emit("F = Frame(None, {}, HEAP)")
            w.emit("T.frames.append(F)")
            w.emit("try:")
            w.indent()
            self.emit_block(unit.body, "HEAP")
            w.dedent()
            w.emit("except _Return:")
            w.indent()
            w.emit("pass")
            w.dedent()
            w.emit("finally:")
            w.indent()
            w.emit("T.frames.pop()")
            w.dedent()
            w.dedent()
            w.emit("")
            return
        w.emit(f"def {_fn_name(unit.key)}(S, CO, OV, A, R, T):")
        w.indent()
        w.emit("if False:")
        w.indent()
        w.emit("yield")
        w.dedent()
        formals = ", ".join(
            f"{bake(name)}: CO[{i}]"
            for i, name in enumerate(unit.class_formals))
        w.emit(f"F = Frame(S, {{{formals}}}, R)")
        if unit.owner_formals:
            w.emit("if OV:")
            w.indent()
            of = _tuple_text([bake(n) for n in unit.owner_formals])
            w.emit(f"F.owners.update(zip({of}, OV))")
            w.dedent()
        if unit.param_names:
            w.emit("if A:")
            w.indent()
            pn = _tuple_text([bake(n) for n in unit.param_names])
            w.emit(f"F.vars.update(zip({pn}, A))")
            w.dedent()
        w.emit("T.frames.append(F)")
        w.emit("try:")
        w.indent()
        self.emit_block(unit.body, "R")
        w.dedent()
        w.emit("except _Return as _rv:")
        w.indent()
        w.emit("return _rv.value")
        w.dedent()
        w.emit("finally:")
        w.indent()
        w.emit("T.frames.pop()")
        w.dedent()
        w.emit(f"return {bake(unit.default)}")
        w.dedent()
        w.emit("")

    def emit_dispatch(self) -> None:
        """The interpreter's call-entry cache, precomputed: CALLS maps a
        runtime ``(class_name, method)`` to a wrapper that rebuilds the
        defining class's owner tuple and calls its compiled body."""
        w = self.w
        w.emit("CALLS = {}")
        n = 0
        for key in sorted(self.low.call_table):
            entry = self.low.call_table[key]
            if entry.native is not None:
                continue
            impl_key = (entry.impl_class, key[1])
            if impl_key not in self.low.units:
                continue
            n += 1
            dname = f"_d{n}"
            w.emit(f"def {dname}(o, ov, a, r, t):")
            w.indent()
            if entry.selectors is None:
                sel = "o.owners"
            else:
                parts = []
                for s in entry.selectors:
                    if s is THIS:
                        parts.append("o")
                    elif isinstance(s, int):
                        parts.append(f"o.owners[{s}]")
                    elif s == "heap":
                        parts.append("HEAP")
                    elif s == "immortal":
                        parts.append("IMM")
                    else:
                        raise CodegenUnsupported(f"selector {s!r}")
                sel = _tuple_text(parts)
            w.emit(f"return {_fn_name(impl_key)}(o, {sel}, ov, a, r, t)")
            w.dedent()
            w.emit(f"CALLS[({bake(key[0])}, {bake(key[1])})] = {dname}")
        w.emit("")

    def emit_module(self) -> str:
        w = self.w
        w.emit("# generated by repro.interp.codegen_py_faithful")
        w.emit("def make(ctx):")
        w.indent()
        for alias, key in (
                ("Frame", "Frame"), ("_Return", "Return"),
                ("_MISS", "MISSING"), ("ObjRef", "ObjRef"),
                ("RegionHandle", "RegionHandle"),
                ("make_array", "make_array"),
                ("region_of", "region_of_owner"),
                ("format_value", "format_value"), ("_sqrt", "sqrt"),
                ("JDIV", "java_div"), ("JMOD", "java_mod"),
                ("REFEQ", "ref_eq"), ("RESTORE", "restore"),
                ("InterpreterError", "InterpreterError"),
                ("RealtimeViolationError", "RealtimeViolationError"),
                ("MemoryAccessError", "MemoryAccessError"),
                ("SimThread", "SimThread"), ("YIELD", "YIELD"),
                ("LT", "LT"), ("VT", "VT"), ("SP", "SPANS")):
            w.emit(f"{alias} = ctx[{bake(key)}]")
        w.emit("def bind(M):")
        w.indent()
        w.emit("I = M.interpreter")
        w.emit("ST = M.stats")
        w.emit("OUT = M.output")
        w.emit("HEAP = M.regions.heap")
        w.emit("IMM = M.regions.immortal")
        w.emit("SCHED = M.scheduler")
        w.emit("FR = I._field_read")
        w.emit("FW = I._field_write")
        w.emit("PR = I._portal_read")
        w.emit("PW = I._portal_write")
        w.emit("SR = I._static_read")
        w.emit("SW = I._static_write")
        w.emit("REQ = I._require_object")
        w.emit("CREATE = I._create_area")
        w.emit("CM = I.call_method")
        w.emit("TCO = I.thread_coroutine")
        w.emit("CD = M.charge_direct")
        w.emit("")
        units = sorted(self.low.units.values(),
                       key=lambda u: (u.is_main, u.key))
        for unit in units:
            self.emit_unit(unit)
        self.emit_dispatch()
        w.emit("def _tco(child, obj, meth, ov, args, region):")
        w.indent()
        w.emit("fn = CALLS.get((obj.class_name, meth))")
        w.emit("if fn is None:")
        w.indent()
        w.emit("return TCO(child, obj, meth, ov, args, region)")
        w.dedent()
        w.emit("return fn(obj, ov, args, region, child)")
        w.dedent()
        w.emit("return _main")
        w.dedent()
        w.emit("return bind")
        w.dedent()
        return w.source()


def faithful_source(lowered: LoweredProgram, active: bool,
                    cost: Any) -> str:
    """The generated module text (exposed for tests and debugging)."""
    return _FaithfulEmitter(lowered, active, cost).emit_module()


_FAITHFUL_CACHE = IdentityCache()


def _faithful_bind(analyzed: Any, lowered: LoweredProgram, active: bool,
                   cost: Any) -> Any:
    key = (bool(active), cost_key(cost))
    per = _FAITHFUL_CACHE.get(analyzed)
    if per is not None and key in per:
        return per[key]
    emitter = _FaithfulEmitter(lowered, active, cost)
    src = emitter.emit_module()
    ns: Dict[str, Any] = {}
    exec(compile(src, "<repro-faithful>", "exec"), ns)
    ctx = dict(_BASE_CTX)
    ctx["SPANS"] = tuple(emitter.spans)
    bind = ns["make"](ctx)
    if per is None:
        per = {}
        _FAITHFUL_CACHE.set(analyzed, per)
    per[key] = bind
    return bind


def compile_faithful(machine: Any) -> Any:
    """Compile ``machine``'s program for faithful generator execution,
    or raise :class:`CodegenUnsupported` with the reason."""
    from .codegen_py import PyProgram
    analyzed = machine.analyzed
    opts = machine.options
    if getattr(analyzed, "errors", None):
        raise CodegenUnsupported("program has static errors")
    lowered = lower(analyzed)
    # no hazard pre-filter: lowering hazards describe what the *fused*
    # slot-renaming backend cannot mirror; the faithful emitter keeps
    # the interpreter's runtime name/owner semantics, so its only gate
    # is the emitter itself (CodegenUnsupported during emission)
    if _MAIN_KEY not in lowered.units:
        raise CodegenUnsupported("no main block")
    stats = machine.stats
    if not (stats.tracer.null and stats.metrics.null
            and stats.profile.null):
        raise CodegenUnsupported("instrumented run")
    if stats.recorder is not None:
        raise CodegenUnsupported("flight recorder attached")
    if machine.fault_injector is not None:
        raise CodegenUnsupported("fault injection active")
    if opts.sanitize:
        raise CodegenUnsupported("sanitizer active")
    if opts.degrade:
        raise CodegenUnsupported("degrade mode")
    info = analyzed.info
    if "LocalRegion" in info.region_kinds \
            or "SharedRegion" in info.region_kinds:
        raise CodegenUnsupported("regionKind shadows a built-in kind")
    bind = _faithful_bind(analyzed, lowered, machine.checks.active,
                          machine.cost_model)
    return PyProgram("py-faithful", "interp", bind(machine))
