"""Minimal RTSJ-style runtime for *compiled* (erased) programs.

The Section 2.6 claim is that the typed language compiles by erasure:
owners disappear, only region handles survive as values.
:mod:`repro.interp.compile_py` emits plain Python against this shim —
note that nothing here knows anything about owners, exactly like the
RTSJ libraries the paper targeted.

The shim intentionally mirrors the RTSJ surface: memory areas with
LT/VT policies, ``instance()`` singletons for heap and immortal, portal
storage, subregion tables, and the two dynamic checks (which the
compiler omits when the program was typechecked — the paper's point).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import (IllegalAssignmentError, OutOfRegionMemoryError)

OBJ_HEADER = 16
FIELD_BYTES = 8


class Area:
    """An erased memory area (the compiled counterpart of a region)."""

    def __init__(self, name: str, policy: str = "VT", budget: int = 0,
                 parent: Optional["Area"] = None) -> None:
        self.name = name
        self.policy = policy
        self.budget = budget
        self.used = 0
        self.peak = 0
        self.live = True
        self.parent = parent
        self.ancestors = set()
        if parent is not None:
            self.ancestors = parent.ancestors | {id(parent)}
        self.portals: Dict[str, Any] = {}
        self.subregions: Dict[str, "Area"] = {}
        self.count = 0
        self.objects_allocated = 0

    # -- allocation ------------------------------------------------------

    def alloc(self, obj: Any, n_fields: int) -> Any:
        if not self.live:
            raise OutOfRegionMemoryError(
                f"allocation in dead area '{self.name}'")
        size = OBJ_HEADER + FIELD_BYTES * n_fields
        if self.policy == "LT" and self.used + size > self.budget:
            raise OutOfRegionMemoryError(
                f"LT area '{self.name}' of {self.budget} bytes cannot "
                f"fit {size} more (used {self.used})")
        self.used += size
        self.peak = max(self.peak, self.used)
        self.objects_allocated += 1
        obj.__dict__["_area"] = self
        return obj

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        self.used = 0

    def destroy(self) -> None:
        self.flush()
        self.live = False

    def outlives(self, other: "Area") -> bool:
        return self is other or id(self) in other.ancestors \
            or self.policy in ("HEAP", "IMMORTAL")

    def can_flush(self) -> bool:
        if self.count > 0:
            return False
        if any(hasattr(v, "_area") for v in self.portals.values()):
            return False
        return all(sub.used == 0 for sub in self.subregions.values())


class Runtime:
    """Per-run state: the special areas, the output channel, and the
    dynamic-check configuration."""

    def __init__(self, checks: bool = False) -> None:
        self.heap = Area("heap", "HEAP")
        self.immortal = Area("immortal", "IMMORTAL")
        self.checks = checks
        self.out = []
        self.areas = [self.heap, self.immortal]
        self.assignment_checks = 0

    # -- RTSJ-style factory surface ---------------------------------------

    def create_region(self, name: str, policy: str = "VT",
                      budget: int = 0,
                      parent: Optional[Area] = None,
                      current: Optional[Area] = None) -> Area:
        area = Area(name, policy, budget, parent)
        if parent is None and current is not None:
            area.ancestors = (current.ancestors
                              | {id(current), id(self.heap),
                                 id(self.immortal)})
        self.areas.append(area)
        return area

    def enter_sub(self, parent: Area, name: str, policy: str,
                  budget: int, fresh: bool) -> Area:
        sub = parent.subregions.get(name)
        if fresh or sub is None or not sub.live:
            sub = self.create_region(f"{parent.name}.{name}", policy,
                                     budget, parent=parent)
            parent.subregions[name] = sub
        sub.count += 1
        return sub

    def exit_sub(self, sub: Area) -> None:
        sub.count -= 1
        if sub.can_flush():
            sub.flush()

    # -- the dynamic checks (omitted by the typed compiler) -----------------

    def check_store(self, target_area: Area, value: Any) -> None:
        if not self.checks:
            return
        varea = getattr(value, "_area", None)
        if varea is None:
            return
        self.assignment_checks += 1
        if not varea.outlives(target_area):
            raise IllegalAssignmentError(
                f"compiled check: storing a reference from "
                f"'{varea.name}' into '{target_area.name}' would dangle")

    # -- intrinsics ----------------------------------------------------------

    def print_(self, value: Any) -> None:
        from .values import format_value
        self.out.append(format_value(value))

    @staticmethod
    def io(n: int) -> int:
        return n

    @staticmethod
    def check(cond: bool) -> None:
        if not cond:
            from ..errors import InterpreterError
            raise InterpreterError("compiled program assertion failed")


def jdiv(a, b):
    """Java-style division (truncates toward zero for ints)."""
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def jmod(a, b):
    return a - jdiv(a, b) * b


class IntArray:
    def __init__(self, length: int) -> None:
        self._data = [0] * length

    def get(self, i):
        return self._data[i]

    def set(self, i, v):
        self._data[i] = v

    def length(self):
        return len(self._data)

    @property
    def _n_fields(self):
        return len(self._data)


class FloatArray(IntArray):
    def __init__(self, length: int) -> None:
        self._data = [0.0] * length
