"""Shared lowering layer: typed core -> backend-neutral program facts.

Every codegen backend (`codegen_py`, `codegen_c`) consumes the same
lowered view of an analyzed program instead of re-deriving semantic
facts from the AST.  Lowering resolves, once:

* **dynamic dispatch** — a call table mirroring the interpreter's
  ``(class, method)`` inline cache: the superclass-chain walk happens
  here, symbolically, producing *selectors* that rebuild the defining
  class's owner tuple from any receiver (an index into ``obj.owners``,
  the ``THIS`` marker, or the ``heap``/``immortal`` constants);
* **object layouts** — all instance fields, inherited first, with their
  Java zero-initialization values;
* **method units** — one per method body plus the main block, with
  formal/param names and the typed default return value;
* **per-node facts** for the straight-line (fused) backends — local
  slot assignments (alpha-renamed, reproducing the interpreter's flat
  ``frame.vars`` save/restore semantics lexically), owner-name
  resolution descriptors, field/portal/static target classification,
  invoke dispatch shapes, and expression types;
* **hazards** — the census of constructs the straight-line backends
  cannot compile without giving up cycle exactness (``fork``,
  subregions, portal and static access, name shadowing that lexical
  renaming cannot reproduce, untypeable receivers).  A program with any
  hazard still compiles — backends fall back to their faithful path.

The lowered facts are backend-neutral: nothing here mentions Python
source or C.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.api import AnalyzedProgram
from ..core.program import ClassInfo, MethodInfo, convert_type, make_subst
from ..core.types import BOOLEAN, ClassType, FLOAT, HandleType, INT, Type
from ..lang import ast
from .codegen_base import IdentityCache

#: selector marker: the receiver object itself becomes the owner value
THIS = "<this>"

_ARRAY_CLASSES = ("IntArray", "FloatArray")

#: sentinel for "no previous binding" in scope save/restore
_MISSING = object()


class LowerError(Exception):
    """A construct no backend can lower (non-literal field init)."""


# ---------------------------------------------------------------------------
# data model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CallEntry:
    """One resolved ``(receiver class, method)`` dispatch, mirroring the
    interpreter's call-entry cache."""

    key: Tuple[str, str]
    #: defining class (where the body lives)
    impl_class: str
    #: ``None`` = identity (receiver owners pass through); otherwise a
    #: tuple of ``int`` (index into receiver owners), :data:`THIS`,
    #: ``"heap"`` or ``"immortal"``
    selectors: Optional[Tuple[Any, ...]]
    native: Optional[str]
    class_formals: Tuple[str, ...]
    owner_formals: Tuple[str, ...]
    param_names: Tuple[str, ...]
    default: Any
    return_type: Optional[Type]


@dataclass
class MethodFacts:
    """Per-node facts for the straight-line backends, keyed by node id."""

    #: expr id -> static type (None = unknown)
    types: Dict[int, Optional[Type]] = dc_field(default_factory=dict)
    #: VarRef/LocalDecl/AssignLocal id -> ('local', slot) | ('field',)
    vars: Dict[int, Tuple[Any, ...]] = dc_field(default_factory=dict)
    #: FieldRead/AssignField id -> 'object' | 'portal' | 'static'
    targets: Dict[int, str] = dc_field(default_factory=dict)
    #: OwnerAst id -> descriptor (see _OwnerEnv.resolve)
    owners: Dict[int, Tuple[Any, ...]] = dc_field(default_factory=dict)
    #: Invoke id -> ('native', op) | ('call', static_class, mono)
    invokes: Dict[int, Tuple[Any, ...]] = dc_field(default_factory=dict)
    #: RegionStmt id -> (region_slot, handle_slot)
    regions: Dict[int, Tuple[str, str]] = dc_field(default_factory=dict)
    #: entry-time slot names for the unit's parameters, in order
    param_slots: Tuple[str, ...] = ()
    hazards: Set[str] = dc_field(default_factory=set)


@dataclass
class MethodUnit:
    """One compilable body: a method, or the program's main block."""

    key: Tuple[str, str]              # ("", "<main>") for the main block
    class_decl: Optional[ast.ClassDecl]
    method: Optional[ast.MethodDecl]
    body: ast.Block
    class_formals: Tuple[str, ...]
    owner_formals: Tuple[str, ...]
    param_names: Tuple[str, ...]
    default: Any
    facts: MethodFacts = dc_field(default_factory=MethodFacts)

    @property
    def is_main(self) -> bool:
        return self.method is None


@dataclass
class LoweredProgram:
    analyzed: AnalyzedProgram
    #: program classes, parents before subclasses
    classes: List[ast.ClassDecl]
    #: class -> ((field_name, literal_init_or_None), ...) inherited first
    layouts: Dict[str, Tuple[Tuple[str, Any], ...]]
    #: every resolvable (class, method) pair, incl. array natives
    call_table: Dict[Tuple[str, str], CallEntry]
    units: Dict[Tuple[str, str], MethodUnit]
    #: classes that have subclasses in this program (dispatch is
    #: polymorphic for receivers of these static types)
    extended: Set[str]
    #: program-wide hazards: union of unit hazards + global ones
    hazards: Set[str]

    @property
    def info(self):
        return self.analyzed.info

    @property
    def program(self):
        return self.analyzed.program

    @property
    def fused_ok(self) -> bool:
        """Can a straight-line backend compile this program exactly?"""
        return not self.hazards


def _default_return(return_type) -> Any:
    if return_type == INT:
        return 0
    if return_type == FLOAT:
        return 0.0
    if return_type == BOOLEAN:
        return False
    return None


def _literal_value(expr: ast.Expr) -> Any:
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
        return expr.value
    if isinstance(expr, ast.NullLit):
        return None
    raise LowerError(f"field initializer is not a literal: {expr!r}")


# ---------------------------------------------------------------------------
# dispatch / layout tables (the interpreter's caches, precomputed)
# ---------------------------------------------------------------------------

def _build_call_entry(info_table, class_name: str,
                      method_name: str) -> Optional[CallEntry]:
    """The interpreter's ``_build_call_entry`` walk with symbolic area
    markers instead of live ``MemoryArea`` objects."""
    info: Optional[ClassInfo] = info_table.classes[class_name]
    symbolic: Tuple[Any, ...] = tuple(range(len(info.formal_names)))
    while info is not None:
        mi: Optional[MethodInfo] = info.methods.get(method_name)
        if mi is not None:
            identity = symbolic == tuple(range(len(symbolic)))
            selectors = None if identity else symbolic
            return CallEntry(
                key=(class_name, method_name),
                impl_class=info.name,
                selectors=selectors,
                native=mi.native,
                class_formals=tuple(info.formal_names),
                owner_formals=tuple(f[0] for f in mi.formals),
                param_names=tuple(p[1] for p in mi.params),
                default=_default_return(mi.return_type),
                return_type=mi.return_type,
            )
        if info.superclass is None:
            break
        mapping = dict(zip(info.formal_names, symbolic))
        translated: List[Any] = []
        for o in info.superclass.owners:
            if o.name in mapping:
                translated.append(mapping[o.name])
            elif o.name == "this":
                translated.append(THIS)
            else:  # heap / immortal
                translated.append(o.name)
        symbolic = tuple(translated)
        info = info_table.classes.get(info.superclass.name)
    return None


def _visible_methods(info_table, class_name: str) -> Set[str]:
    names: Set[str] = set()
    info = info_table.classes.get(class_name)
    while info is not None:
        names.update(info.methods)
        info = (info_table.classes.get(info.superclass.name)
                if info.superclass is not None else None)
    return names


def _layout(info_table, class_name: str) -> Tuple[Tuple[str, Any], ...]:
    chain = []
    info = info_table.classes[class_name]
    while info is not None:
        chain.append(info)
        info = (info_table.classes.get(info.superclass.name)
                if info.superclass is not None else None)
    zero = {INT: 0, FLOAT: 0.0, BOOLEAN: False}
    fields: List[Tuple[str, Any]] = []
    for info in reversed(chain):
        for fi in info.fields.values():
            if fi.static:
                continue
            init = zero.get(fi.type)
            if fi.decl is not None and fi.decl.init is not None:
                init = _literal_value(fi.decl.init)
            fields.append((fi.name, init))
    return tuple(fields)


def _classes_parents_first(classes) -> List[ast.ClassDecl]:
    by_name = {cls.name: cls for cls in classes}
    ordered: List[ast.ClassDecl] = []
    seen: Set[str] = set()

    def visit(cls):
        if cls.name in seen:
            return
        seen.add(cls.name)
        if cls.superclass is not None and cls.superclass.name in by_name:
            visit(by_name[cls.superclass.name])
        ordered.append(cls)

    for cls in classes:
        visit(cls)
    return ordered


# ---------------------------------------------------------------------------
# per-unit facts: scoping, typing, classification
# ---------------------------------------------------------------------------

class _FactsPass:
    """One walk over a method body (or the main block) producing
    :class:`MethodFacts`.

    Slot assignment reproduces the interpreter's *flat* ``frame.vars``
    semantics lexically: a local declared in a nested block gets a fresh
    alpha-renamed slot valid for the rest of that block; when the block
    closes, the name is *tainted* — the interpreter would still see the
    leaked runtime binding, which lexical renaming cannot reproduce, so
    any later use is a hazard.  Region statements save and restore their
    handle and owner bindings in the interpreter, which push/pop
    renaming reproduces exactly (no taint).
    """

    def __init__(self, lowered: LoweredProgram, unit: MethodUnit) -> None:
        self.low = lowered
        self.info = lowered.info
        self.unit = unit
        self.facts = unit.facts
        self.cls = unit.class_decl
        self.counter = 0
        #: name -> python-safe slot (None value = tainted)
        self.scope: Dict[str, Optional[str]] = {}
        self.tenv: Dict[str, Optional[Type]] = {}
        #: owner name -> descriptor
        self.owner_env: Dict[str, Tuple[Any, ...]] = {}
        #: names ever resolved through the implicit this-field fallback
        self.field_fallbacks: Set[str] = set()
        #: names ever introduced by a LocalDecl
        self.declared_locals: Set[str] = set()
        if unit.method is not None:
            for i, name in enumerate(unit.class_formals):
                self.owner_env[name] = ("cformal", i)
            for name in unit.owner_formals:
                self.owner_env[name] = ("mformal", name)
            for ptype, pname in unit.method.params:
                slot = self._slot(pname)
                self.scope[pname] = slot
                self.facts.vars[id(unit.method)] = ("params",)
                try:
                    self.tenv[pname] = convert_type(ptype)
                except Exception:
                    self.tenv[pname] = None
            self.facts.param_slots = tuple(
                self.scope[p] for p in unit.param_names)

    # -- infrastructure -------------------------------------------------

    def hazard(self, reason: str) -> None:
        self.facts.hazards.add(reason)

    def _slot(self, name: str) -> str:
        self.counter += 1
        return f"u{self.counter}_{name}"

    def param_slots(self) -> Tuple[str, ...]:
        return tuple(self.scope[p] for p in self.unit.param_names)  # type: ignore[misc]

    # -- typing (adapted from compile_py.type_of) ------------------------

    def type_of(self, expr: ast.Expr) -> Optional[Type]:
        key = id(expr)
        if key in self.facts.types:
            return self.facts.types[key]
        t = self._type_of(expr)
        self.facts.types[key] = t
        return t

    def _type_of(self, expr: ast.Expr) -> Optional[Type]:
        from ..core.owners import Owner
        info = self.info
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, (ast.NullLit,)):
            return None
        if isinstance(expr, ast.ThisRef):
            if self.cls is None:
                return None
            return ClassType(self.cls.name,
                             tuple(Owner(f.name) for f in self.cls.formals))
        if isinstance(expr, ast.VarRef):
            if expr.name in self.tenv:
                return self.tenv[expr.name]
            if self.cls is not None:
                fi = info.lookup_field(self.cls.name, expr.name)
                if fi is not None:
                    return fi.type
            return None
        if isinstance(expr, ast.NewExpr):
            return ClassType(expr.class_name,
                             tuple(Owner(o.name) for o in expr.owners))
        if isinstance(expr, ast.FieldRead):
            ttype = self.type_of(expr.target)
            if isinstance(ttype, HandleType):
                return None  # portal reads are a hazard anyway
            if isinstance(ttype, ClassType):
                fi = info.lookup_field(ttype.name, expr.field_name)
                if fi is not None and ttype.name in info.classes:
                    subst = make_subst(
                        info.classes[ttype.name].formal_names, ttype.owners)
                    return fi.type.substitute(subst)
            if isinstance(expr.target, ast.VarRef) \
                    and expr.target.name in info.classes:
                fi = info.lookup_field(expr.target.name, expr.field_name)
                if fi is not None:
                    return fi.type
            return None
        if isinstance(expr, ast.Invoke):
            ttype = self.type_of(expr.target)
            if isinstance(ttype, ClassType) and ttype.name in info.classes:
                mi = info.lookup_method(ttype.name, expr.method_name)
                if mi is not None:
                    subst = make_subst(
                        info.classes[ttype.name].formal_names, ttype.owners)
                    return mi.return_type.substitute(subst)
            return None
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return BOOLEAN
            return self.type_of(expr.left) or self.type_of(expr.right)
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return BOOLEAN
            return self.type_of(expr.operand)
        if isinstance(expr, ast.BuiltinCall):
            return {"io": INT, "sqrt": FLOAT, "itof": FLOAT,
                    "ftoi": INT}.get(expr.name)
        return None

    # -- statements ------------------------------------------------------

    def walk_unit(self) -> None:
        try:
            self.walk_block(self.unit.body, toplevel=True)
            if self.field_fallbacks & self.declared_locals:
                # a name resolved as an implicit this-field *somewhere*
                # is also declared as a local *somewhere else*: in a
                # loop the interpreter's flat frame can leak the local
                # binding back into a textually-earlier use that lexical
                # renaming resolved to the field
                self.hazard("field-local-alias")
        except LowerError:
            raise
        except Exception:
            # never let the facts pass break lowering: the program just
            # loses straight-line eligibility
            self.hazard("facts-pass-error")

    def walk_block(self, block: ast.Block, toplevel: bool = False) -> None:
        added: List[Tuple[str, Any, Any]] = []
        for stmt in block.stmts:
            self.walk_stmt(stmt, added, toplevel)
        for name, prev_slot, prev_type in reversed(added):
            if prev_slot is _MISSING:
                del self.scope[name]
                self.tenv.pop(name, None)
                # the interpreter's flat frame would leak this binding
                self.scope[name] = None  # tainted
            else:
                self.scope[name] = prev_slot
                self.tenv[name] = prev_type

    def _declare(self, name: str, declared_type, added, toplevel: bool,
                 node_id: int) -> None:
        visible = self.scope.get(name, _MISSING)
        # a *declaration* over a tainted (leaked) name is exact: the
        # interpreter overwrites the flat frame slot unconditionally,
        # which a fresh lexical slot reproduces — only *uses* of a
        # leaked binding depend on whether the leaking block executed,
        # so the taint is tracked per name and cleared here rather than
        # poisoning the whole method
        if not toplevel:
            if visible is not _MISSING and visible is not None:
                # nested redeclaration of a visible local: the
                # interpreter overwrites the shared flat slot and the
                # write survives the block — renaming cannot mirror that
                self.hazard("nested-shadowing")
            added.append((name, visible,
                          self.tenv.get(name) if visible is not _MISSING
                          else None))
        slot = self._slot(name)
        self.scope[name] = slot
        self.declared_locals.add(name)
        try:
            self.tenv[name] = (convert_type(declared_type)
                               if declared_type is not None else None)
        except Exception:
            self.tenv[name] = None
        self.facts.vars[node_id] = ("local", slot)

    def walk_stmt(self, stmt: ast.Stmt, added, toplevel: bool) -> None:
        if isinstance(stmt, ast.Block):
            self.walk_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            if stmt.init is not None:
                self.walk_expr(stmt.init)
            self._declare(stmt.name, stmt.declared_type, added, toplevel,
                          id(stmt))
        elif isinstance(stmt, ast.AssignLocal):
            self.walk_expr(stmt.value)
            slot = self.scope.get(stmt.name, _MISSING)
            if slot is None:
                self.hazard("use-of-leaked-local")
            elif slot is _MISSING:
                # implicit this-field write
                if self.cls is None or self.info.lookup_field(
                        self.cls.name, stmt.name) is None:
                    self.hazard("unresolved-assignment")
                self.field_fallbacks.add(stmt.name)
                self.facts.vars[id(stmt)] = ("field",)
            else:
                self.facts.vars[id(stmt)] = ("local", slot)
        elif isinstance(stmt, ast.AssignField):
            self.walk_expr(stmt.value)
            self._classify_target(stmt, stmt.target, stmt.field_name,
                                  write=True)
        elif isinstance(stmt, ast.ExprStmt):
            self.walk_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.walk_expr(stmt.cond)
            self.walk_block(stmt.then_body)
            if stmt.else_body is not None:
                self.walk_block(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self.walk_expr(stmt.cond)
            self.walk_block(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.walk_expr(stmt.value)
        elif isinstance(stmt, ast.Fork):
            self.hazard("fork")
            self.walk_expr(stmt.call.target)
            for a in stmt.call.args:
                self.walk_expr(a)
        elif isinstance(stmt, ast.RegionStmt):
            self._walk_region(stmt)
        elif isinstance(stmt, ast.SubregionStmt):
            self.hazard("subregion")
            self.walk_expr(stmt.parent_handle)
            # still walk the body for more hazards / slot hygiene
            self._walk_scoped_body(stmt.region_name, stmt.handle_name,
                                   stmt.body, id(stmt))
        else:
            self.hazard("unknown-statement")

    def _walk_region(self, stmt: ast.RegionStmt) -> None:
        if stmt.kind is not None:
            # user region kinds bring shared semantics, portals and
            # subregions; the straight-line backends punt on all of it
            self.hazard("region-kind")
        self._walk_scoped_body(stmt.region_name, stmt.handle_name,
                               stmt.body, id(stmt))

    def _walk_scoped_body(self, region_name: str, handle_name: str,
                          body: ast.Block, node_id: int) -> None:
        """Region/subregion bodies: the interpreter saves and restores
        ``owners[region_name]`` and ``vars[handle_name]``, so push/pop
        renaming is exact for those two names."""
        self.counter += 1
        region_slot = f"R{self.counter}"
        handle_slot = self._slot(handle_name)
        self.facts.regions[node_id] = (region_slot, handle_slot)
        saved_owner = self.owner_env.get(region_name, _MISSING)
        saved_slot = self.scope.get(handle_name, _MISSING)
        saved_type = self.tenv.get(handle_name, _MISSING)
        self.owner_env[region_name] = ("region", region_slot)
        self.scope[handle_name] = handle_slot
        from ..core.owners import Owner
        self.tenv[handle_name] = HandleType(Owner(region_name))
        try:
            self.walk_block(body)
        finally:
            if saved_owner is _MISSING:
                self.owner_env.pop(region_name, None)
            else:
                self.owner_env[region_name] = saved_owner
            if saved_slot is _MISSING:
                self.scope.pop(handle_name, None)
            else:
                self.scope[handle_name] = saved_slot
            if saved_type is _MISSING:
                self.tenv.pop(handle_name, None)
            else:
                self.tenv[handle_name] = saved_type

    # -- target / owner classification -----------------------------------

    def _classify_target(self, node, target: ast.Expr, field_name: str,
                         write: bool) -> None:
        if isinstance(target, ast.VarRef) \
                and target.name in self.info.classes \
                and self.scope.get(target.name, _MISSING) is _MISSING:
            self.facts.targets[id(node)] = "static"
            self.hazard("static-access")
            return
        self.walk_expr(target)
        ttype = self.type_of(target)
        if isinstance(ttype, HandleType):
            self.facts.targets[id(node)] = "portal"
            self.hazard("portal-access")
            return
        if isinstance(ttype, ClassType):
            self.facts.targets[id(node)] = "object"
            if ttype.name in self.info.classes and self.info.lookup_field(
                    ttype.name, field_name) is None:
                self.hazard("unknown-field")
            return
        self.facts.targets[id(node)] = "object"
        self.hazard("untyped-field-target")

    def resolve_owner(self, owner: ast.OwnerAst) -> None:
        name = owner.name
        if name == "this":
            desc = ("this",) if self.cls is not None else None
        elif name == "heap":
            desc = ("heap",)
        elif name == "immortal":
            desc = ("immortal",)
        elif name == "initialRegion":
            desc = ("initial",)
        else:
            desc = self.owner_env.get(name)
        if desc is None:
            self.hazard("unbound-owner")
            desc = ("unbound", name)
        self.facts.owners[id(owner)] = desc

    # -- expressions -----------------------------------------------------

    def walk_expr(self, expr: ast.Expr) -> None:
        self.type_of(expr)
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit,
                             ast.NullLit, ast.ThisRef)):
            return
        if isinstance(expr, ast.VarRef):
            slot = self.scope.get(expr.name, _MISSING)
            if slot is None:
                self.hazard("use-of-leaked-local")
            elif slot is _MISSING:
                if self.cls is None or self.info.lookup_field(
                        self.cls.name, expr.name) is None:
                    self.hazard("unresolved-var")
                self.field_fallbacks.add(expr.name)
                self.facts.vars[id(expr)] = ("field",)
            else:
                self.facts.vars[id(expr)] = ("local", slot)
            return
        if isinstance(expr, ast.NewExpr):
            for o in expr.owners:
                self.resolve_owner(o)
            for a in expr.args:
                self.walk_expr(a)
            return
        if isinstance(expr, ast.FieldRead):
            self._classify_target(expr, expr.target, expr.field_name,
                                  write=False)
            return
        if isinstance(expr, ast.Invoke):
            self.walk_expr(expr.target)
            for o in expr.owner_args:
                self.resolve_owner(o)
            for a in expr.args:
                self.walk_expr(a)
            ttype = self.type_of(expr.target)
            if isinstance(ttype, ClassType) \
                    and ttype.name in _ARRAY_CLASSES:
                if expr.method_name in ("get", "set", "length"):
                    self.facts.invokes[id(expr)] = (
                        "native", expr.method_name)
                else:
                    self.hazard("unknown-array-method")
            elif isinstance(ttype, ClassType) \
                    and ttype.name in self.info.classes \
                    and not self.info.classes[ttype.name].builtin:
                entry = self.low.call_table.get(
                    (ttype.name, expr.method_name))
                if entry is None:
                    self.hazard("unknown-method")
                else:
                    mono = ttype.name not in self.low.extended
                    self.facts.invokes[id(expr)] = (
                        "call", ttype.name, mono)
            else:
                self.hazard("untyped-receiver")
            return
        if isinstance(expr, ast.Binary):
            self.walk_expr(expr.left)
            self.walk_expr(expr.right)
            return
        if isinstance(expr, ast.Unary):
            self.walk_expr(expr.operand)
            return
        if isinstance(expr, ast.BuiltinCall):
            for a in expr.args:
                self.walk_expr(a)
            if expr.name not in ("print", "io", "yieldnow", "sqrt",
                                 "itof", "ftoi", "check"):
                self.hazard("unknown-builtin")
            return
        self.hazard("unknown-expression")


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def _lower(analyzed: AnalyzedProgram) -> LoweredProgram:
    info = analyzed.info
    program = analyzed.program
    classes = _classes_parents_first(program.classes)

    call_table: Dict[Tuple[str, str], CallEntry] = {}
    for name in info.classes:
        if info.classes[name].builtin and name not in _ARRAY_CLASSES:
            continue
        for method in _visible_methods(info, name):
            entry = _build_call_entry(info, name, method)
            if entry is not None:
                call_table[(name, method)] = entry

    layouts: Dict[str, Tuple[Tuple[str, Any], ...]] = {}
    for cls in classes:
        layouts[cls.name] = _layout(info, cls.name)

    extended: Set[str] = set()
    for ci in info.classes.values():
        sup = ci.superclass
        while sup is not None:
            extended.add(sup.name)
            parent = info.classes.get(sup.name)
            sup = parent.superclass if parent is not None else None

    lowered = LoweredProgram(
        analyzed=analyzed, classes=classes, layouts=layouts,
        call_table=call_table, units={}, extended=extended, hazards=set())

    for cls in classes:
        for meth in cls.methods:
            mi = info.lookup_method(cls.name, meth.name)
            rtype = mi.return_type if mi is not None else None
            ci = info.classes[cls.name]
            unit = MethodUnit(
                key=(cls.name, meth.name), class_decl=cls, method=meth,
                body=meth.body,
                class_formals=tuple(ci.formal_names),
                owner_formals=tuple(f.name for f in meth.formals),
                param_names=tuple(p for _t, p in meth.params),
                default=_default_return(rtype))
            lowered.units[unit.key] = unit
    if program.main is not None:
        lowered.units[("", "<main>")] = MethodUnit(
            key=("", "<main>"), class_decl=None, method=None,
            body=program.main, class_formals=(), owner_formals=(),
            param_names=(), default=None)

    for unit in lowered.units.values():
        _FactsPass(lowered, unit).walk_unit()
        lowered.hazards |= unit.facts.hazards
    return lowered


_CACHE = IdentityCache()


def lower(analyzed: AnalyzedProgram) -> LoweredProgram:
    """Lower ``analyzed`` (cached per analysis object)."""
    hit = _CACHE.get(analyzed)
    if hit is not None:
        return hit
    lowered = _lower(analyzed)
    _CACHE.set(analyzed, lowered)
    return lowered
