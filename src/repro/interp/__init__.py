"""Execution engine: a deterministic, preemptible interpreter for the core
language running on the simulated RTSJ platform of :mod:`repro.rtsj`.

* :mod:`~repro.interp.values`      — runtime values (region handles).
* :mod:`~repro.interp.interpreter` — generator-based tree-walking
  interpreter; every operation yields its cycle cost so the scheduler can
  preempt between any two operations.
* :mod:`~repro.interp.machine`     — ties program + regions + GC +
  scheduler + checks together; the public ``run_source`` entry point.
* :mod:`~repro.interp.translate`   — the Section 2.6 translation to RTSJ
  (allocation-site strategies, wrapper layout, pseudo-Java output).
"""

from .machine import Machine, RunOptions, RunResult, run_source

__all__ = ["Machine", "RunOptions", "RunResult", "run_source"]
