"""C backend: the erased-checks subset, compiled through ``cc``/cffi.

This backend is the paper's Section 2.6 made literal: ownership *types*
are erased, and because the accepted configuration never consults an
owner as anything but an allocation region, owner *values* erase to
bare region pointers — the generated C carries no check machinery and
no owner tuples beyond those pointers.  It compiles only the
configuration where that erasure is total:

* static-checks mode (``checks_enabled=False``, ``validate=False``) —
  with checks on, check *cycles* are observable and the C code would
  have to re-grow the ancestry machinery it just erased;
* hazard-free programs (the fused subset: no forks, subregions,
  portals, statics, or shadowing the slot renaming cannot mirror),
  with plain ``LT``/``VT`` regions, heap and immortal areas;
* monomorphic dispatch (receiver static class not extended) — calls
  become direct C calls, and receiver owner-slot offsets are
  compile-time constants.

Anything else raises :class:`CodegenUnsupported`; ``machine.execute``
falls back to the ``py`` backend with identical observable behaviour.
The same applies when ``cffi`` or a C compiler is missing — the
backend auto-skips, it never fails a run.

Exactness follows the fused Python backend's contract (cycles, output
and every ``Stats.summary()`` counter byte-identical, or bail): the C
code computes cycles/steps/counters in int64 globals and a tagged
output stream; the host coroutine wrapper commits them through the
same single mega-yield protocol as the fused backend (plus one
``charge_direct`` call for region-exit charges), or flags
``program_bailed``.  Conditions C cannot reproduce exactly bail via
``longjmp``: simulated failures (null deref, bounds, LT overflow,
division by zero, a failed ``check``), int64 overflow (host ints are
unbounded), int/float comparisons beyond 2**53 (the host compares
exactly, C would round), ``max_cycles``/GC-trigger crossings,
recursion past the C guard depth, and output-buffer overflow.

Objects are arena-allocated ``{area, len, slots[]}`` records; a class
instance's slot array is its fields (inherited first, the layout the
lowering computed) followed by its class-formal owner areas, which
mono dispatch reads back at compile-time-constant offsets.  Regions
are arena-allocated ``{policy, bytes_used, chunks, budget, live,
nobj}`` records; ``destroy`` at block exit reproduces the
interpreter's flush accounting (object count out, bytes/chunks to
zero, dead thereafter — a later allocation into a captured dead
region bails exactly where the interpreter errors).

Artifacts (``<sha>.c`` / ``<sha>.so``) live under
``$REPRO_CODEGEN_DIR`` (default: a per-user directory in the system
temp dir) and are reused across processes.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import struct
import subprocess
import tempfile
from typing import Any, Dict, List, Tuple

from ..core.program import convert_type
from ..core.types import BOOLEAN, ClassType, FLOAT, INT
from ..lang import ast
from ..rtsj.regions import MemoryArea
from .codegen_base import (CodegenUnsupported, IdentityCache,
                           SourceWriter, cost_key)
from .lower import THIS, LoweredProgram, MethodUnit, lower

_MAIN_KEY = ("", "<main>")

#: value kinds: int64, double, bool-as-int64, object pointer
_I, _D, _B, _P = "i", "d", "b", "p"

_CTYPE = {_I: "int64_t", _D: "double", _B: "int64_t", _P: "Obj *"}
_MEMBER = {_I: "i", _B: "i", _D: "d", _P: "o"}

#: tagged output stream records (decoded by the host wrapper)
_TAG_INT, _TAG_FLOAT, _TAG_BOOL = 0, 1, 2

#: result vector layout (see ``repro_run`` in the entry block)
_RES_FIELDS = 14
(_R_CY, _R_SP, _R_ALLOCS, _R_BYTES, _R_ALLOC_CY, _R_HEAP, _R_PEAK,
 _R_IO, _R_THREAD, _R_OUT, _R_DIRECT, _R_REGION_CY, _R_REGIONS,
 _R_FREED) = range(_RES_FIELDS)

#: output stream capacity, in (tag, payload) records; overflow bails
_OUT_RECORDS = 1 << 16

#: C call-depth guard: programs recursing past the interpreter's host
#: recursion limit error out there anyway, so bailing well above it is
#: always exact — and it keeps the C stack bounded
_DEPTH_MAX = 2000


def _kind_of(t: Any) -> str:
    if t == INT:
        return _I
    if t == FLOAT:
        return _D
    if t == BOOLEAN:
        return _B
    if isinstance(t, ClassType):
        return _P
    raise CodegenUnsupported(f"untypeable value ({t!r})")


def _bake_c(value: Any) -> str:
    """C literal text for a source literal."""
    if value is None:
        return "NULL"
    if value is True:
        return "1"
    if value is False:
        return "0"
    if isinstance(value, int):
        if value == -(2 ** 63):
            return "INT64_MIN"
        if not (-(2 ** 63) < value < 2 ** 63):
            raise CodegenUnsupported("int literal beyond int64")
        return f"{value}LL"
    if isinstance(value, float):
        return value.hex()        # C99 hex float: exact round trip
    raise CodegenUnsupported(f"cannot bake {value!r}")


def _fn_name(key: Tuple[str, str]) -> str:
    from .codegen_base import mangle
    return f"c_{mangle(key[0])}__{mangle(key[1])}"


def _decl(kind: str, name: str, init: str) -> str:
    pad = "" if kind == _P else " "
    return f"{_CTYPE[kind]}{pad}{name} = {init};"


class _CFn:
    """Emit state for one C function (mirrors ``codegen_py._Fn``)."""

    __slots__ = ("unit", "facts", "pend_cy", "pend_sp", "ntmp",
                 "decls", "slot_kinds", "body", "regions", "cur_region")

    def __init__(self, unit: MethodUnit) -> None:
        self.unit = unit
        self.facts = unit.facts
        self.pend_cy = 0
        self.pend_sp = 0
        self.ntmp = 0
        #: declaration lines for the function prologue
        self.decls: List[str] = []
        #: slot name -> value kind
        self.slot_kinds: Dict[str, str] = {}
        self.body = SourceWriter()
        #: open region slot names, outer first
        self.regions: List[str] = []
        self.cur_region = "(&g_heap)" if unit.is_main else "R"

    def tmp(self, kind: str) -> str:
        self.ntmp += 1
        name = f"_t{self.ntmp}"
        self.decls.append(
            _decl(kind, name, "NULL" if kind == _P else "0"))
        return name

    def rtmp(self) -> str:
        """A Region* temporary."""
        self.ntmp += 1
        name = f"_t{self.ntmp}"
        self.decls.append(f"Region *{name} = NULL;")
        return name

    def declare_slot(self, slot: str, kind: str) -> None:
        if slot not in self.slot_kinds:
            self.slot_kinds[slot] = kind
            self.decls.append(
                _decl(kind, slot, "NULL" if kind == _P else "0"))
        elif self.slot_kinds[slot] != kind:
            raise CodegenUnsupported("slot kind conflict")

    def declare_region(self, rslot: str) -> None:
        self.decls.append(f"Region *{rslot} = NULL;")


class _CEmitter:
    """Emits the whole program as one C translation unit.

    The charging discipline is the fused backend's: compile-time
    constant cycles/steps accumulate in ``pend_cy``/``pend_sp`` and
    flush into the per-function ``cy``/``sp`` locals before any
    branch; every return commits ``g_cy += cy; g_sp += sp``.
    """

    def __init__(self, lowered: LoweredProgram, cost: Any) -> None:
        self.low = lowered
        self.c = cost
        #: class -> field name -> (slot index, kind)
        self.field_maps: Dict[str, Dict[str, Tuple[int, str]]] = {}
        #: class -> number of field slots (owner areas live after them)
        self.nfields: Dict[str, int] = {}
        for cls, layout in lowered.layouts.items():
            fmap: Dict[str, Tuple[int, str]] = {}
            for i, (fname, _init) in enumerate(layout):
                fi = lowered.info.lookup_field(cls, fname)
                if fi is None:
                    raise CodegenUnsupported("layout field without info")
                fmap[fname] = (i, _kind_of(fi.type))
            self.field_maps[cls] = fmap
            self.nfields[cls] = len(layout)

    # -- plumbing --------------------------------------------------------

    def flush(self, fn: _CFn) -> None:
        if fn.pend_cy:
            fn.body.emit(f"cy += {fn.pend_cy};")
            fn.pend_cy = 0
        if fn.pend_sp:
            fn.body.emit(f"sp += {fn.pend_sp};")
            fn.pend_sp = 0

    def _type(self, expr: ast.Expr, fn: _CFn) -> Any:
        return fn.facts.types.get(id(expr))

    def _truth(self, atom: str, kind: str) -> str:
        if kind == _P:
            return f"({atom} != NULL)"
        if kind == _D:
            return f"({atom} != 0.0)"
        return f"({atom} != 0)"

    def _as_double(self, atom: str, kind: str, compare: bool) -> str:
        """int operand of a mixed int/double operation.  Arithmetic
        converts with round-to-nearest on both hosts; *comparisons*
        are exact on the Python side, so they go through the guarded
        ``i2d`` (bails beyond 2**53)."""
        if kind == _D:
            return atom
        return f"i2d({atom})" if compare else f"(double)({atom})"

    def _field(self, cls: str, fname: str) -> Tuple[int, str]:
        fmap = self.field_maps.get(cls)
        if fmap is None or fname not in fmap:
            raise CodegenUnsupported(f"unknown field {cls}.{fname}")
        return fmap[fname]

    def _recv_class(self, target: ast.Expr, fn: _CFn) -> str:
        t = self._type(target, fn)
        if isinstance(t, ClassType) and t.name in self.field_maps:
            return t.name
        raise CodegenUnsupported("untyped field receiver")

    # -- owner areas -----------------------------------------------------

    def area_atom(self, fn: _CFn, desc: Tuple[Any, ...]) -> str:
        """The *region* an owner descriptor denotes.  Owner values are
        pre-resolved to areas: the accepted subset only ever consults
        an owner through ``region_of_owner``, so ``this``-like object
        owners collapse to their areas with no observable loss."""
        kind = desc[0]
        if kind == "this":
            return "S->area"
        if kind == "heap":
            return "(&g_heap)"
        if kind == "immortal":
            return "(&g_imm)"
        if kind == "initial":
            return "(&g_heap)" if fn.unit.is_main else "R"
        if kind == "cformal":
            return f"CO{desc[1]}"
        if kind == "mformal":
            try:
                idx = fn.unit.owner_formals.index(desc[1])
            except ValueError:
                raise CodegenUnsupported(f"unknown owner formal {desc[1]!r}")
            return f"OV{idx}"
        if kind == "region":
            return desc[1]
        raise CodegenUnsupported(f"owner descriptor {desc!r}")

    def _owner_areas(self, fn: _CFn, owner_nodes) -> List[str]:
        atoms = []
        for o in owner_nodes:
            desc = fn.facts.owners.get(id(o))
            if desc is None:
                raise CodegenUnsupported("missing owner fact")
            atoms.append(self.area_atom(fn, desc))
        return atoms

    def _selector_areas(self, entry, recv: str, static_cls: str) -> List[str]:
        """Rebuild the defining class's owner areas from the receiver.
        Mono dispatch pins the runtime class to ``static_cls``, so the
        owner-slot offset is a compile-time constant."""
        nf = self.nfields.get(static_cls)
        if nf is None:
            raise CodegenUnsupported(f"no layout for {static_cls!r}")
        info = self.low.info.classes.get(static_cls)
        if info is None:
            raise CodegenUnsupported(f"no info for {static_cls!r}")
        nformals = len(info.formal_names)
        if entry.selectors is None:
            # identity: receiver owners pass through to the defining
            # class's formals in order
            sels: Tuple[Any, ...] = tuple(range(len(entry.class_formals)))
        else:
            sels = entry.selectors
        if len(sels) != len(entry.class_formals):
            raise CodegenUnsupported("selector arity")
        atoms = []
        for sel in sels:
            if sel is THIS:
                atoms.append(f"{recv}->area")
            elif isinstance(sel, int):
                if not 0 <= sel < nformals:
                    raise CodegenUnsupported("selector out of range")
                atoms.append(f"{recv}->slots[{nf + sel}].r")
            elif sel == "heap":
                atoms.append("(&g_heap)")
            elif sel == "immortal":
                atoms.append("(&g_imm)")
            else:
                raise CodegenUnsupported(f"selector {sel!r}")
        return atoms

    # -- expressions -----------------------------------------------------

    def eval(self, fn: _CFn, e: ast.Expr) -> Tuple[str, str]:
        """Returns ``(atom, kind)``."""
        c = self.c
        w = fn.body
        if isinstance(e, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            kind = _I if isinstance(e, ast.IntLit) else (
                _D if isinstance(e, ast.FloatLit) else _B)
            return _bake_c(e.value), kind
        if isinstance(e, ast.NullLit):
            return "NULL", _P
        if isinstance(e, ast.ThisRef):
            return ("NULL", _P) if fn.unit.is_main else ("S", _P)
        if isinstance(e, ast.VarRef):
            fact = fn.facts.vars.get(id(e))
            if fact is None:
                raise CodegenUnsupported("missing var fact")
            if fact[0] == "local":
                slot = fact[1]
                if slot not in fn.slot_kinds:
                    raise CodegenUnsupported("read of undeclared slot")
                fn.pend_cy += c.op_local
                return slot, fn.slot_kinds[slot]
            if fn.unit.class_decl is None:
                raise CodegenUnsupported("field fallback in main")
            return self.field_get(fn, ("S", _P),
                                  fn.unit.class_decl.name, e.name)
        if isinstance(e, ast.FieldRead):
            if fn.facts.targets.get(id(e)) != "object":
                raise CodegenUnsupported("non-object field read")
            cls = self._recv_class(e.target, fn)
            recv = self.eval(fn, e.target)
            return self.field_get(fn, recv, cls, e.field_name)
        if isinstance(e, ast.NewExpr):
            return self.emit_new(fn, e)
        if isinstance(e, ast.Invoke):
            return self.emit_invoke(fn, e)
        if isinstance(e, ast.Binary):
            return self.emit_binary(fn, e)
        if isinstance(e, ast.Unary):
            v, k = self.eval(fn, e.operand)
            fn.pend_cy += c.op_basic
            if e.op == "!":
                t = fn.tmp(_B)
                w.emit(f"{t} = !{self._truth(v, k)};")
                return t, _B
            if e.op == "-":
                if k == _D:
                    t = fn.tmp(_D)
                    w.emit(f"{t} = -({v});")
                    return t, _D
                if k in (_I, _B):
                    t = fn.tmp(_I)
                    w.emit(f"{t} = subi(0, {v});")
                    return t, _I
            raise CodegenUnsupported(f"unary {e.op!r}")
        if isinstance(e, ast.BuiltinCall):
            return self.emit_builtin(fn, e)
        raise CodegenUnsupported(f"expression {type(e).__name__}")

    def field_get(self, fn: _CFn, recv: Tuple[str, str], cls: str,
                  fname: str) -> Tuple[str, str]:
        atom, k = recv
        if k != _P:
            raise CodegenUnsupported("field read on non-pointer")
        idx, kind = self._field(cls, fname)
        fn.pend_cy += self.c.op_field_read
        t = fn.tmp(kind)
        fn.body.emit(f"{t} = rq({atom})->slots[{idx}].{_MEMBER[kind]};")
        return t, kind

    def field_put(self, fn: _CFn, recv: Tuple[str, str], cls: str,
                  fname: str, value: Tuple[str, str]) -> None:
        atom, k = recv
        if k != _P:
            raise CodegenUnsupported("field write on non-pointer")
        idx, kind = self._field(cls, fname)
        v, vk = value
        if not self._assignable(kind, vk):
            raise CodegenUnsupported("field write kind mismatch")
        o = fn.tmp(_P)
        fn.body.emit(f"{o} = rq({atom});")
        fn.pend_cy += self.c.op_field_write
        fn.body.emit(f"{o}->slots[{idx}].{_MEMBER[kind]} = {v};")

    def _assignable(self, dst: str, src: str) -> bool:
        # exact kind match.  The int/bool distinction is kept strict so
        # ``print`` formatting (true/false vs digits) can never observe
        # a mismatch; null literals are plain _P values already.
        return dst == src

    def emit_binary(self, fn: _CFn, e: ast.Binary) -> Tuple[str, str]:
        c = self.c
        w = fn.body
        op = e.op
        if op in ("&&", "||"):
            a, ak = self.eval(fn, e.left)
            fn.pend_cy += c.op_basic
            t = fn.tmp(_B)
            self.flush(fn)
            cond = self._truth(a, ak)
            w.emit(f"if ({cond}) {{" if op == "&&"
                   else f"if (!{cond}) {{")
            w.indent()
            b, bk = self.eval(fn, e.right)
            w.emit(f"{t} = {self._truth(b, bk)};")
            self.flush(fn)
            w.dedent()
            w.emit("} else {")
            w.indent()
            w.emit(f"{t} = 0;" if op == "&&" else f"{t} = 1;")
            w.dedent()
            w.emit("}")
            return t, _B
        a, ak = self.eval(fn, e.left)
        b, bk = self.eval(fn, e.right)
        fn.pend_cy += c.op_basic
        nums = (_I, _B, _D)
        if op in ("+", "-", "*"):
            if ak not in nums or bk not in nums:
                raise CodegenUnsupported("arithmetic on non-numbers")
            if ak == _D or bk == _D:
                t = fn.tmp(_D)
                la = self._as_double(a, ak, compare=False)
                lb = self._as_double(b, bk, compare=False)
                w.emit(f"{t} = {la} {op} {lb};")
                return t, _D
            t = fn.tmp(_I)
            helper = {"+": "addi", "-": "subi", "*": "muli"}[op]
            w.emit(f"{t} = {helper}({a}, {b});")
            return t, _I
        if op in ("/", "%"):
            if ak not in nums or bk not in nums:
                raise CodegenUnsupported("arithmetic on non-numbers")
            if ak == _D or bk == _D:
                t = fn.tmp(_D)
                la = self._as_double(a, ak, compare=False)
                lb = self._as_double(b, bk, compare=False)
                w.emit(f"{t} = {'dvd' if op == '/' else 'mdd'}"
                       f"({la}, {lb});")
                return t, _D
            t = fn.tmp(_I)
            w.emit(f"{t} = {'dvi' if op == '/' else 'mdi'}({a}, {b});")
            return t, _I
        if op in ("<", "<=", ">", ">="):
            if ak not in nums or bk not in nums:
                raise CodegenUnsupported("comparison on non-numbers")
            t = fn.tmp(_B)
            if ak == _D or bk == _D:
                la = self._as_double(a, ak, compare=True)
                lb = self._as_double(b, bk, compare=True)
                w.emit(f"{t} = ({la} {op} {lb});")
            else:
                w.emit(f"{t} = ({a} {op} {b});")
            return t, _B
        if op in ("==", "!="):
            t = fn.tmp(_B)
            if ak in nums and bk in nums:
                if ak == _D or bk == _D:
                    la = self._as_double(a, ak, compare=True)
                    lb = self._as_double(b, bk, compare=True)
                    w.emit(f"{t} = ({la} {op} {lb});")
                else:
                    w.emit(f"{t} = ({a} {op} {b});")
            elif ak == _P and bk == _P:
                w.emit(f"{t} = ({a} {op} {b});")
            else:
                raise CodegenUnsupported("mixed-kind equality")
            return t, _B
        raise CodegenUnsupported(f"operator {op!r}")

    def emit_new(self, fn: _CFn, e: ast.NewExpr) -> Tuple[str, str]:
        w = fn.body
        if not e.owners:
            raise CodegenUnsupported("new with no owners")
        areas = self._owner_areas(fn, e.owners)
        tgt = fn.rtmp()
        w.emit(f"{tgt} = {areas[0]};")
        t = fn.tmp(_P)
        if e.class_name in ("IntArray", "FloatArray"):
            if len(e.args) != 1:
                raise CodegenUnsupported("array new arity")
            ln, lk = self.eval(fn, e.args[0])
            if lk not in (_I, _B):
                raise CodegenUnsupported("array length kind")
            w.emit(f"if ({ln} < 0) g_bail();")
            w.emit(f"{t} = alloc_obj({tgt}, {ln}, {ln});")
            w.emit(f"cy += alloc_in({tgt}, 16 + 8 * {ln});")
            return t, _P
        if e.args:
            raise CodegenUnsupported("constructor arguments")
        layout = self.low.layouts.get(e.class_name)
        if layout is None:
            raise CodegenUnsupported(f"no layout for {e.class_name!r}")
        nf = len(layout)
        w.emit(f"{t} = alloc_obj({tgt}, {nf}, {nf + len(areas)});")
        fmap = self.field_maps[e.class_name]
        for fname, init in layout:
            if init is not None:
                idx, kind = fmap[fname]
                if not self._assignable(kind, _kind_of_literal(init)):
                    raise CodegenUnsupported("field init kind mismatch")
                w.emit(f"{t}->slots[{idx}].{_MEMBER[kind]} = "
                       f"{_bake_c(init)};")
        for j, area in enumerate(areas):
            w.emit(f"{t}->slots[{nf + j}].r = {area};")
        w.emit(f"cy += alloc_in({tgt}, {16 + 8 * nf});")
        return t, _P

    def emit_invoke(self, fn: _CFn, e: ast.Invoke) -> Tuple[str, str]:
        c = self.c
        w = fn.body
        disp = fn.facts.invokes.get(id(e))
        if disp is None:
            raise CodegenUnsupported("missing invoke fact")
        recv, rk = self.eval(fn, e.target)
        if rk != _P:
            raise CodegenUnsupported("invoke on non-pointer")
        r = fn.tmp(_P)
        w.emit(f"{r} = rq({recv});")
        args = [self.eval(fn, a) for a in e.args]
        if disp[0] == "native":
            ttype = self._type(e.target, fn)
            if not isinstance(ttype, ClassType):
                raise CodegenUnsupported("untyped array receiver")
            ek = _I if ttype.name == "IntArray" else _D
            member = _MEMBER[ek]
            op = disp[1]
            if op == "get":
                if len(args) < 1 or args[0][1] not in (_I, _B):
                    raise CodegenUnsupported("array get arity")
                fn.pend_cy += c.op_field_read
                t = fn.tmp(ek)
                w.emit(f"{t} = {r}->slots[idx_ck({r}, "
                       f"{args[0][0]})].{member};")
                return t, ek
            if op == "set":
                if len(args) < 2 or args[0][1] not in (_I, _B):
                    raise CodegenUnsupported("array set arity")
                if args[1][1] != ek:
                    raise CodegenUnsupported("array element kind")
                fn.pend_cy += c.op_field_write
                w.emit(f"{r}->slots[idx_ck({r}, "
                       f"{args[0][0]})].{member} = {args[1][0]};")
                return "NULL", _P
            if op == "length":
                fn.pend_cy += c.op_basic
                t = fn.tmp(_I)
                w.emit(f"{t} = {r}->len;")
                return t, _I
            raise CodegenUnsupported(f"native {op!r}")
        _tag, static_cls, mono = disp
        if not mono:
            raise CodegenUnsupported("polymorphic dispatch")
        entry = self.low.call_table.get((static_cls, e.method_name))
        if entry is None or entry.native is not None:
            raise CodegenUnsupported("unresolvable call")
        target_key = (entry.impl_class, e.method_name)
        if target_key not in self.low.units:
            raise CodegenUnsupported("no body for call target")
        if len(e.owner_args) != len(entry.owner_formals):
            raise CodegenUnsupported("owner-arg arity")
        co = self._selector_areas(entry, r, static_cls)
        ov = self._owner_areas(fn, e.owner_args)
        callee = self.low.units[target_key]
        pkinds = _param_kinds(callee)
        if len(args) != len(pkinds):
            raise CodegenUnsupported("call arity")
        for (_a, akind), pk in zip(args, pkinds):
            if not self._assignable(pk, akind):
                raise CodegenUnsupported("argument kind mismatch")
        fn.pend_cy += c.op_invoke
        rkind = _return_kind(self.low, target_key)
        t = fn.tmp(rkind)
        parts = [r] + co + ov + [fn.cur_region] + [a for a, _k in args]
        w.emit(f"{t} = {_fn_name(target_key)}({', '.join(parts)});")
        return t, rkind

    def emit_builtin(self, fn: _CFn, e: ast.BuiltinCall) -> Tuple[str, str]:
        c = self.c
        w = fn.body
        name = e.name
        if name == "yieldnow":
            if e.args:
                raise CodegenUnsupported("yieldnow arity")
            w.emit(f"g_thread_cy += {c.thread_yield};")
            fn.pend_cy += c.thread_yield
            return "NULL", _P
        if name not in ("print", "io", "sqrt", "itof", "ftoi", "check") \
                or len(e.args) != 1:
            raise CodegenUnsupported(f"builtin {name!r}")
        v, k = self.eval(fn, e.args[0])
        if name == "print":
            fn.pend_cy += c.op_builtin
            if k == _I:
                w.emit(f"rec_out({_TAG_INT}, {v});")
            elif k == _B:
                w.emit(f"rec_out({_TAG_BOOL}, {self._truth(v, _B)});")
            elif k == _D:
                w.emit(f"rec_out_d({_TAG_FLOAT}, {v});")
            else:
                raise CodegenUnsupported("print of a reference")
            return "NULL", _P
        if name == "io":
            if k not in (_I, _B):
                raise CodegenUnsupported("io arg kind")
            ti = fn.tmp(_I)
            tc = fn.tmp(_I)
            w.emit(f"{ti} = {v};")
            w.emit(f"{tc} = {c.op_builtin} + ({ti} > 0 ? {ti} : 0);")
            w.emit(f"g_io_cy += {tc};")
            w.emit(f"cy += {tc};")
            return ti, _I
        if name == "sqrt":
            if k not in (_I, _B, _D):
                raise CodegenUnsupported("sqrt arg kind")
            fn.pend_cy += c.op_builtin
            t = fn.tmp(_D)
            w.emit(f"if ({v} < 0) g_bail();")
            arg = self._as_double(v, k, compare=False)
            w.emit(f"{t} = sqrt({arg});")
            return t, _D
        if name == "itof":
            if k not in (_I, _B):
                raise CodegenUnsupported("itof arg kind")
            fn.pend_cy += c.op_basic
            t = fn.tmp(_D)
            w.emit(f"{t} = (double)({v});")
            return t, _D
        if name == "ftoi":
            fn.pend_cy += c.op_basic
            t = fn.tmp(_I)
            if k == _D:
                w.emit(f"{t} = f2i({v});")
            elif k in (_I, _B):
                w.emit(f"{t} = {v};")
            else:
                raise CodegenUnsupported("ftoi arg kind")
            return t, _I
        # check
        fn.pend_cy += c.op_basic
        w.emit(f"if (!{self._truth(v, k)}) g_bail();")
        return "NULL", _P

    # -- statements ------------------------------------------------------

    def stmt(self, fn: _CFn, s: ast.Stmt) -> None:
        c = self.c
        w = fn.body
        fn.pend_sp += 1
        if isinstance(s, ast.Block):
            for inner in s.stmts:
                self.stmt(fn, inner)
            return
        if isinstance(s, ast.LocalDecl):
            fact = fn.facts.vars.get(id(s))
            if fact is None or fact[0] != "local":
                raise CodegenUnsupported("missing local fact")
            slot = fact[1]
            if s.init is None:
                # the interpreter binds ``null``; only a reference slot
                # can hold that exactly (an uninitialized prim slot
                # would read 0 where the interpreter errors)
                kind = _declared_kind(s.declared_type)
                if kind != _P:
                    raise CodegenUnsupported("uninitialized prim local")
                fn.declare_slot(slot, _P)
                fn.pend_cy += c.op_local
                w.emit(f"{slot} = NULL;")
                return
            v, vk = self.eval(fn, s.init)
            fn.declare_slot(slot, vk)
            if not self._assignable(fn.slot_kinds[slot], vk):
                raise CodegenUnsupported("local init kind mismatch")
            fn.pend_cy += c.op_local
            w.emit(f"{slot} = {v};")
            return
        if isinstance(s, ast.AssignLocal):
            fact = fn.facts.vars.get(id(s))
            if fact is None:
                raise CodegenUnsupported("missing assign fact")
            v, vk = self.eval(fn, s.value)
            if fact[0] == "local":
                slot = fact[1]
                if slot not in fn.slot_kinds:
                    raise CodegenUnsupported("assign to undeclared slot")
                if not self._assignable(fn.slot_kinds[slot], vk):
                    raise CodegenUnsupported("assign kind mismatch")
                fn.pend_cy += c.op_local
                w.emit(f"{slot} = {v};")
            else:
                if fn.unit.class_decl is None:
                    raise CodegenUnsupported("field fallback in main")
                self.field_put(fn, ("S", _P), fn.unit.class_decl.name,
                               s.name, (v, vk))
            return
        if isinstance(s, ast.AssignField):
            if fn.facts.targets.get(id(s)) != "object":
                raise CodegenUnsupported("non-object field write")
            # interpreter order: value first, then target
            v = self.eval(fn, s.value)
            cls = self._recv_class(s.target, fn)
            recv = self.eval(fn, s.target)
            self.field_put(fn, recv, cls, s.field_name, v)
            return
        if isinstance(s, ast.ExprStmt):
            self.eval(fn, s.expr)
            return
        if isinstance(s, ast.If):
            t, tk = self.eval(fn, s.cond)
            fn.pend_cy += c.op_branch
            self.flush(fn)
            w.emit(f"if ({self._truth(t, tk)}) {{")
            w.indent()
            for inner in s.then_body.stmts:
                self.stmt(fn, inner)
            self.flush(fn)
            w.dedent()
            if s.else_body is not None:
                w.emit("} else {")
                w.indent()
                for inner in s.else_body.stmts:
                    self.stmt(fn, inner)
                self.flush(fn)
                w.dedent()
            w.emit("}")
            return
        if isinstance(s, ast.While):
            self.flush(fn)
            w.emit("for (;;) {")
            w.indent()
            # liveness guard, as in the fused backend: exactness is
            # decided by the end-of-run check
            w.emit("if (g_st_cycles + g_direct_cy + cy + g_cy > g_maxc)"
                   " g_bail();")
            t, tk = self.eval(fn, s.cond)
            fn.pend_cy += c.op_branch
            self.flush(fn)
            w.emit(f"if (!{self._truth(t, tk)}) break;")
            for inner in s.body.stmts:
                self.stmt(fn, inner)
            self.flush(fn)
            w.dedent()
            w.emit("}")
            return
        if isinstance(s, ast.Return):
            if s.value is None:
                v, vk = ("NULL", _P)
            else:
                v, vk = self.eval(fn, s.value)
            fn.pend_cy += c.op_return
            self.flush(fn)
            for rslot in reversed(fn.regions):
                self.region_epilogue(fn, rslot)
            w.emit("g_cy += cy; g_sp += sp;")
            if fn.unit.is_main:
                w.emit("return;")
            else:
                if not self._assignable(
                        _return_kind(self.low, fn.unit.key), vk):
                    raise CodegenUnsupported("return kind mismatch")
                w.emit("g_depth--;")
                w.emit(f"return {v};")
            return
        if isinstance(s, ast.RegionStmt):
            self.emit_region(fn, s)
            return
        raise CodegenUnsupported(f"statement {type(s).__name__}")

    def emit_region(self, fn: _CFn, s: ast.RegionStmt) -> None:
        c = self.c
        w = fn.body
        if s.kind is not None:
            raise CodegenUnsupported("region kind")
        pair = fn.facts.regions.get(id(s))
        if pair is None:
            raise CodegenUnsupported("missing region fact")
        rslot, _hslot = pair
        is_lt = s.policy is not None and s.policy.kind == "LT"
        budget = s.policy.size if s.policy is not None else 0
        create_cy = c.region_create + \
            (c.lt_prealloc_per_byte * budget if is_lt else 0)
        fn.declare_region(rslot)
        w.emit(f"{rslot} = mk_region({2 if is_lt else 3}, {budget});")
        w.emit("g_regions_created += 1;")
        fn.pend_cy += create_cy
        w.emit(f"g_region_cy += {create_cy};")
        # the handle binding is free in the interpreter; the handle
        # value itself is unrepresentable here, so any *use* of it
        # (portals are hazards already) fails compilation instead
        saved = fn.cur_region
        fn.regions.append(rslot)
        fn.cur_region = rslot
        for inner in s.body.stmts:
            self.stmt(fn, inner)
        fn.regions.pop()
        fn.cur_region = saved
        self.region_epilogue(fn, rslot)

    def region_epilogue(self, fn: _CFn, rslot: str) -> None:
        rex = self.c.region_exit
        fn.body.emit(f"g_direct_cy += {rex};")
        fn.body.emit(f"g_region_cy += {rex};")
        fn.body.emit(f"g_freed += region_destroy({rslot});")

    # -- functions -------------------------------------------------------

    def _signature(self, unit: MethodUnit, with_names: bool) -> str:
        parts = ["Obj *S" if with_names else "Obj *"]
        for i in range(len(unit.class_formals)):
            parts.append(f"Region *CO{i}" if with_names else "Region *")
        for i in range(len(unit.owner_formals)):
            parts.append(f"Region *OV{i}" if with_names else "Region *")
        parts.append("Region *R" if with_names else "Region *")
        for slot, k in zip(unit.facts.param_slots, _param_kinds(unit)):
            pad = "" if k == _P else " "
            parts.append(f"{_CTYPE[k]}{pad}{slot}" if with_names
                         else _CTYPE[k])
        rkind = _return_kind(self.low, unit.key)
        pad = "" if rkind == _P else " "
        return (f"static {_CTYPE[rkind]}{pad}{_fn_name(unit.key)}"
                f"({', '.join(parts)})")

    def emit_unit(self, w: SourceWriter, unit: MethodUnit) -> None:
        fn = _CFn(unit)
        if not unit.is_main:
            for slot, kind in zip(unit.facts.param_slots,
                                  _param_kinds(unit)):
                fn.slot_kinds[slot] = kind
            fn.body.emit(f"if (++g_depth > {_DEPTH_MAX}) g_bail();")
        for s in unit.body.stmts:
            self.stmt(fn, s)
        self.flush(fn)
        fn.body.emit("g_cy += cy; g_sp += sp;")
        if unit.is_main:
            w.emit("static void c_main(void) {")
        else:
            fn.body.emit("g_depth--;")
            fn.body.emit(f"return {_bake_c(unit.default)};")
            w.emit(self._signature(unit, with_names=True) + " {")
        w.indent()
        w.emit("int64_t cy = 0, sp = 0;")
        for line in fn.decls:
            w.emit(line)
        for line in fn.body.lines:
            w.emit(line)
        w.dedent()
        w.emit("}")
        w.emit("")

    def emit_module(self) -> str:
        c = self.c
        w = SourceWriter()
        prelude = _PRELUDE.format(
            alloc_base=c.alloc_base, alloc_per_byte=c.alloc_per_byte,
            heap_extra=c.heap_alloc_extra, vt_extra=c.vt_alloc_extra,
            vt_chunk=c.vt_chunk_cost,
            chunk_bytes=MemoryArea.VT_CHUNK_BYTES)
        for line in prelude.splitlines():
            w.emit(line)
        w.emit("")
        # prototypes (units may be mutually recursive)
        for key in sorted(self.low.units):
            if key == _MAIN_KEY:
                continue
            w.emit(self._signature(self.low.units[key],
                                   with_names=False) + ";")
        w.emit("")
        for key in sorted(self.low.units):
            if key == _MAIN_KEY:
                continue
            self.emit_unit(w, self.low.units[key])
        self.emit_unit(w, self.low.units[_MAIN_KEY])
        for line in _ENTRY.splitlines():
            w.emit(line)
        return w.source()


def _kind_of_literal(value: Any) -> str:
    if value is None:
        return _P
    if value is True or value is False:
        return _B
    if isinstance(value, int):
        return _I
    if isinstance(value, float):
        return _D
    raise CodegenUnsupported(f"literal {value!r}")


def _declared_kind(declared_type: Any) -> str:
    if declared_type is None:
        return _P
    try:
        return _kind_of(convert_type(declared_type))
    except CodegenUnsupported:
        raise
    except Exception:
        raise CodegenUnsupported("untypeable local declaration")


def _param_kinds(unit: MethodUnit) -> Tuple[str, ...]:
    if unit.method is None:
        return ()
    kinds = []
    for ptype, _pname in unit.method.params:
        try:
            kinds.append(_kind_of(convert_type(ptype)))
        except CodegenUnsupported:
            raise
        except Exception:
            raise CodegenUnsupported("untypeable parameter")
    return tuple(kinds)


def _return_kind(lowered: LoweredProgram, key: Tuple[str, str]) -> str:
    entry = lowered.call_table.get(key)
    if entry is None:
        raise CodegenUnsupported("method without call entry")
    t = entry.return_type
    if t == INT:
        return _I
    if t == FLOAT:
        return _D
    if t == BOOLEAN:
        return _B
    return _P


_PRELUDE = """\
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <setjmp.h>
#include <math.h>

typedef struct Region Region;
typedef union Slot {{ int64_t i; double d; struct Obj *o; Region *r; }} Slot;
typedef struct Obj {{ Region *area; int64_t len; Slot slots[]; }} Obj;
/* policy: 0 heap, 1 immortal, 2 LT, 3 VT */
struct Region {{
    int64_t policy, bytes_used, chunks, lt_budget, live, nobj;
}};

static jmp_buf g_env;
static Region g_heap, g_imm;
static int64_t g_cy, g_sp, g_allocs, g_bytes_alloc, g_alloc_cy;
static int64_t g_peak, g_io_cy, g_thread_cy, g_direct_cy;
static int64_t g_region_cy, g_regions_created, g_freed;
static int64_t g_st_cycles, g_maxc, g_depth;
static int64_t *g_out; static int64_t g_out_cap, g_out_n;
static void **g_ptrs; static int64_t g_nptrs, g_ptr_cap;

static void g_bail(void) {{ longjmp(g_env, 1); }}

static void *arena(size_t bytes) {{
    void *p = calloc(1, bytes);
    if (!p) g_bail();
    if (g_nptrs == g_ptr_cap) {{
        int64_t cap = g_ptr_cap ? g_ptr_cap * 2 : 1024;
        void **np = (void **)realloc(g_ptrs,
                                     (size_t)cap * sizeof(void *));
        if (!np) {{ free(p); g_bail(); }}
        g_ptrs = np; g_ptr_cap = cap;
    }}
    g_ptrs[g_nptrs++] = p;
    return p;
}}

static Obj *alloc_obj(Region *area, int64_t len, int64_t nslots) {{
    Obj *o = (Obj *)arena(sizeof(Obj) + (size_t)nslots * sizeof(Slot));
    o->area = area;
    o->len = len;
    return o;
}}

static Region *mk_region(int64_t policy, int64_t budget) {{
    Region *r = (Region *)arena(sizeof(Region));
    r->policy = policy; r->lt_budget = budget; r->live = 1;
    return r;
}}

/* allocation charge, mirroring MemoryArea.allocate + the
 * interpreter's _build_new cycle formula */
static int64_t alloc_in(Region *reg, int64_t size) {{
    if (!reg->live) g_bail();
    int64_t n = {alloc_base} + {alloc_per_byte} * size;
    if (reg->policy == 2) {{
        if (reg->bytes_used + size > reg->lt_budget) g_bail();
    }} else if (reg->policy == 3) {{
        int64_t before = (reg->bytes_used + {chunk_bytes} - 1)
            / {chunk_bytes};
        int64_t after = (reg->bytes_used + size + {chunk_bytes} - 1)
            / {chunk_bytes};
        int64_t fresh = after - before;
        int64_t floor = (reg->chunks == 0) ? 1 : 0;
        if (fresh < floor) fresh = floor;
        if (after > reg->chunks) reg->chunks = after;
        n += {vt_extra} + {vt_chunk} * fresh;
    }} else if (reg->policy == 0) {{
        n += {heap_extra};
    }}
    reg->bytes_used += size;
    if (reg->policy == 0 && reg->bytes_used > g_peak)
        g_peak = reg->bytes_used;
    reg->nobj += 1;
    g_allocs += 1;
    g_bytes_alloc += size;
    g_alloc_cy += n;
    return n;
}}

/* MemoryArea.destroy: flush (count out, ledger to zero), then dead */
static int64_t region_destroy(Region *r) {{
    int64_t freed = r->nobj;
    r->nobj = 0; r->bytes_used = 0; r->chunks = 0; r->live = 0;
    return freed;
}}

static Obj *rq(Obj *o) {{ if (!o) g_bail(); return o; }}

static int64_t idx_ck(Obj *o, int64_t i) {{
    if (i < 0 || i >= o->len) g_bail();
    return i;
}}

/* overflow-checked int64 ops: host ints are unbounded, so any
 * overflow is an exactness loss -> bail */
static int64_t addi(int64_t a, int64_t b) {{
    int64_t r; if (__builtin_add_overflow(a, b, &r)) g_bail(); return r;
}}
static int64_t subi(int64_t a, int64_t b) {{
    int64_t r; if (__builtin_sub_overflow(a, b, &r)) g_bail(); return r;
}}
static int64_t muli(int64_t a, int64_t b) {{
    int64_t r; if (__builtin_mul_overflow(a, b, &r)) g_bail(); return r;
}}
/* Java division truncates toward zero == C */
static int64_t dvi(int64_t a, int64_t b) {{
    if (b == 0) g_bail();
    if (a == INT64_MIN && b == -1) g_bail();
    return a / b;
}}
static int64_t mdi(int64_t a, int64_t b) {{
    if (b == 0) g_bail();
    if (a == INT64_MIN && b == -1) g_bail();
    return a % b;
}}
static double dvd(double a, double b) {{
    if (b == 0) g_bail();
    return a / b;
}}
static double mdd(double a, double b) {{
    if (b == 0) g_bail();
    return a - (a / b) * b;
}}
/* comparisons against doubles: the host compares int/float exactly,
 * C would round the int — exact only within 2**53 */
static double i2d(int64_t v) {{
    if (v > 9007199254740992LL || v < -9007199254740992LL) g_bail();
    return (double)v;
}}
/* host int(float) truncates toward zero and never overflows */
static int64_t f2i(double v) {{
    if (!(v >= -9223372036854775808.0 && v < 9223372036854775808.0))
        g_bail();
    return (int64_t)v;
}}

static void rec_out(int64_t tag, int64_t bits) {{
    if (g_out_n + 2 > g_out_cap) g_bail();
    g_out[g_out_n++] = tag;
    g_out[g_out_n++] = bits;
}}
static void rec_out_d(int64_t tag, double v) {{
    int64_t bits; memcpy(&bits, &v, 8); rec_out(tag, bits);
}}
"""

_ENTRY = """\
static void g_cleanup(void) {
    for (int64_t i = 0; i < g_nptrs; i++) free(g_ptrs[i]);
    g_nptrs = 0;
}

int64_t repro_run(int64_t st_cycles, int64_t maxc, int64_t heap_bytes,
                  int64_t peak_bytes, int64_t *out, int64_t out_cap,
                  int64_t *res) {
    g_cy = g_sp = g_allocs = g_bytes_alloc = g_alloc_cy = 0;
    g_io_cy = g_thread_cy = g_direct_cy = 0;
    g_region_cy = g_regions_created = g_freed = 0;
    g_out_n = g_depth = 0;
    g_st_cycles = st_cycles; g_maxc = maxc;
    g_out = out; g_out_cap = out_cap;
    memset(&g_heap, 0, sizeof g_heap);
    memset(&g_imm, 0, sizeof g_imm);
    g_heap.policy = 0; g_heap.bytes_used = heap_bytes; g_heap.live = 1;
    g_imm.policy = 1; g_imm.live = 1;
    g_peak = peak_bytes;
    if (setjmp(g_env)) { g_cleanup(); return 1; }
    c_main();
    g_cleanup();
    res[0] = g_cy; res[1] = g_sp; res[2] = g_allocs;
    res[3] = g_bytes_alloc; res[4] = g_alloc_cy;
    res[5] = g_heap.bytes_used; res[6] = g_peak;
    res[7] = g_io_cy; res[8] = g_thread_cy; res[9] = g_out_n;
    res[10] = g_direct_cy; res[11] = g_region_cy;
    res[12] = g_regions_created; res[13] = g_freed;
    return 0;
}
"""


# ---------------------------------------------------------------------------
# toolchain: cc + cffi, with on-disk artifact reuse
# ---------------------------------------------------------------------------

_ffi = None
_LIBS: Dict[str, Any] = {}


def _artifact_dir() -> str:
    path = os.environ.get("REPRO_CODEGEN_DIR")
    if not path:
        uid = os.getuid() if hasattr(os, "getuid") else 0
        path = os.path.join(tempfile.gettempdir(), f"repro-cgen-{uid}")
    os.makedirs(path, exist_ok=True)
    return path


def _find_cc() -> str:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for cand in ("cc", "gcc", "clang"):
        found = shutil.which(cand)
        if found:
            return found
    raise CodegenUnsupported("no C toolchain on PATH")


def _get_ffi() -> Any:
    global _ffi
    if _ffi is None:
        try:
            import cffi
        except ImportError:
            raise CodegenUnsupported("cffi unavailable")
        ffi = cffi.FFI()
        ffi.cdef("int64_t repro_run(int64_t, int64_t, int64_t, int64_t,"
                 " int64_t *, int64_t, int64_t *);")
        _ffi = ffi
    return _ffi


def _get_lib(src: str) -> Any:
    """dlopen'd library for ``src`` (compiled once per source hash)."""
    sha = hashlib.sha256(src.encode("utf-8")).hexdigest()[:24]
    lib = _LIBS.get(sha)
    if lib is not None:
        return lib
    ffi = _get_ffi()
    adir = _artifact_dir()
    so_path = os.path.join(adir, f"{sha}.so")
    if not os.path.exists(so_path):
        cc = _find_cc()
        c_path = os.path.join(adir, f"{sha}.c")
        with open(c_path, "w", encoding="utf-8") as fh:
            fh.write(src)
        tmp_so = so_path + f".tmp{os.getpid()}"
        proc = subprocess.run(
            [cc, "-O2", "-fPIC", "-shared", "-o", tmp_so, c_path, "-lm"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        if proc.returncode != 0:
            tail = proc.stderr.decode("utf-8", "replace")[-500:]
            raise CodegenUnsupported(f"cc failed: {tail}")
        os.replace(tmp_so, so_path)
    try:
        lib = ffi.dlopen(so_path)
    except OSError as exc:
        raise CodegenUnsupported(f"dlopen failed: {exc}")
    _LIBS[sha] = lib
    return lib


# ---------------------------------------------------------------------------
# compile + bind
# ---------------------------------------------------------------------------

_C_CACHE = IdentityCache()


def c_source(lowered: LoweredProgram, cost: Any) -> str:
    """The generated C text (exposed for tests and debugging)."""
    return _CEmitter(lowered, cost).emit_module()


def _make_bind(lib: Any) -> Any:
    ffi = _get_ffi()

    def bind(machine: Any) -> Any:
        def main_co(thread: Any) -> Any:
            st = machine.stats
            heap = machine.regions.heap
            maxc = machine.scheduler.max_cycles
            gct = machine.gc.trigger_bytes
            out = ffi.new("int64_t[]", 2 * _OUT_RECORDS)
            res = ffi.new("int64_t[]", _RES_FIELDS)
            status = lib.repro_run(
                st.cycles, maxc, heap.bytes_used, st.peak_heap_bytes,
                out, 2 * _OUT_RECORDS, res)
            if status != 0:
                machine.program_bailed = True
                yield 0
                return
            # region-exit charges commit outside the quantum, exactly
            # as the interpreter's finally blocks do
            machine.charge_direct(thread, res[_R_DIRECT])
            cy = res[_R_CY]
            if st.cycles + cy > maxc or res[_R_HEAP] >= gct:
                machine.program_bailed = True
                yield 0
                return
            st.steps += res[_R_SP]
            st.allocations += res[_R_ALLOCS]
            st.bytes_allocated += res[_R_BYTES]
            st.alloc_cycles += res[_R_ALLOC_CY]
            st.peak_heap_bytes = res[_R_PEAK]
            st.io_cycles += res[_R_IO]
            st.thread_cycles += res[_R_THREAD]
            st.region_cycles += res[_R_REGION_CY]
            st.regions_created += res[_R_REGIONS]
            st.objects_freed += res[_R_FREED]
            # the heap's byte ledger stays faithful (the host-side
            # object list is not materialized: no GC ran — else bail)
            heap.bytes_used = res[_R_HEAP]
            heap.peak_bytes = max(heap.peak_bytes, res[_R_PEAK])
            output = machine.output
            n = res[_R_OUT]
            i = 0
            while i < n:
                tag, bits = out[i], out[i + 1]
                if tag == _TAG_INT:
                    output.append(str(bits))
                elif tag == _TAG_FLOAT:
                    val = struct.unpack(
                        "<d", struct.pack("<q", bits))[0]
                    output.append(f"{val:.6g}")
                else:
                    output.append("true" if bits else "false")
                i += 2
            yield cy
        return main_co
    return bind


def compile_c(machine: Any) -> Any:
    """Compile ``machine``'s program for the C backend, or raise
    :class:`CodegenUnsupported` with the reason."""
    from .codegen_py import PyProgram
    analyzed = machine.analyzed
    opts = machine.options
    if getattr(analyzed, "errors", None):
        raise CodegenUnsupported("program has static errors")
    if opts.checks_enabled:
        raise CodegenUnsupported(
            "C backend is checks-erased (static mode only)")
    if opts.validate:
        raise CodegenUnsupported(
            "C backend erases check validation (use --no-validate)")
    lowered = lower(analyzed)
    if not lowered.fused_ok:
        raise CodegenUnsupported(
            "hazards: " + ", ".join(sorted(lowered.hazards)))
    if _MAIN_KEY not in lowered.units:
        raise CodegenUnsupported("no main block")
    stats = machine.stats
    if not (stats.tracer.null and stats.metrics.null
            and stats.profile.null):
        raise CodegenUnsupported("instrumented run")
    if stats.recorder is not None:
        raise CodegenUnsupported("flight recorder attached")
    if machine.fault_injector is not None:
        raise CodegenUnsupported("fault injection active")
    if opts.sanitize:
        raise CodegenUnsupported("sanitizer active")
    if opts.degrade:
        raise CodegenUnsupported("degrade mode")
    info = analyzed.info
    if "LocalRegion" in info.region_kinds \
            or "SharedRegion" in info.region_kinds:
        raise CodegenUnsupported("regionKind shadows a built-in kind")
    key = cost_key(machine.cost_model)
    per = _C_CACHE.get(analyzed)
    if per is None or key not in per:
        src = c_source(lowered, machine.cost_model)
        lib = _get_lib(src)
        if per is None:
            per = {}
            _C_CACHE.set(analyzed, per)
        per[key] = _make_bind(lib)
    return PyProgram("c", "py", per[key](machine))
