"""Runtime values.

Scalars are host ints/floats/bools, ``null`` is ``None``, objects are
:class:`repro.rtsj.objects.ObjRef`; the only wrapper this module adds is
the region handle (the one piece of region machinery that survives type
erasure, Section 2.6)."""

from __future__ import annotations

from typing import Any

from ..rtsj.objects import ObjRef
from ..rtsj.regions import MemoryArea


class RegionHandle:
    """The runtime value of type ``RHandle<r>``."""

    __slots__ = ("area",)

    def __init__(self, area: MemoryArea) -> None:
        self.area = area

    def __repr__(self) -> str:
        return f"<handle {self.area.name}>"


def region_of_owner(owner_value: Any) -> MemoryArea:
    """The region an owner value stands for: a region is itself; an object
    owner places the new object in its own region (Section 2.1)."""
    if isinstance(owner_value, MemoryArea):
        return owner_value
    if isinstance(owner_value, ObjRef):
        return owner_value.area
    raise TypeError(f"not an owner value: {owner_value!r}")


def format_value(value: Any) -> str:
    """Rendering used by the ``print`` builtin."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
