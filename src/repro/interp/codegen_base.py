"""Shared plumbing for the codegen backends.

The lowering layer (:mod:`repro.interp.lower`) produces backend-neutral
facts; this module holds the pieces the concrete emitters
(:mod:`repro.interp.codegen_py`, :mod:`repro.interp.codegen_c`) share:

* :class:`SourceWriter` — an indentation-tracking line buffer (every
  backend emits textual source and ``compile()``/``cc``-compiles it);
* :class:`CodegenUnsupported` — "this backend cannot compile this
  program/configuration"; the orchestrator (``machine.execute``)
  catches it and falls back to the next-most-capable backend, so
  raising it is always safe and never user-visible as a failure;
* name mangling and literal baking helpers;
* the cost-model cache key (generated code bakes cost constants into
  its text, so the compiled-source cache must key on them).

Nothing here knows about Python-vs-C specifics.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Tuple

from ..rtsj.stats import CostModel

#: fields of CostModel baked into generated code, in cache-key order
COST_FIELDS = (
    "op_basic", "op_local", "op_field_read", "op_field_write",
    "op_invoke", "op_return", "op_branch", "op_builtin",
    "alloc_base", "alloc_per_byte", "vt_alloc_extra", "vt_chunk_cost",
    "heap_alloc_extra", "region_create", "lt_prealloc_per_byte",
    "region_enter", "region_exit", "portal_read", "portal_write",
    "thread_spawn", "thread_yield",
    "check_assign_base", "check_assign_per_level", "check_read_base",
    "gc_base", "gc_per_live_object", "gc_per_dead_object",
)


class CodegenUnsupported(Exception):
    """The backend cannot compile this program or run configuration.

    Raising this is a *routing* signal, not an error: the execution
    orchestrator falls back to a more capable backend (``py`` fused ->
    ``py`` faithful -> interpreter) and the run proceeds with identical
    observable behaviour.
    """


def cost_key(cost: CostModel) -> Tuple[int, ...]:
    """Cache key over every cost constant the emitters bake in."""
    return tuple(getattr(cost, name) for name in COST_FIELDS)


class IdentityCache:
    """Cache keyed on object *identity* with weakref lifetime.

    ``AnalyzedProgram`` (the natural cache key for lowering and
    compiled-source caches) is an unfrozen dataclass — unhashable, so a
    ``WeakKeyDictionary`` rejects it — but it is weakref-able.  This
    cache keys on ``id(obj)`` and drops the entry when the key object
    is collected, so repeated runs of the same analyzed program reuse
    the compiled artifacts without pinning any program in memory.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[int, Tuple[Any, Any]] = {}

    def get(self, obj: Any) -> Any:
        entry = self._data.get(id(obj))
        return entry[1] if entry is not None else None

    def set(self, obj: Any, value: Any) -> None:
        key = id(obj)
        data = self._data
        try:
            ref = weakref.ref(obj, lambda _r: data.pop(key, None))
        except TypeError:  # not weakref-able: skip caching
            return
        data[key] = (ref, value)


def mangle(name: str) -> str:
    """A Python/C-safe identifier fragment for a source-language name."""
    out = []
    for ch in name:
        if ch.isalnum() or ch == "_":
            out.append(ch)
        else:
            out.append(f"_{ord(ch):x}_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "_" + text
    return text


def bake(value: Any) -> str:
    """Literal text for a compile-time constant embedded in generated
    source.  Covers the value domain of the core language (plus None)."""
    if value is None:
        return "None"
    if value is True:
        return "True"
    if value is False:
        return "False"
    if isinstance(value, (int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    raise CodegenUnsupported(f"cannot bake constant {value!r}")


class SourceWriter:
    """Indentation-tracking line buffer shared by the emitters."""

    __slots__ = ("lines", "depth", "_indent")

    def __init__(self, indent: str = "    ") -> None:
        self.lines: List[str] = []
        self.depth = 0
        self._indent = indent

    def emit(self, text: str = "") -> None:
        if text:
            self.lines.append(self._indent * self.depth + text)
        else:
            self.lines.append("")

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        assert self.depth > 0
        self.depth -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"
