"""Generator-based tree-walking interpreter with compiled dispatch.

Every ``eval``/``exec`` produces a Python generator that yields cycle
costs (ints) or the scheduler sentinel :data:`~repro.rtsj.threads.YIELD`;
the scheduler in :mod:`repro.rtsj.threads` drives thread coroutines round
robin, so threads can interleave between any two simulated operations —
which is what makes the producer/consumer and real-time experiments
meaningful.

The interpreter is *owner-passing*: objects carry their runtime owners so
allocation sites can resolve their target region directly.  A real
implementation erases owners and threads region handles instead
(Section 2.6, :mod:`repro.interp.translate` shows how); the cost model
charges nothing for owner upkeep, so the two are cost-equivalent.

Dispatch architecture (see ``docs/PERFORMANCE.md``)
---------------------------------------------------

Each AST node is analyzed exactly once: the first time a statement or
expression executes, a *builder* keyed on ``type(node)`` compiles it to a
closure ``(frame, region, thread) -> generator`` with everything that is
knowable ahead of time — cost constants, operator functions, owner
resolvers, class layouts, the checked/unchecked access path — captured in
the closure's cells.  Subsequent executions of the same node run the
closure directly; no ``isinstance`` chain, no attribute chains, no
re-analysis.  Compiled code is memoized per interpreter instance (an
analyzed program may be shared by several machines) keyed by node
identity.

Two invariants the compiler must preserve exactly, because the paper's
numbers are *simulated* cycle counts:

* the **yield sequence** (values and order) of every construct is
  byte-identical to the reference tree-walker — preemption points and the
  global clock depend on it;
* errors keep their type, message, and *timing* — an unknown node or
  builtin raises when it first executes, never at compile time (unknown
  forms compile to closures that raise).

When the RTSJ dynamic checks are off and validation is off
(``checks.active`` false), field/static/portal accesses bind to
*unchecked* variants at construction time that never call the check
engine — the checks are compiled out at the Python level, not just
short-circuited.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.kinds import Kind
from ..core.owners import Owner
from ..errors import (InterpreterError, MemoryAccessError,
                      RealtimeViolationError, RegionEnterError,
                      ReproError, SimulatedNullPointerError,
                      ThreadSpawnError)
from ..lang import ast
from ..rtsj.objects import ArrayStorage, ObjRef, make_array
from ..rtsj.regions import LT, MemoryArea, VT, release_shared
from ..rtsj.threads import SimThread, YIELD
from .values import RegionHandle, format_value, region_of_owner


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class Frame:
    """One activation record.

    ``temps`` holds object references produced by expression evaluation
    but not yet stored anywhere the GC can see (a preemption point can
    fall between an allocation and the variable store); it is a GC root
    set and is cleared at each statement boundary of this frame.
    """

    __slots__ = ("this", "owners", "vars", "initial_region", "temps")

    def __init__(self, this: Optional[ObjRef],
                 owners: Dict[str, Any],
                 initial_region: MemoryArea) -> None:
        self.this = this
        self.owners = owners
        self.vars: Dict[str, Any] = {}
        self.initial_region = initial_region
        self.temps: List[Any] = []


#: selector marking "the receiver object itself" in cached owner
#: translations (dynamic dispatch through ``extends`` instantiations)
_THIS = object()
#: distinguishes "never compiled" from "resolves to no method"
_UNSET = object()
#: distinguishes "variable absent" from "variable bound to None"
_MISSING = object()


def _ref_ne(a, b) -> bool:
    return not _ref_eq(a, b)


#: binary operators that evaluate both sides then one combining step;
#: "/", "%", "==", "!=" are bound at the end of the module (they need
#: helpers defined below)
_BIN_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _empty_block(frame: Frame, region: MemoryArea, thread: SimThread):
    return None
    yield  # pragma: no cover - makes this a generator


def _raiser(exc: BaseException):
    """Closure that defers a compile-time failure to execution time,
    preserving the reference interpreter's error timing."""
    def run(frame, region, thread):
        raise exc
        yield  # pragma: no cover
    return run


class Interpreter:
    """Executes one analyzed program on a :class:`Machine`."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.info = machine.analyzed.info
        self.cost = machine.cost_model
        self.stats = machine.stats
        self.checks = machine.checks
        self._layouts: Dict[str, List[Tuple[str, Any]]] = {}

        # hoisted singletons / flags (fixed for the machine's lifetime)
        self._heap = machine.regions.heap
        self._immortal = machine.regions.immortal
        self._validate = machine.options.validate
        cost = self.cost
        self._c_local = cost.op_local
        self._c_basic = cost.op_basic
        self._c_field_read = cost.op_field_read
        self._c_field_write = cost.op_field_write
        self._c_portal_read = cost.portal_read
        self._c_portal_write = cost.portal_write

        #: flight recorder (None when post-mortem recording is off: the
        #: closures compiled below then carry no recording code at all)
        self._recorder = machine.recorder

        # "checks compiled out": bind the access-path helpers once.  The
        # unchecked variants never touch the check engine at all.  A
        # recording run keeps the checked paths even with the engine
        # inactive: the engine then charges nothing and raises nothing
        # (cycle-identical to unchecked) but credits every elided check
        # to the static path for the elimination ledger.
        if self.checks.active or self._recorder is not None:
            self._field_write = self._field_write_checked
            self._field_read = self._field_read_checked
            self._static_write = self._static_write_checked
            self._static_read = self._static_read_checked
            self._portal_write = self._portal_write_checked
            self._portal_read = self._portal_read_checked
        else:
            self._field_write = self._field_write_unchecked
            self._field_read = self._field_read_unchecked
            self._static_write = self._static_write_unchecked
            self._static_read = self._static_read_unchecked
            self._portal_write = self._portal_write_unchecked
            self._portal_read = self._portal_read_unchecked

        # robustness plane: all three are None/inert on a plain run, so
        # the closures compiled below carry no fault or sanitizer code
        # on their hot paths (byte-identical behaviour when disabled)
        self._injector = machine.fault_injector
        self._recovery = machine.recovery
        self._sanitizer = machine.sanitizer
        if self._injector is not None:
            # portal stores gain the teardown-race guard + retry; bound
            # here so fault-free runs keep the direct helper
            self._portal_write = self._wrap_portal_faults(
                self._portal_write)
        if self._recorder is not None:
            # portal traffic is a flight-recorder channel (contention
            # analysis); wrapped here so plain runs keep the direct
            # helpers
            self._portal_write = self._wrap_portal_record(
                self._portal_write, "portal-write")
            self._portal_read = self._wrap_portal_record(
                self._portal_read, "portal-read")

        # compiled-code caches, keyed by node identity (the analyzed AST
        # outlives the interpreter; ``_hold`` pins ad-hoc nodes compiled
        # through the public API so ids stay unique regardless)
        self._stmt_code: Dict[int, Callable] = {}
        self._expr_code: Dict[int, Callable] = {}
        self._block_code: Dict[int, Callable] = {}
        self._hold: List[Any] = []
        #: (class_name, method_name) -> call entry or None (no method)
        self._call_cache: Dict[Tuple[str, str], Any] = {}
        #: region kind -> (portal default template, subregion meta)
        self._kind_cache: Dict[str, Tuple[Dict[str, Any], Dict[str, Any]]] \
            = {}

        self._stmt_builders = {
            ast.Block: self._build_block_stmt,
            ast.LocalDecl: self._build_local_decl,
            ast.AssignLocal: self._build_assign_local,
            ast.AssignField: self._build_assign_field,
            ast.ExprStmt: self._build_expr_stmt,
            ast.If: self._build_if,
            ast.While: self._build_while,
            ast.Return: self._build_return,
            ast.Fork: self._build_fork,
            ast.RegionStmt: self._build_region_stmt,
            ast.SubregionStmt: self._build_subregion_stmt,
        }
        self._expr_builders = {
            ast.IntLit: self._build_literal,
            ast.FloatLit: self._build_literal,
            ast.BoolLit: self._build_literal,
            ast.NullLit: self._build_null,
            ast.ThisRef: self._build_this,
            ast.VarRef: self._build_var_ref,
            ast.NewExpr: self._build_new,
            ast.FieldRead: self._build_field_read,
            ast.Invoke: self._build_invoke,
            ast.Binary: self._build_binary,
            ast.Unary: self._build_unary,
            ast.BuiltinCall: self._build_builtin,
        }

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _layout(self, class_name: str) -> List[Tuple[str, Any]]:
        """All instance fields of ``class_name`` (inherited first) with
        their literal initial values."""
        cached = self._layouts.get(class_name)
        if cached is not None:
            return cached
        fields: List[Tuple[str, Any]] = []
        chain = []
        info = self.info.classes[class_name]
        while info is not None:
            chain.append(info)
            info = (self.info.classes.get(info.superclass.name)
                    if info.superclass is not None else None)
        from ..core.types import BOOLEAN, FLOAT, INT
        zero = {INT: 0, FLOAT: 0.0, BOOLEAN: False}
        for info in reversed(chain):
            for fi in info.fields.values():
                if fi.static:
                    continue
                # Java zero-initialization: scalars to 0/0.0/false,
                # references to null
                init = zero.get(fi.type)
                if fi.decl is not None and fi.decl.init is not None:
                    init = _literal_value(fi.decl.init)
                fields.append((fi.name, init))
        self._layouts[class_name] = fields
        return fields

    def owner_value(self, name: str, frame: Frame) -> Any:
        if name == "this":
            return frame.this
        if name == "heap":
            return self._heap
        if name == "immortal":
            return self._immortal
        if name == "initialRegion":
            return frame.initial_region
        try:
            return frame.owners[name]
        except KeyError:
            raise InterpreterError(f"owner '{name}' unbound at runtime")

    def _owner_resolver(self, name: str) -> Callable[[Frame], Any]:
        """Compile one owner name to a ``frame -> value`` function."""
        if name == "this":
            return _resolve_this
        if name == "heap":
            heap = self._heap
            return lambda frame: heap
        if name == "immortal":
            immortal = self._immortal
            return lambda frame: immortal
        if name == "initialRegion":
            return _resolve_initial_region

        def resolve(frame: Frame) -> Any:
            try:
                return frame.owners[name]
            except KeyError:
                raise InterpreterError(
                    f"owner '{name}' unbound at runtime")
        return resolve

    def _require_object(self, value: Any, span, what: str) -> ObjRef:
        if value is None:
            raise SimulatedNullPointerError(
                f"{what} on null at {span}")
        assert isinstance(value, ObjRef), value
        if self._validate and not value.alive:
            raise InterpreterError(
                f"dangling reference followed at {span}: {value!r} "
                "(its region was deleted)")
        return value

    # ------------------------------------------------------------------
    # thread bodies
    # ------------------------------------------------------------------

    def main_coroutine(self, thread: SimThread):
        main = self.machine.analyzed.program.main
        if main is None:
            return
            yield  # pragma: no cover - make this a generator
        frame = Frame(None, {}, self._heap)
        thread.frames.append(frame)
        try:
            yield from self.exec_block(main, frame, self._heap, thread)
        except _Return:
            pass
        finally:
            thread.frames.pop()

    def thread_coroutine(self, thread: SimThread, receiver: ObjRef,
                         method_name: str, owner_values: Tuple[Any, ...],
                         args: Tuple[Any, ...],
                         initial_region: MemoryArea):
        # dispatch on the call entry directly: the thread body runs with
        # one fewer generator frame in its resume chain
        entry = self._call_entry(receiver, method_name)
        if entry[0] is not None:
            yield from entry[0](receiver, args)
        else:
            yield from self._frame_call(entry, receiver, owner_values,
                                        args, initial_region, thread)

    # ------------------------------------------------------------------
    # method calls
    # ------------------------------------------------------------------

    def _build_call_entry(self, class_name: str, method_name: str):
        """Resolve dynamic dispatch once per ``(class, method)``: walk
        the superclass chain translating owner values *symbolically*
        through each ``extends`` instantiation, producing selectors that
        rebuild the target class's owner tuple from any receiver —
        an index into ``obj.owners``, the :data:`_THIS` marker, or a
        constant area (heap/immortal)."""
        info = self.info.classes[class_name]
        symbolic: Tuple[Any, ...] = tuple(range(len(info.formal_names)))
        heap = self._heap
        immortal = self._immortal
        while info is not None:
            mi = info.methods.get(method_name)
            if mi is not None:
                identity = symbolic == tuple(range(len(symbolic)))
                selectors = None if identity else symbolic
                if mi.native is not None:
                    return (self._native_code(mi.native), selectors,
                            (), (), (), None, None, info, mi)
                body_code = self._compile_block(mi.decl.body)
                return (None, selectors,
                        tuple(info.formal_names),
                        tuple(f[0] for f in mi.formals),
                        tuple(p[1] for p in mi.params),
                        body_code, _default_return(mi.return_type),
                        info, mi)
            if info.superclass is None:
                break
            mapping = dict(zip(info.formal_names, symbolic))
            translated: List[Any] = []
            for o in info.superclass.owners:
                if o.name in mapping:
                    translated.append(mapping[o.name])
                elif o.name == "this":
                    translated.append(_THIS)
                else:  # heap / immortal
                    translated.append(
                        heap if o.name == "heap" else immortal)
            symbolic = tuple(translated)
            info = self.info.classes.get(info.superclass.name)
        return None

    def _call_entry(self, obj: ObjRef, method_name: str):
        key = (obj.class_name, method_name)
        entry = self._call_cache.get(key, _UNSET)
        if entry is _UNSET:
            entry = self._build_call_entry(obj.class_name, method_name)
            self._call_cache[key] = entry
        if entry is None:
            raise InterpreterError(
                f"object {obj!r} has no method '{method_name}'")
        return entry

    def _resolve_impl(self, obj: ObjRef, method_name: str):
        """Dynamic dispatch (cached): returns the defining class info,
        method info, and the receiver's owner values translated to that
        class's formals."""
        entry = self._call_entry(obj, method_name)
        selectors, info, mi = entry[1], entry[7], entry[8]
        if selectors is None:
            return info, mi, obj.owners
        owners = obj.owners
        return info, mi, tuple(
            obj if s is _THIS else owners[s] if type(s) is int else s
            for s in selectors)

    def call_method(self, obj: ObjRef, method_name: str,
                    owner_values: Tuple[Any, ...], args: Tuple[Any, ...],
                    caller_region: MemoryArea, thread: SimThread):
        entry = self._call_entry(obj, method_name)
        if entry[0] is not None:
            result = yield from entry[0](obj, args)
        else:
            result = yield from self._frame_call(entry, obj, owner_values,
                                                 args, caller_region,
                                                 thread)
        return result

    def _frame_call(self, entry, obj: ObjRef,
                    owner_values: Tuple[Any, ...], args: Tuple[Any, ...],
                    caller_region: MemoryArea, thread: SimThread):
        (_native_code, selectors, class_formals, owner_formals,
         param_names, body_code, default_ret, _info, _mi) = entry
        if selectors is None:
            class_owner_values = obj.owners
        else:
            owners = obj.owners
            class_owner_values = tuple(
                obj if s is _THIS else owners[s] if type(s) is int else s
                for s in selectors)
        frame = Frame(obj, dict(zip(class_formals, class_owner_values)),
                      caller_region)
        if owner_values:
            frame.owners.update(zip(owner_formals, owner_values))
        if args:
            frame.vars.update(zip(param_names, args))
        frames = thread.frames
        frames.append(frame)
        try:
            yield from body_code(frame, caller_region, thread)
        except _Return as ret:
            return ret.value
        finally:
            frames.pop()
        return default_ret

    def _native_code(self, native: str):
        """Compile a native (array) method to an ``(obj, args)``
        generator function."""
        op = native.split(".")[1]
        if op == "get":
            cycles = self._c_field_read

            def run_get(obj, args):
                storage: ArrayStorage = obj.fields["__storage__"]
                yield cycles
                values = storage.values
                index = args[0]
                if 0 <= index < len(values):
                    return values[index]
                raise InterpreterError(
                    f"array index {index} out of bounds "
                    f"(length {len(values)})")
            return run_get
        if op == "set":
            cycles = self._c_field_write

            def run_set(obj, args):
                storage: ArrayStorage = obj.fields["__storage__"]
                yield cycles
                index = args[0]
                values = storage.values
                if not 0 <= index < len(values):
                    raise InterpreterError(
                        f"array index {index} out of bounds "
                        f"(length {len(values)})")
                values[index] = args[1]
                return None
            return run_set
        if op == "length":
            cycles = self._c_basic

            def run_length(obj, args):
                storage: ArrayStorage = obj.fields["__storage__"]
                yield cycles
                return len(storage.values)
            return run_length

        def run_unknown(obj, args):
            raise InterpreterError(f"unknown native '{native}'")
            yield  # pragma: no cover
        return run_unknown

    def _native_call(self, obj: ObjRef, native: str, args: Tuple[Any, ...]):
        yield from self._native_code(native)(obj, args)

    def _array_index(self, storage: ArrayStorage, index: int) -> Any:
        if not 0 <= index < len(storage.values):
            raise InterpreterError(
                f"array index {index} out of bounds "
                f"(length {len(storage.values)})")
        return storage.values[index]

    # ------------------------------------------------------------------
    # compilation driver
    # ------------------------------------------------------------------

    def exec_block(self, block: ast.Block, frame: Frame,
                   region: MemoryArea, thread: SimThread):
        return self._compile_block(block)(frame, region, thread)

    def exec_stmt(self, stmt: ast.Stmt, frame: Frame, region: MemoryArea,
                  thread: SimThread):
        return self._compile_stmt(stmt)(frame, region, thread)

    def eval_expr(self, expr: ast.Expr, frame: Frame, region: MemoryArea,
                  thread: SimThread):
        return self._compile_expr(expr)(frame, region, thread)

    def _compile_block(self, block: ast.Block):
        code = self._block_code.get(id(block))
        if code is None:
            try:
                codes = tuple(self._compile_stmt(s) for s in block.stmts)
                if not codes:
                    code = _empty_block
                elif len(codes) == 1:
                    code = codes[0]
                else:
                    def code(frame, region, thread, _codes=codes):
                        for stmt_code in _codes:
                            yield from stmt_code(frame, region, thread)
            except Exception as exc:  # defer to execution time
                code = _raiser(exc)
            self._block_code[id(block)] = code
            self._hold.append(block)
        return code

    def _compile_stmt(self, stmt: ast.Stmt):
        code = self._stmt_code.get(id(stmt))
        if code is None:
            builder = self._stmt_builders.get(type(stmt))
            if builder is None:
                for klass in type(stmt).__mro__:  # AST subclasses
                    builder = self._stmt_builders.get(klass)
                    if builder is not None:
                        break
            try:
                if builder is None:
                    code = self._build_unknown_stmt(stmt)
                else:
                    code = builder(stmt)
            except Exception as exc:  # defer to execution time
                code = _raiser(exc)
            self._stmt_code[id(stmt)] = code
            self._hold.append(stmt)
        return code

    def _compile_expr(self, expr: ast.Expr):
        code = self._expr_code.get(id(expr))
        if code is None:
            builder = self._expr_builders.get(type(expr))
            if builder is None:
                for klass in type(expr).__mro__:  # AST subclasses
                    builder = self._expr_builders.get(klass)
                    if builder is not None:
                        break
            try:
                if builder is None:
                    code = _raiser(InterpreterError(
                        f"unknown expression {expr!r}"))
                else:
                    code = builder(expr)
            except Exception as exc:  # defer to execution time
                code = _raiser(exc)
            self._expr_code[id(expr)] = code
            self._hold.append(expr)
        return code

    def _operand(self, expr: ast.Expr):
        """Classify an operand expression for inlining into its consumer.

        Flat operands — literals, ``this``, variable reads — are the
        leaves of almost every hot expression; evaluating each through
        its own generator costs a frame creation plus one resume of the
        whole coroutine chain per yield.  Consumers therefore inline
        them: the returned ``(kind, payload, span, code)`` tuple drives
        a small compile-time-constant branch inside the consumer's own
        generator, reproducing the leaf's exact yield sequence and
        ``temps`` bookkeeping without a nested frame.

        kind 0 = constant (payload is the value; literals yield nothing),
        kind 1 = variable reference (payload is the name; falls back to
        an implicit-this field read when the name is not a local),
        kind 2 = ``this``, kind 3 = anything else (``code`` is the
        compiled generator closure).
        """
        t = type(expr)
        if t in (ast.IntLit, ast.FloatLit, ast.BoolLit):
            return 0, expr.value, None, None
        if t is ast.NullLit:
            return 0, None, None, None
        if t is ast.VarRef:
            return 1, expr.name, expr.span, None
        if t is ast.ThisRef:
            return 2, None, None, None
        return 3, None, None, self._compile_expr(expr)

    # ------------------------------------------------------------------
    # statement builders
    # ------------------------------------------------------------------

    def _build_unknown_stmt(self, stmt: ast.Stmt):
        stats = self.stats

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            raise InterpreterError(f"unknown statement {stmt!r}")
            yield  # pragma: no cover
        return run

    def _build_block_stmt(self, stmt: ast.Block):
        stats = self.stats
        body_code = self._compile_block(stmt)

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            yield from body_code(frame, region, thread)
        return run

    def _build_local_decl(self, stmt: ast.LocalDecl):
        stats = self.stats
        op_local = self._c_local
        name = stmt.name
        if stmt.init is None:
            def run(frame, region, thread):
                stats.steps += 1
                frame.temps.clear()
                yield op_local
                frame.vars[name] = None
            return run
        field_read = self._field_read
        v_kind, v_val, v_span, v_code = self._operand(stmt.init)

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            if v_kind == 0:
                value = v_val
            elif v_kind == 1:
                value = frame.vars.get(v_val, _MISSING)
                if value is not _MISSING:
                    yield op_local
                else:
                    value = yield from field_read(frame.this, v_val,
                                                  thread, v_span)
                if isinstance(value, ObjRef):
                    frame.temps.append(value)
            elif v_kind == 2:
                value = frame.this
                if value is not None:
                    frame.temps.append(value)
            else:
                value = yield from v_code(frame, region, thread)
            yield op_local
            frame.vars[name] = value
        return run

    def _build_assign_local(self, stmt: ast.AssignLocal):
        stats = self.stats
        op_local = self._c_local
        name = stmt.name
        span = stmt.span
        field_read = self._field_read
        field_write = self._field_write
        v_kind, v_val, v_span, v_code = self._operand(stmt.value)

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            if v_kind == 0:
                value = v_val
            elif v_kind == 1:
                value = frame.vars.get(v_val, _MISSING)
                if value is not _MISSING:
                    yield op_local
                else:
                    value = yield from field_read(frame.this, v_val,
                                                  thread, v_span)
                if isinstance(value, ObjRef):
                    frame.temps.append(value)
            elif v_kind == 2:
                value = frame.this
                if value is not None:
                    frame.temps.append(value)
            else:
                value = yield from v_code(frame, region, thread)
            if name in frame.vars:
                yield op_local
                frame.vars[name] = value
            else:
                yield from field_write(frame.this, name, value,
                                       thread, span)
        return run

    def _build_assign_field(self, stmt: ast.AssignField):
        stats = self.stats
        fname = stmt.field_name
        span = stmt.span
        op_local = self._c_local
        field_read = self._field_read
        field_write = self._field_write
        portal_write = self._portal_write
        target = stmt.target
        v_kind, v_val, v_span, v_code = self._operand(stmt.value)
        if isinstance(target, ast.VarRef) \
                and target.name in self.info.classes:
            # possibly a static field write — decided at runtime, since
            # a local can shadow the class name
            cls_name = target.name
            static_write = self._static_write

            def run(frame, region, thread):
                stats.steps += 1
                frame.temps.clear()
                if v_kind == 0:
                    value = v_val
                elif v_kind == 1:
                    value = frame.vars.get(v_val, _MISSING)
                    if value is not _MISSING:
                        yield op_local
                    else:
                        value = yield from field_read(frame.this, v_val,
                                                      thread, v_span)
                    if isinstance(value, ObjRef):
                        frame.temps.append(value)
                elif v_kind == 2:
                    value = frame.this
                    if value is not None:
                        frame.temps.append(value)
                else:
                    value = yield from v_code(frame, region, thread)
                if cls_name not in frame.vars:
                    yield from static_write(cls_name, fname, value,
                                            thread, span)
                    return
                recv = frame.vars[cls_name]
                yield op_local
                if isinstance(recv, ObjRef):
                    frame.temps.append(recv)
                if isinstance(recv, RegionHandle):
                    yield from portal_write(recv.area, fname, value,
                                            thread, span)
                else:
                    yield from field_write(recv, fname, value,
                                           thread, span)
            return run

        t_kind, t_val, t_span, t_code = self._operand(target)

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            if v_kind == 0:
                value = v_val
            elif v_kind == 1:
                value = frame.vars.get(v_val, _MISSING)
                if value is not _MISSING:
                    yield op_local
                else:
                    value = yield from field_read(frame.this, v_val,
                                                  thread, v_span)
                if isinstance(value, ObjRef):
                    frame.temps.append(value)
            elif v_kind == 2:
                value = frame.this
                if value is not None:
                    frame.temps.append(value)
            else:
                value = yield from v_code(frame, region, thread)
            if t_kind == 1:
                recv = frame.vars.get(t_val, _MISSING)
                if recv is not _MISSING:
                    yield op_local
                else:
                    recv = yield from field_read(frame.this, t_val,
                                                 thread, t_span)
                if isinstance(recv, ObjRef):
                    frame.temps.append(recv)
            elif t_kind == 2:
                recv = frame.this
                if recv is not None:
                    frame.temps.append(recv)
            elif t_kind == 0:
                recv = t_val
            else:
                recv = yield from t_code(frame, region, thread)
            if isinstance(recv, RegionHandle):
                yield from portal_write(recv.area, fname, value,
                                        thread, span)
            else:
                yield from field_write(recv, fname, value, thread, span)
        return run

    def _build_expr_stmt(self, stmt: ast.ExprStmt):
        expr = stmt.expr
        # calls are by far the most common expression statements; fuse
        # the statement preamble into the call closure so the statement
        # does not cost an extra generator frame per execution
        if type(expr) is ast.Invoke:
            return self._make_invoke(expr, preamble=True)
        if type(expr) is ast.BuiltinCall:
            return self._make_builtin(expr, preamble=True)
        stats = self.stats
        expr_code = self._compile_expr(expr)

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            yield from expr_code(frame, region, thread)
        return run

    def _flat_cond(self, expr: ast.Expr):
        """A condition that can be evaluated without a nested generator:
        a non-short-circuit binary over flat operands.  Returns
        ``(fn, left_operand, right_operand)`` or None."""
        if type(expr) is not ast.Binary:
            return None
        fn = _BIN_OPS.get(expr.op)
        if fn is None:
            return None
        left = self._operand(expr.left)
        right = self._operand(expr.right)
        if left[0] == 3 or right[0] == 3:
            return None
        return fn, left, right

    def _build_if(self, stmt: ast.If):
        stats = self.stats
        op_branch = self.cost.op_branch
        then_code = self._compile_block(stmt.then_body)
        else_code = (self._compile_block(stmt.else_body)
                     if stmt.else_body is not None else None)
        flat = self._flat_cond(stmt.cond)
        if flat is not None:
            fn, left_op, right_op = flat
            l_kind, l_val, l_span, _l = left_op
            r_kind, r_val, r_span, _r = right_op
            op_local = self._c_local
            op_basic = self._c_basic
            field_read = self._field_read

            def run(frame, region, thread):
                stats.steps += 1
                frame.temps.clear()
                if l_kind == 0:
                    left = l_val
                elif l_kind == 1:
                    left = frame.vars.get(l_val, _MISSING)
                    if left is not _MISSING:
                        yield op_local
                    else:
                        left = yield from field_read(frame.this, l_val,
                                                     thread, l_span)
                    if isinstance(left, ObjRef):
                        frame.temps.append(left)
                else:
                    left = frame.this
                    if left is not None:
                        frame.temps.append(left)
                if r_kind == 0:
                    right = r_val
                elif r_kind == 1:
                    right = frame.vars.get(r_val, _MISSING)
                    if right is not _MISSING:
                        yield op_local
                    else:
                        right = yield from field_read(frame.this, r_val,
                                                      thread, r_span)
                    if isinstance(right, ObjRef):
                        frame.temps.append(right)
                else:
                    right = frame.this
                    if right is not None:
                        frame.temps.append(right)
                yield op_basic
                cond = fn(left, right)
                yield op_branch
                if cond:
                    yield from then_code(frame, region, thread)
                elif else_code is not None:
                    yield from else_code(frame, region, thread)
            return run

        cond_code = self._compile_expr(stmt.cond)

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            cond = yield from cond_code(frame, region, thread)
            yield op_branch
            if cond:
                yield from then_code(frame, region, thread)
            elif else_code is not None:
                yield from else_code(frame, region, thread)
        return run

    def _build_while(self, stmt: ast.While):
        stats = self.stats
        op_branch = self.cost.op_branch
        body_code = self._compile_block(stmt.body)
        flat = self._flat_cond(stmt.cond)
        if flat is not None:
            fn, left_op, right_op = flat
            l_kind, l_val, l_span, _l = left_op
            r_kind, r_val, r_span, _r = right_op
            op_local = self._c_local
            op_basic = self._c_basic
            field_read = self._field_read

            def run(frame, region, thread):
                stats.steps += 1
                frame.temps.clear()
                while True:
                    if l_kind == 0:
                        left = l_val
                    elif l_kind == 1:
                        left = frame.vars.get(l_val, _MISSING)
                        if left is not _MISSING:
                            yield op_local
                        else:
                            left = yield from field_read(
                                frame.this, l_val, thread, l_span)
                        if isinstance(left, ObjRef):
                            frame.temps.append(left)
                    else:
                        left = frame.this
                        if left is not None:
                            frame.temps.append(left)
                    if r_kind == 0:
                        right = r_val
                    elif r_kind == 1:
                        right = frame.vars.get(r_val, _MISSING)
                        if right is not _MISSING:
                            yield op_local
                        else:
                            right = yield from field_read(
                                frame.this, r_val, thread, r_span)
                        if isinstance(right, ObjRef):
                            frame.temps.append(right)
                    else:
                        right = frame.this
                        if right is not None:
                            frame.temps.append(right)
                    yield op_basic
                    cond = fn(left, right)
                    yield op_branch
                    if not cond:
                        break
                    yield from body_code(frame, region, thread)
            return run

        cond_code = self._compile_expr(stmt.cond)

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            while True:
                cond = yield from cond_code(frame, region, thread)
                yield op_branch
                if not cond:
                    break
                yield from body_code(frame, region, thread)
        return run

    def _build_return(self, stmt: ast.Return):
        stats = self.stats
        op_return = self.cost.op_return
        op_local = self._c_local
        field_read = self._field_read
        v_kind, v_val, v_span, v_code = (
            self._operand(stmt.value) if stmt.value is not None
            else (0, None, None, None))

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            if v_kind == 0:
                value = v_val
            elif v_kind == 1:
                value = frame.vars.get(v_val, _MISSING)
                if value is not _MISSING:
                    yield op_local
                else:
                    value = yield from field_read(frame.this, v_val,
                                                  thread, v_span)
                if isinstance(value, ObjRef):
                    frame.temps.append(value)
            elif v_kind == 2:
                value = frame.this
                if value is not None:
                    frame.temps.append(value)
            else:
                value = yield from v_code(frame, region, thread)
            yield op_return
            raise _Return(value)
        return run

    def _build_fork(self, stmt: ast.Fork):
        stats = self.stats

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            yield from self._exec_fork(stmt, frame, region, thread)
        return run

    def _build_region_stmt(self, stmt: ast.RegionStmt):
        # fully fused: the region logic runs in the statement's own
        # generator frame, which sits in the resume chain for the whole
        # lifetime of the region body
        stats = self.stats
        rt_guard = self.checks.active
        kind_name = stmt.kind.name if stmt.kind is not None \
            else "LocalRegion"
        policy = LT if (stmt.policy is not None
                        and stmt.policy.kind == "LT") else VT
        budget = stmt.policy.size if stmt.policy is not None else 0
        shared = kind_name in self.info.region_kinds \
            or kind_name == "SharedRegion"
        body_code = self._compile_block(stmt.body)
        region_name = stmt.region_name
        handle_name = stmt.handle_name
        create_area = self._create_area
        region_exit = self.cost.region_exit
        charge_direct = self.machine.charge_direct
        tracer = stats.tracer
        rec = self._recorder
        injector = self._injector
        enter_guard = self._region_enter_guard
        sanitizer = self._sanitizer

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            if thread.realtime and rt_guard:
                raise RealtimeViolationError(
                    "real-time thread attempted to create a region "
                    f"'{region_name}'")
            if injector is not None:
                # consulted before any side effect: a denied enter
                # leaves no half-created area behind
                yield from enter_guard(region_name, thread)
            ancestors = set(region.ancestor_ids) | {region.area_id}
            for entered in thread.shared_stack:
                ancestors |= entered.ancestor_ids | {entered.area_id}
            area, cycles = create_area(region_name, kind_name, policy,
                                       budget, ancestors, None, False,
                                       thread)
            stats.region_cycles += cycles
            yield cycles
            saved_owner = frame.owners.get(region_name)
            saved_var = frame.vars.get(handle_name)
            frame.owners[region_name] = area
            frame.vars[handle_name] = RegionHandle(area)
            if shared:
                area.thread_count = 1
                thread.shared_stack.append(area)
            tracer.begin("region-enter", area.name, cycle=stats.cycles,
                         thread=thread.name, attrs={"scoped": True})
            if rec is not None:
                rec.push("region-enter", area.name, cycle=stats.cycles,
                         thread=thread.name, attrs={"scoped": True})
            try:
                yield from body_code(frame, area, thread)
            finally:
                # charged directly: yielding inside a finally would
                # break generator close semantics
                charge_direct(thread, region_exit)
                stats.region_cycles += region_exit
                tracer.end("region-exit", area.name, cycle=stats.cycles,
                           thread=thread.name)
                if rec is not None:
                    rec.pop("region-exit", area.name, cycle=stats.cycles,
                            thread=thread.name)
                if shared:
                    thread.shared_stack.remove(area)
                    stats.objects_freed += release_shared(
                        area, thread.name)
                else:
                    stats.objects_freed += area.destroy(thread.name)
                if not area.live:
                    tracer.emit("region-destroyed", area.name,
                                cycle=stats.cycles, thread=thread.name)
                _restore(frame.owners, region_name, saved_owner)
                _restore(frame.vars, handle_name, saved_var)
                if sanitizer is not None:
                    sanitizer.on_region_exit(area)
        return run

    def _build_subregion_stmt(self, stmt: ast.SubregionStmt):
        stats = self.stats
        op_local = self._c_local
        field_read = self._field_read
        rt_guard = self.checks.active
        region_enter = self.cost.region_enter
        region_exit = self.cost.region_exit
        create_area = self._create_area
        charge_direct = self.machine.charge_direct
        tracer = stats.tracer
        rec = self._recorder
        injector = self._injector
        enter_guard = self._region_enter_guard
        sanitizer = self._sanitizer
        body_code = self._compile_block(stmt.body)
        sub_name = stmt.subregion_name
        region_name = stmt.region_name
        handle_name = stmt.handle_name
        fresh = stmt.fresh
        h_kind, h_val, h_span, h_code = self._operand(stmt.parent_handle)

        def run(frame, region, thread):
            stats.steps += 1
            frame.temps.clear()
            if h_kind == 1:
                handle = frame.vars.get(h_val, _MISSING)
                if handle is not _MISSING:
                    yield op_local
                else:
                    handle = yield from field_read(frame.this, h_val,
                                                   thread, h_span)
                if isinstance(handle, ObjRef):
                    frame.temps.append(handle)
            elif h_kind == 2:
                handle = frame.this
                if handle is not None:
                    frame.temps.append(handle)
            elif h_kind == 0:
                handle = h_val
            else:
                handle = yield from h_code(frame, region, thread)
            if not isinstance(handle, RegionHandle):
                raise InterpreterError(
                    "subregion entry requires a handle")
            parent = handle.area
            meta = parent.subregion_meta
            sub = meta.get(sub_name)
            if sub is None:
                raise InterpreterError(
                    f"region '{parent.name}' has no subregion "
                    f"'{sub_name}'")
            slot = parent.subregions.get(sub_name)
            if fresh or slot is None or not slot.live:
                if thread.realtime and rt_guard:
                    raise RealtimeViolationError(
                        "real-time thread attempted to create "
                        f"subregion '{sub_name}'")
                policy = LT if sub.policy.kind == "LT" else VT
                if slot is not None and slot.live and fresh:
                    slot.destroy(thread.name)
                slot, cycles = create_area(
                    f"{parent.name}.{sub_name}", sub.kind.name,
                    policy, sub.policy.size, set(), parent,
                    sub.realtime, thread)
                parent.subregions[sub_name] = slot
                stats.region_cycles += cycles
                yield cycles
            if rt_guard:
                if thread.realtime and not slot.realtime_only:
                    raise RealtimeViolationError(
                        "real-time thread entered NoRT subregion "
                        f"'{slot.name}'")
                if not thread.realtime and slot.realtime_only:
                    raise RealtimeViolationError(
                        "regular thread entered RT subregion "
                        f"'{slot.name}'")
            if injector is not None:
                # the persistent subregion slot stays valid on denial;
                # only this thread's entry is refused
                yield from enter_guard(slot.name, thread)
            yield region_enter
            stats.region_cycles += region_enter
            stats.region_enters += 1
            slot.thread_count += 1
            thread.shared_stack.append(slot)
            tracer.begin("region-enter", slot.name, cycle=stats.cycles,
                         thread=thread.name, attrs={"scoped": False})
            if rec is not None:
                rec.push("region-enter", slot.name, cycle=stats.cycles,
                         thread=thread.name, attrs={"scoped": False})
            saved_owner = frame.owners.get(region_name)
            saved_var = frame.vars.get(handle_name)
            frame.owners[region_name] = slot
            frame.vars[handle_name] = RegionHandle(slot)
            try:
                yield from body_code(frame, slot, thread)
            finally:
                charge_direct(thread, region_exit)
                stats.region_cycles += region_exit
                tracer.end("region-exit", slot.name, cycle=stats.cycles,
                           thread=thread.name)
                if rec is not None:
                    rec.pop("region-exit", slot.name, cycle=stats.cycles,
                            thread=thread.name)
                thread.shared_stack.remove(slot)
                before = slot.generation
                stats.objects_freed += release_shared(slot, thread.name)
                flushed = slot.generation != before
                if flushed:
                    stats.region_flushes += 1
                    tracer.emit("region-flushed", slot.name,
                                cycle=stats.cycles, thread=thread.name)
                _restore(frame.owners, region_name, saved_owner)
                _restore(frame.vars, handle_name, saved_var)
                if sanitizer is not None:
                    if flushed:
                        sanitizer.on_flush(slot)
                    sanitizer.on_region_exit(slot)
        return run

    # -- field access -------------------------------------------------------

    def _static_target(self, target: ast.Expr,
                       frame: Frame) -> Optional[str]:
        if (isinstance(target, ast.VarRef)
                and target.name not in frame.vars
                and target.name in self.info.classes):
            return target.name
        return None

    def _field_write_checked(self, recv: Any, field_name: str, value: Any,
                             thread: SimThread, span):
        obj = self._require_object(recv, span,
                                   f"field write '{field_name}'")
        fields = obj.fields
        if field_name not in fields:
            raise InterpreterError(
                f"{obj!r} has no field '{field_name}'")
        old = fields[field_name]
        line = span.start.line
        cycles = self._c_field_write
        checks = self.checks
        value_is_ref = isinstance(value, ObjRef)
        if value_is_ref:
            cycles += checks.assignment_cost(obj.area, value,
                                             line, thread.name)
        if value_is_ref or isinstance(old, ObjRef):
            cycles += checks.read_cost(thread.realtime, value, old,
                                       line, thread.name)
        yield cycles
        fields[field_name] = value

    def _field_write_unchecked(self, recv: Any, field_name: str,
                               value: Any, thread: SimThread, span):
        if recv is None:
            raise SimulatedNullPointerError(
                f"field write '{field_name}' on null at {span}")
        fields = recv.fields
        if field_name not in fields:
            raise InterpreterError(
                f"{recv!r} has no field '{field_name}'")
        yield self._c_field_write
        fields[field_name] = value

    def _field_read_checked(self, recv: Any, field_name: str,
                            thread: SimThread, span):
        obj = self._require_object(recv, span,
                                   f"field read '{field_name}'")
        fields = obj.fields
        if field_name not in fields:
            raise InterpreterError(f"{obj!r} has no field '{field_name}'")
        value = fields[field_name]
        cycles = self._c_field_read
        if isinstance(value, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value,
                                            line=span.start.line,
                                            thread=thread.name)
        yield cycles
        return value

    def _field_read_unchecked(self, recv: Any, field_name: str,
                              thread: SimThread, span):
        if recv is None:
            raise SimulatedNullPointerError(
                f"field read '{field_name}' on null at {span}")
        fields = recv.fields
        if field_name not in fields:
            raise InterpreterError(
                f"{recv!r} has no field '{field_name}'")
        yield self._c_field_read
        return fields[field_name]

    def _static_write_checked(self, class_name: str, field_name: str,
                              value: Any, thread: SimThread, span):
        key = (class_name, field_name)
        statics = self.machine.statics
        old = statics.get(key)
        line = span.start.line
        cycles = self._c_field_write
        checks = self.checks
        value_is_ref = isinstance(value, ObjRef)
        if value_is_ref:
            # statics conceptually live in immortal memory
            cycles += checks.assignment_cost(self._immortal, value,
                                             line, thread.name)
        if value_is_ref or isinstance(old, ObjRef):
            cycles += checks.read_cost(thread.realtime, value, old,
                                       line, thread.name)
        yield cycles
        statics[key] = value

    def _static_write_unchecked(self, class_name: str, field_name: str,
                                value: Any, thread: SimThread, span):
        yield self._c_field_write
        self.machine.statics[(class_name, field_name)] = value

    def _static_read_checked(self, class_name: str, field_name: str,
                             thread: SimThread, span):
        value = self.machine.statics.get((class_name, field_name))
        cycles = self._c_field_read
        if isinstance(value, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value,
                                            line=span.start.line,
                                            thread=thread.name)
        yield cycles
        return value

    def _static_read_unchecked(self, class_name: str, field_name: str,
                               thread: SimThread, span):
        yield self._c_field_read
        return self.machine.statics.get((class_name, field_name))

    def _portal_write_checked(self, area: MemoryArea, field_name: str,
                              value: Any, thread: SimThread, span):
        portals = area.portals
        if field_name not in portals:
            raise InterpreterError(
                f"region '{area.name}' has no portal '{field_name}'")
        old = portals[field_name]
        line = span.start.line
        cycles = self._c_portal_write
        checks = self.checks
        value_is_ref = isinstance(value, ObjRef)
        if value_is_ref:
            cycles += checks.assignment_cost(area, value, line,
                                             thread.name)
        if value_is_ref or isinstance(old, ObjRef):
            cycles += checks.read_cost(thread.realtime, value, old,
                                       line, thread.name)
        yield cycles
        portals[field_name] = value

    def _portal_write_unchecked(self, area: MemoryArea, field_name: str,
                                value: Any, thread: SimThread, span):
        portals = area.portals
        if field_name not in portals:
            raise InterpreterError(
                f"region '{area.name}' has no portal '{field_name}'")
        yield self._c_portal_write
        portals[field_name] = value

    def _portal_read_checked(self, area: MemoryArea, field_name: str,
                             thread: SimThread, span):
        portals = area.portals
        if field_name not in portals:
            raise InterpreterError(
                f"region '{area.name}' has no portal '{field_name}'")
        value = portals[field_name]
        cycles = self._c_portal_read
        if isinstance(value, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value,
                                            line=span.start.line,
                                            thread=thread.name)
        yield cycles
        return value

    def _portal_read_unchecked(self, area: MemoryArea, field_name: str,
                               thread: SimThread, span):
        portals = area.portals
        if field_name not in portals:
            raise InterpreterError(
                f"region '{area.name}' has no portal '{field_name}'")
        yield self._c_portal_read
        return portals[field_name]

    # -- regions ----------------------------------------------------------

    def _kind_meta(self, kind_name: str):
        """Portal default template + subregion declarations for a region
        kind (computed once per kind; the declarations are static)."""
        cached = self._kind_cache.get(kind_name)
        if cached is not None:
            return cached
        rk = self.info.region_kinds.get(kind_name)
        if rk is None:
            portals: Dict[str, Any] = {}
            meta: Dict[str, Any] = {}
        else:
            from ..core.types import BOOLEAN, FLOAT, INT
            zero = {INT: 0, FLOAT: 0.0, BOOLEAN: False}
            kind = Kind(kind_name,
                        tuple(Owner(fn) for fn in rk.formal_names))
            portals = {name: zero.get(portal.type)
                       for name, portal
                       in self.info.all_portals(kind).items()}
            meta = dict(self.info.all_subregions(kind).items())
        self._kind_cache[kind_name] = (portals, meta)
        return portals, meta

    def _subregion_meta(self, kind_name: str):
        return self._kind_meta(kind_name)[1]

    def _portal_defaults(self, kind_name: str):
        """Portal slots with Java zero-initialization by declared type."""
        return self._kind_meta(kind_name)[0]

    def _create_area(self, name: str, kind_name: str, policy: str,
                     budget: int, ancestors, parent, realtime_only: bool,
                     thread: SimThread):
        """Create one area (plus, eagerly, its transitive LT subregions,
        as Section 2.3 requires) and return (area, cycle cost)."""
        area = self.machine.regions.create(name, kind_name, policy, budget,
                                           ancestors, parent,
                                           realtime_only)
        stats = self.stats
        stats.regions_created += 1
        stats.tracer.emit(
            "region-created", f"{name} ({policy})",
            cycle=stats.cycles, thread=thread.name,
            attrs={"region": name, "policy": policy, "kind": kind_name,
                   "lt_budget": budget})
        rec = self._recorder
        if rec is not None:
            rec.record("region-created", name, cycle=stats.cycles,
                       thread=thread.name,
                       attrs={"region": name, "policy": policy,
                              "kind": kind_name, "lt_budget": budget})
        cycles = self.cost.region_create
        if policy == LT:
            cycles += self.cost.lt_prealloc_per_byte * budget
        portal_defaults, meta = self._kind_meta(kind_name)
        area.portals = dict(portal_defaults)
        area.subregions = {sub_name: None for sub_name in meta}
        area.subregion_meta = meta
        for sub_name, sub in meta.items():
            if sub.policy.kind == "LT":
                child, child_cycles = self._create_area(
                    f"{name}.{sub_name}", sub.kind.name, LT,
                    sub.policy.size, set(), area, sub.realtime, thread)
                area.subregions[sub_name] = child
                cycles += child_cycles
        return area, cycles

    # -- fault recovery -----------------------------------------------------
    #
    # These generators exist only on chaos runs (the compiled closures
    # call them solely when an injector is bound).  Backoff is charged
    # to the simulated clock by *yielding* the cycles, so recovery has
    # an honest cost in the Figure-12 currency and is preemptible.

    def _backoff(self, attempt: int, thread_name: str = "main"):
        """Charge the exponential backoff before retry ``attempt``."""
        stats = self.stats
        backoff = self._recovery.backoff_cycles(attempt)
        stats.recovery_retries += 1
        stats.recovery_backoff_cycles += backoff
        rec = self._recorder
        if rec is not None:
            rec.record("recovery", f"retry {attempt}",
                       cycle=stats.cycles, thread=thread_name,
                       attrs={"backoff": backoff, "attempt": attempt})
        yield backoff

    def _alloc_with_recovery(self, target: MemoryArea, obj,
                             thread: SimThread):
        """``target.allocate(obj)`` under the recovery policy: injected
        denials are retried with backoff; an exhausted VT denial spills
        the object to the closest longer-lived area (parent chain, then
        immortal/heap) so the allocation still succeeds with every
        previously-checked reference remaining safe (the spill target
        outlives the denied region).  Exhausted LT denials propagate —
        the LT watchdog (scheduler degrade mode) turns them into a
        thread abort rather than a wedged run.

        Returns ``(fresh_chunks, area)`` where ``area`` is where the
        object actually landed."""
        policy = self._recovery
        stats = self.stats
        attempt = 0
        while True:
            try:
                fresh = target.allocate(obj)
                if attempt:
                    stats.faults_recovered += 1
                return fresh, target
            except ReproError as err:
                if not err.injected:
                    raise
                if attempt < policy.max_retries:
                    yield from self._backoff(attempt, thread.name)
                    attempt += 1
                    continue
                if err.site != "vt_chunk" or not policy.vt_spill:
                    raise
                spill = target.parent
                while spill is not None and not spill.live:
                    spill = spill.parent
                if spill is None or not spill.outlives(target):
                    spill = self._immortal if thread.realtime \
                        else self._heap
                # rebind the object to its landing area; the weaker
                # placement is marked so the sanitizer checks outlives
                # instead of O2 co-location
                obj.area = spill
                obj.generation = spill.generation
                obj.spilled = True
                fresh = spill.allocate(obj)
                stats.vt_spills += 1
                stats.faults_recovered += 1
                stats.tracer.emit(
                    "vt-spill", f"{obj.class_name} -> {spill.name}",
                    cycle=stats.cycles, thread=thread.name,
                    attrs={"denied": target.name, "spill": spill.name,
                           "bytes": obj.size_bytes})
                rec = self._recorder
                if rec is not None:
                    rec.record(
                        "vt-spill", f"{obj.class_name} -> {spill.name}",
                        cycle=stats.cycles, thread=thread.name,
                        attrs={"denied": target.name,
                               "spill": spill.name,
                               "bytes": obj.size_bytes})
                return fresh, spill

    def _region_enter_guard(self, area_name: str, thread: SimThread):
        """Injected region-enter denials, retried under the policy."""
        policy = self._recovery
        injector = self._injector
        attempt = 0
        while injector.fire("region_enter", area_name):
            err = RegionEnterError(
                f"injected fault: enter of region '{area_name}' denied")
            err.injected = True
            err.thread = thread.name
            if attempt >= policy.max_retries:
                raise err
            yield from self._backoff(attempt, thread.name)
            attempt += 1
        if attempt:
            self.stats.faults_recovered += 1

    def _wrap_portal_faults(self, inner):
        """Bind the portal-write fault guard in front of the selected
        (checked/unchecked) portal-write helper."""
        guard = self.checks.portal_write_guard
        policy = self._recovery
        backoff = self._backoff
        stats = self.stats

        def wrapped(area, field_name, value, thread, span):
            attempt = 0
            while True:
                try:
                    guard(area, thread.name)
                    if attempt:
                        stats.faults_recovered += 1
                    break
                except ReproError as err:
                    if not err.injected or attempt >= policy.max_retries:
                        raise
                    yield from backoff(attempt, thread.name)
                    attempt += 1
            return (yield from inner(area, field_name, value, thread,
                                     span))
        return wrapped

    def _wrap_portal_record(self, inner, kind: str):
        """Bind flight recording around a (checked/unchecked, possibly
        fault-guarded) portal helper.  The record lands after the inner
        helper succeeds, so denied/retried stores are not counted as
        traffic."""
        rec = self._recorder
        stats = self.stats

        def wrapped(area, field_name, *rest):
            result = yield from inner(area, field_name, *rest)
            # both portal helpers end with (thread, span)
            thread = rest[-2]
            rec.record(kind, f"{area.name}.{field_name}",
                       cycle=stats.cycles, thread=thread.name,
                       attrs={"region": area.name, "field": field_name})
            return result
        return wrapped

    def _spawn_with_retry(self, child: SimThread, thread: SimThread):
        """Injected spawn denials, retried; on exhaustion the inherited
        shared-region counts are rolled back so the never-started child
        leaves no trace in the region state."""
        policy = self._recovery
        stats = self.stats
        scheduler = self.machine.scheduler
        attempt = 0
        while True:
            try:
                scheduler.spawn(child)
                if attempt:
                    stats.faults_recovered += 1
                return
            except ThreadSpawnError as err:
                if not err.injected or attempt >= policy.max_retries:
                    for area in child.shared_stack:
                        area.thread_count -= 1
                    child.shared_stack.clear()
                    child.coroutine.close()
                    raise
                yield from self._backoff(attempt, thread.name)
                attempt += 1

    # -- fork ---------------------------------------------------------------

    def _exec_fork(self, stmt: ast.Fork, frame: Frame, region: MemoryArea,
                   thread: SimThread):
        call = stmt.call
        receiver = yield from self.eval_expr(call.target, frame, region,
                                             thread)
        obj = self._require_object(receiver, stmt.span, "fork")
        owner_values = tuple(self.owner_value(o.name, frame)
                             for o in call.owner_args)
        args = []
        for arg in call.args:
            value = yield from self.eval_expr(arg, frame, region, thread)
            args.append(value)
        if stmt.realtime and self.checks.active:
            for value in [obj] + args:
                if isinstance(value, ObjRef) and value.area.is_heap:
                    raise MemoryAccessError(
                        "RT fork passed a heap reference "
                        f"{value!r} to a no-heap real-time thread")
        yield self.cost.thread_spawn
        self.stats.thread_cycles += self.cost.thread_spawn
        name = f"{'rt-' if stmt.realtime else ''}thread-" \
               f"{len(self.machine.scheduler.threads)}"
        child = SimThread(name=name, coroutine=iter(()),
                          realtime=stmt.realtime)
        child.coroutine = self.thread_coroutine(
            child, obj, call.method_name, owner_values, tuple(args),
            region)
        # the child inherits the parent's shared regions (Section 2.2)
        for area in thread.shared_stack:
            area.thread_count += 1
            child.shared_stack.append(area)
        self.stats.tracer.emit(
            "thread-spawned",
            f"{name}{' (realtime)' if stmt.realtime else ''}",
            cycle=self.stats.cycles, thread=thread.name,
            attrs={"child": name, "realtime": stmt.realtime,
                   "method": call.method_name})
        rec = self._recorder
        if rec is not None:
            # the spawn event becomes the child's causal root
            eid = rec.record("thread-spawned", name,
                             cycle=self.stats.cycles, thread=thread.name,
                             attrs={"child": name,
                                    "realtime": stmt.realtime,
                                    "method": call.method_name})
            rec.seed(name, eid)
        if self._injector is None:
            self.machine.scheduler.spawn(child)
        else:
            yield from self._spawn_with_retry(child, thread)

    # ------------------------------------------------------------------
    # expression builders
    # ------------------------------------------------------------------

    def _build_literal(self, expr):
        value = expr.value

        def run(frame, region, thread):
            return value
            yield  # pragma: no cover
        return run

    def _build_null(self, expr: ast.NullLit):
        return _run_null

    def _build_this(self, expr: ast.ThisRef):
        return _run_this

    def _build_var_ref(self, expr: ast.VarRef):
        name = expr.name
        span = expr.span
        op_local = self._c_local
        field_read = self._field_read

        def run(frame, region, thread):
            value = frame.vars.get(name, _MISSING)
            if value is not _MISSING:
                yield op_local
            else:
                value = yield from field_read(frame.this, name, thread,
                                              span)
            if isinstance(value, ObjRef):
                frame.temps.append(value)
            return value
        return run

    def _build_new(self, expr: ast.NewExpr):
        stats = self.stats
        rt_guard = self.checks.active
        cost = self.cost
        alloc_base = cost.alloc_base
        alloc_per_byte = cost.alloc_per_byte
        vt_alloc_extra = cost.vt_alloc_extra
        vt_chunk_cost = cost.vt_chunk_cost
        heap_alloc_extra = cost.heap_alloc_extra
        profile = stats.profile
        do_profile = not profile.null
        tracer = stats.tracer
        rec = self._recorder
        class_name = expr.class_name
        line = expr.span.start.line
        injector = self._injector
        alloc_recover = self._alloc_with_recovery
        resolvers = tuple(self._owner_resolver(o.name)
                          for o in expr.owners)
        is_array = class_name in ("IntArray", "FloatArray")
        if is_array:
            length_code = self._compile_expr(expr.args[0])
            field_names = inits = ()
        else:
            layout = self._layout(class_name)
            field_names = tuple(name for name, _ in layout)
            inits = tuple((name, init) for name, init in layout
                          if init is not None)
            length_code = None

        def run(frame, region, thread):
            owner_values = tuple(r(frame) for r in resolvers)
            target = region_of_owner(owner_values[0])
            if rt_guard and thread.realtime:
                if target.is_heap:
                    raise MemoryAccessError(
                        "no-heap real-time thread allocated in the heap")
                if target.policy == VT:
                    raise RealtimeViolationError(
                        "real-time thread allocated in a VT region "
                        f"'{target.name}'")
            if length_code is not None:
                length = yield from length_code(frame, region, thread)
                if length < 0:
                    raise InterpreterError(
                        f"negative array length {length}")
                obj = make_array(class_name, owner_values, target, length)
            else:
                obj = ObjRef(class_name, owner_values, field_names,
                             target)
                if inits:
                    fields = obj.fields
                    for fname, init in inits:
                        fields[fname] = init
            if injector is None:
                fresh_chunks = target.allocate(obj)
            else:
                fresh_chunks, target = yield from alloc_recover(
                    target, obj, thread)
            size = obj.size_bytes
            cycles = alloc_base + alloc_per_byte * size
            if target.policy == VT:
                cycles += vt_alloc_extra + vt_chunk_cost * fresh_chunks
            if target.is_heap:
                cycles += heap_alloc_extra
                if target.bytes_used > stats.peak_heap_bytes:
                    stats.peak_heap_bytes = target.bytes_used
            stats.allocations += 1
            stats.bytes_allocated += size
            stats.alloc_cycles += cycles
            if do_profile:
                profile.record_alloc(line, target.name, size)
            if tracer.detailed:
                tracer.emit_detail(
                    "alloc", f"{class_name} -> {target.name}",
                    cycle=stats.cycles, thread=thread.name,
                    attrs={"bytes": size, "policy": target.policy,
                           "region": target.name, "line": line,
                           "fresh_chunks": fresh_chunks})
            if rec is not None:
                owner0 = owner_values[0]
                owner_label = owner0.name if isinstance(
                    owner0, MemoryArea) else repr(owner0)
                rec.record("alloc", f"{class_name} -> {target.name}",
                           cycle=stats.cycles, thread=thread.name,
                           attrs={"bytes": size, "region": target.name,
                                  "policy": target.policy,
                                  "owner": owner_label, "line": line})
            # pin before yielding the allocation cost: a GC at this very
            # preemption point must see the newborn object
            frame.temps.append(obj)
            yield cycles
            return obj
        return run

    def _build_field_read(self, expr: ast.FieldRead):
        fname = expr.field_name
        span = expr.span
        op_local = self._c_local
        field_read = self._field_read
        portal_read = self._portal_read
        target = expr.target
        if isinstance(target, ast.VarRef) \
                and target.name in self.info.classes:
            cls_name = target.name
            static_read = self._static_read

            def run(frame, region, thread):
                if cls_name not in frame.vars:
                    value = yield from static_read(cls_name, fname,
                                                   thread, span)
                else:
                    recv = frame.vars[cls_name]
                    yield op_local
                    if isinstance(recv, ObjRef):
                        frame.temps.append(recv)
                    if isinstance(recv, RegionHandle):
                        value = yield from portal_read(recv.area, fname,
                                                       thread, span)
                    else:
                        value = yield from field_read(recv, fname,
                                                      thread, span)
                if isinstance(value, ObjRef):
                    frame.temps.append(value)
                return value
            return run

        t_kind, t_val, t_span, t_code = self._operand(target)

        def run(frame, region, thread):
            if t_kind == 1:
                recv = frame.vars.get(t_val, _MISSING)
                if recv is not _MISSING:
                    yield op_local
                else:
                    recv = yield from field_read(frame.this, t_val,
                                                 thread, t_span)
                if isinstance(recv, ObjRef):
                    frame.temps.append(recv)
            elif t_kind == 2:
                recv = frame.this
                if recv is not None:
                    frame.temps.append(recv)
            elif t_kind == 0:
                recv = t_val
            else:
                recv = yield from t_code(frame, region, thread)
            if isinstance(recv, RegionHandle):
                value = yield from portal_read(recv.area, fname, thread,
                                               span)
            else:
                value = yield from field_read(recv, fname, thread, span)
            if isinstance(value, ObjRef):
                frame.temps.append(value)
            return value
        return run

    def _build_invoke(self, expr: ast.Invoke):
        return self._make_invoke(expr, preamble=False)

    def _make_invoke(self, expr: ast.Invoke, preamble: bool):
        stats = self.stats
        t_kind, t_val, t_span, t_code = self._operand(expr.target)
        arg_parts = tuple(self._operand(a) for a in expr.args)
        resolvers = tuple(self._owner_resolver(o.name)
                          for o in expr.owner_args)
        method_name = expr.method_name
        what = f"call '{method_name}'"
        span = expr.span
        op_invoke = self.cost.op_invoke
        op_local = self._c_local
        field_read = self._field_read
        call_entry = self._call_entry
        frame_call = self._frame_call
        require = self._require_object

        def run(frame, region, thread):
            if preamble:
                stats.steps += 1
                frame.temps.clear()
            if t_kind == 1:
                recv = frame.vars.get(t_val, _MISSING)
                if recv is not _MISSING:
                    yield op_local
                else:
                    recv = yield from field_read(frame.this, t_val,
                                                 thread, t_span)
                if isinstance(recv, ObjRef):
                    frame.temps.append(recv)
            elif t_kind == 2:
                recv = frame.this
                if recv is not None:
                    frame.temps.append(recv)
            elif t_kind == 0:
                recv = t_val
            else:
                recv = yield from t_code(frame, region, thread)
            obj = require(recv, span, what)
            owner_values = (tuple(r(frame) for r in resolvers)
                            if resolvers else ())
            args = []
            for a_kind, a_val, a_span, a_code in arg_parts:
                if a_kind == 0:
                    value = a_val
                elif a_kind == 1:
                    value = frame.vars.get(a_val, _MISSING)
                    if value is not _MISSING:
                        yield op_local
                    else:
                        value = yield from field_read(frame.this, a_val,
                                                      thread, a_span)
                    if isinstance(value, ObjRef):
                        frame.temps.append(value)
                elif a_kind == 2:
                    value = frame.this
                    if value is not None:
                        frame.temps.append(value)
                else:
                    value = yield from a_code(frame, region, thread)
                args.append(value)
            if obj.class_name not in ("IntArray", "FloatArray"):
                # primitive-array accesses compile to plain loads/stores
                # on a JVM; only real method calls pay call overhead
                yield op_invoke
            entry = call_entry(obj, method_name)
            if entry[0] is not None:
                # native (array) methods run in the invoke frame itself
                result = yield from entry[0](obj, args)
            else:
                result = yield from frame_call(entry, obj, owner_values,
                                               tuple(args), region,
                                               thread)
            if isinstance(result, ObjRef):
                frame.temps.append(result)
            return result
        return run

    def _build_binary(self, expr: ast.Binary):
        op = expr.op
        op_basic = self._c_basic
        left_code = self._compile_expr(expr.left)
        right_code = self._compile_expr(expr.right)
        if op == "&&":
            def run(frame, region, thread):
                left = yield from left_code(frame, region, thread)
                yield op_basic
                if not left:
                    return False
                right = yield from right_code(frame, region, thread)
                return bool(right)
            return run
        if op == "||":
            def run(frame, region, thread):
                left = yield from left_code(frame, region, thread)
                yield op_basic
                if left:
                    return True
                right = yield from right_code(frame, region, thread)
                return bool(right)
            return run
        fn = _BIN_OPS.get(op)
        if fn is None:
            def run(frame, region, thread):
                yield from left_code(frame, region, thread)
                yield from right_code(frame, region, thread)
                yield op_basic
                raise InterpreterError(f"unknown operator '{op}'")
            return run

        op_local = self._c_local
        field_read = self._field_read
        l_kind, l_val, l_span, l_code = self._operand(expr.left)
        r_kind, r_val, r_span, r_code = self._operand(expr.right)

        def run(frame, region, thread):
            if l_kind == 0:
                left = l_val
            elif l_kind == 1:
                left = frame.vars.get(l_val, _MISSING)
                if left is not _MISSING:
                    yield op_local
                else:
                    left = yield from field_read(frame.this, l_val,
                                                 thread, l_span)
                if isinstance(left, ObjRef):
                    frame.temps.append(left)
            elif l_kind == 2:
                left = frame.this
                if left is not None:
                    frame.temps.append(left)
            else:
                left = yield from l_code(frame, region, thread)
            if r_kind == 0:
                right = r_val
            elif r_kind == 1:
                right = frame.vars.get(r_val, _MISSING)
                if right is not _MISSING:
                    yield op_local
                else:
                    right = yield from field_read(frame.this, r_val,
                                                  thread, r_span)
                if isinstance(right, ObjRef):
                    frame.temps.append(right)
            elif r_kind == 2:
                right = frame.this
                if right is not None:
                    frame.temps.append(right)
            else:
                right = yield from r_code(frame, region, thread)
            yield op_basic
            return fn(left, right)
        return run

    def _build_unary(self, expr: ast.Unary):
        op_basic = self._c_basic
        op_local = self._c_local
        field_read = self._field_read
        negate = expr.op == "!"
        v_kind, v_val, v_span, v_code = self._operand(expr.operand)

        def run(frame, region, thread):
            if v_kind == 0:
                operand = v_val
            elif v_kind == 1:
                operand = frame.vars.get(v_val, _MISSING)
                if operand is not _MISSING:
                    yield op_local
                else:
                    operand = yield from field_read(frame.this, v_val,
                                                    thread, v_span)
                if isinstance(operand, ObjRef):
                    frame.temps.append(operand)
            elif v_kind == 2:
                operand = frame.this
                if operand is not None:
                    frame.temps.append(operand)
            else:
                operand = yield from v_code(frame, region, thread)
            yield op_basic
            return (not operand) if negate else -operand
        return run

    def _build_builtin(self, expr: ast.BuiltinCall):
        return self._make_builtin(expr, preamble=False)

    #: single-argument builtins with a specialized closure, in rough
    #: hotness order (``print``/``io`` dominate the server loops)
    _BUILTIN_IDS = {"print": 0, "io": 1, "sqrt": 2, "itof": 3,
                    "ftoi": 4, "check": 5}

    def _make_builtin(self, expr: ast.BuiltinCall, preamble: bool):
        name = expr.name
        stats = self.stats
        machine = self.machine
        cost = self.cost
        op_builtin = cost.op_builtin
        op_basic = self._c_basic
        op_local = self._c_local
        field_read = self._field_read
        span = expr.span

        bi = self._BUILTIN_IDS.get(name)
        if bi is not None and len(expr.args) == 1:
            v_kind, v_val, v_span, v_code = self._operand(expr.args[0])

            def run(frame, region, thread):
                if preamble:
                    stats.steps += 1
                    frame.temps.clear()
                if v_kind == 0:
                    value = v_val
                elif v_kind == 1:
                    value = frame.vars.get(v_val, _MISSING)
                    if value is not _MISSING:
                        yield op_local
                    else:
                        value = yield from field_read(frame.this, v_val,
                                                      thread, v_span)
                    if isinstance(value, ObjRef):
                        frame.temps.append(value)
                elif v_kind == 2:
                    value = frame.this
                    if value is not None:
                        frame.temps.append(value)
                else:
                    value = yield from v_code(frame, region, thread)
                if bi == 0:
                    yield op_builtin
                    machine.output.append(format_value(value))
                    return None
                if bi == 1:
                    # simulated network/disk operation: dominates
                    # server loops
                    cycles = op_builtin + max(int(value), 0)
                    stats.io_cycles += cycles
                    yield cycles
                    return int(value)
                if bi == 2:
                    yield op_builtin
                    if value < 0:
                        raise InterpreterError(f"sqrt of negative {value}")
                    return math.sqrt(value)
                if bi == 3:
                    yield op_basic
                    return float(value)
                if bi == 4:
                    yield op_basic
                    return int(value)
                yield op_basic
                if not value:
                    raise InterpreterError(
                        f"program assertion failed at {span}")
                return None
            return run

        arg_codes = tuple(self._compile_expr(a) for a in expr.args)
        if name == "yieldnow" and not arg_codes:
            thread_yield = cost.thread_yield

            def run(frame, region, thread):
                if preamble:
                    stats.steps += 1
                    frame.temps.clear()
                stats.thread_cycles += thread_yield
                yield thread_yield
                yield YIELD
                return None
            return run

        # generic fallback: evaluate all arguments in order, then apply
        # (covers unusual arities and unknown builtins, with the
        # reference interpreter's exact behavior)
        def run(frame, region, thread):
            if preamble:
                stats.steps += 1
                frame.temps.clear()
            args = []
            for code in arg_codes:
                value = yield from code(frame, region, thread)
                args.append(value)
            if name == "print":
                yield op_builtin
                machine.output.append(format_value(args[0]))
                return None
            if name == "io":
                cycles = op_builtin + max(int(args[0]), 0)
                stats.io_cycles += cycles
                yield cycles
                return int(args[0])
            if name == "yieldnow":
                stats.thread_cycles += cost.thread_yield
                yield cost.thread_yield
                yield YIELD
                return None
            if name == "sqrt":
                yield op_builtin
                if args[0] < 0:
                    raise InterpreterError(f"sqrt of negative {args[0]}")
                return math.sqrt(args[0])
            if name == "itof":
                yield op_basic
                return float(args[0])
            if name == "ftoi":
                yield op_basic
                return int(args[0])
            if name == "check":
                yield op_basic
                if not args[0]:
                    raise InterpreterError(
                        f"program assertion failed at {expr.span}")
                return None
            raise InterpreterError(f"unknown builtin '{name}'")
        return run


# ---------------------------------------------------------------------------
# tiny shared expression closures
# ---------------------------------------------------------------------------

def _run_null(frame, region, thread):
    return None
    yield  # pragma: no cover


def _run_this(frame, region, thread):
    this = frame.this
    if this is not None:
        frame.temps.append(this)
    return this
    yield  # pragma: no cover


def _resolve_this(frame: Frame) -> Any:
    return frame.this


def _resolve_initial_region(frame: Frame) -> Any:
    return frame.initial_region


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _restore(mapping: Dict[str, Any], key: str, saved: Any) -> None:
    if saved is None:
        mapping.pop(key, None)
    else:
        mapping[key] = saved


def _literal_value(expr: ast.Expr) -> Any:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.NullLit):
        return None
    raise InterpreterError(f"not a literal: {expr!r}")


def _default_return(return_type) -> Any:
    from ..core.types import BOOLEAN, FLOAT, INT
    if return_type == INT:
        return 0
    if return_type == FLOAT:
        return 0.0
    if return_type == BOOLEAN:
        return False
    return None


def _java_div(a, b):
    if isinstance(a, float) or isinstance(b, float):
        if b == 0:
            raise InterpreterError("float division by zero")
        return a / b
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _java_mod(a, b):
    if b == 0:
        raise InterpreterError("integer modulo by zero")
    return a - _java_div(a, b) * b


def _ref_eq(a, b) -> bool:
    if isinstance(a, ObjRef) or isinstance(b, ObjRef):
        return a is b
    return a == b


# late-bind the operator table entries that need module helpers
_BIN_OPS["/"] = _java_div
_BIN_OPS["%"] = _java_mod
_BIN_OPS["=="] = _ref_eq
_BIN_OPS["!="] = _ref_ne
