"""Generator-based tree-walking interpreter.

Every ``eval``/``exec`` function is a Python generator that yields cycle
costs (ints) or the scheduler sentinel :data:`~repro.rtsj.threads.YIELD`;
the scheduler in :mod:`repro.rtsj.threads` drives thread coroutines round
robin, so threads can interleave between any two simulated operations —
which is what makes the producer/consumer and real-time experiments
meaningful.

The interpreter is *owner-passing*: objects carry their runtime owners so
allocation sites can resolve their target region directly.  A real
implementation erases owners and threads region handles instead
(Section 2.6, :mod:`repro.interp.translate` shows how); the cost model
charges nothing for owner upkeep, so the two are cost-equivalent.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..core.kinds import Kind
from ..core.owners import Owner
from ..errors import (InterpreterError, MemoryAccessError,
                      RealtimeViolationError, SimulatedNullPointerError)
from ..lang import ast
from ..rtsj.objects import ArrayStorage, ObjRef, make_array
from ..rtsj.regions import LT, MemoryArea, VT
from ..rtsj.threads import SimThread, YIELD
from .values import RegionHandle, format_value, region_of_owner


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class Frame:
    """One activation record.

    ``temps`` holds object references produced by expression evaluation
    but not yet stored anywhere the GC can see (a preemption point can
    fall between an allocation and the variable store); it is a GC root
    set and is cleared at each statement boundary of this frame.
    """

    __slots__ = ("this", "owners", "vars", "initial_region", "temps")

    def __init__(self, this: Optional[ObjRef],
                 owners: Dict[str, Any],
                 initial_region: MemoryArea) -> None:
        self.this = this
        self.owners = owners
        self.vars: Dict[str, Any] = {}
        self.initial_region = initial_region
        self.temps: List[Any] = []


class Interpreter:
    """Executes one analyzed program on a :class:`Machine`."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.info = machine.analyzed.info
        self.cost = machine.cost_model
        self.stats = machine.stats
        self.checks = machine.checks
        self._layouts: Dict[str, List[Tuple[str, Any]]] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _layout(self, class_name: str) -> List[Tuple[str, Any]]:
        """All instance fields of ``class_name`` (inherited first) with
        their literal initial values."""
        cached = self._layouts.get(class_name)
        if cached is not None:
            return cached
        fields: List[Tuple[str, Any]] = []
        chain = []
        info = self.info.classes[class_name]
        while info is not None:
            chain.append(info)
            info = (self.info.classes.get(info.superclass.name)
                    if info.superclass is not None else None)
        from ..core.types import BOOLEAN, FLOAT, INT
        zero = {INT: 0, FLOAT: 0.0, BOOLEAN: False}
        for info in reversed(chain):
            for fi in info.fields.values():
                if fi.static:
                    continue
                # Java zero-initialization: scalars to 0/0.0/false,
                # references to null
                init = zero.get(fi.type)
                if fi.decl is not None and fi.decl.init is not None:
                    init = _literal_value(fi.decl.init)
                fields.append((fi.name, init))
        self._layouts[class_name] = fields
        return fields

    def owner_value(self, name: str, frame: Frame) -> Any:
        if name == "this":
            return frame.this
        if name == "heap":
            return self.machine.regions.heap
        if name == "immortal":
            return self.machine.regions.immortal
        if name == "initialRegion":
            return frame.initial_region
        try:
            return frame.owners[name]
        except KeyError:
            raise InterpreterError(f"owner '{name}' unbound at runtime")

    def _require_object(self, value: Any, span, what: str) -> ObjRef:
        if value is None:
            raise SimulatedNullPointerError(
                f"{what} on null at {span}")
        assert isinstance(value, ObjRef), value
        if self.machine.options.validate and not value.alive:
            raise InterpreterError(
                f"dangling reference followed at {span}: {value!r} "
                "(its region was deleted)")
        return value

    # ------------------------------------------------------------------
    # thread bodies
    # ------------------------------------------------------------------

    def main_coroutine(self, thread: SimThread):
        main = self.machine.analyzed.program.main
        if main is None:
            return
            yield  # pragma: no cover - make this a generator
        frame = Frame(None, {}, self.machine.regions.heap)
        thread.frames.append(frame)
        try:
            yield from self.exec_block(main, frame,
                                       self.machine.regions.heap, thread)
        except _Return:
            pass
        finally:
            thread.frames.pop()

    def thread_coroutine(self, thread: SimThread, receiver: ObjRef,
                         method_name: str, owner_values: Tuple[Any, ...],
                         args: Tuple[Any, ...],
                         initial_region: MemoryArea):
        yield from self.call_method(receiver, method_name, owner_values,
                                    args, initial_region, thread)

    # ------------------------------------------------------------------
    # method calls
    # ------------------------------------------------------------------

    def _resolve_impl(self, obj: ObjRef, method_name: str):
        """Dynamic dispatch: walk the superclass chain from the object's
        dynamic class, translating owner values through each ``extends``
        instantiation."""
        class_name = obj.class_name
        owner_values: Tuple[Any, ...] = obj.owners
        info = self.info.classes[class_name]
        while info is not None:
            mi = info.methods.get(method_name)
            if mi is not None:
                return info, mi, owner_values
            if info.superclass is None:
                break
            mapping = dict(zip(info.formal_names, owner_values))
            new_values = []
            for o in info.superclass.owners:
                if o.name in mapping:
                    new_values.append(mapping[o.name])
                elif o.name == "this":
                    new_values.append(obj)
                else:  # heap / immortal
                    new_values.append(
                        self.machine.regions.heap if o.name == "heap"
                        else self.machine.regions.immortal)
            owner_values = tuple(new_values)
            info = self.info.classes.get(info.superclass.name)
        raise InterpreterError(
            f"object {obj!r} has no method '{method_name}'")

    def call_method(self, obj: ObjRef, method_name: str,
                    owner_values: Tuple[Any, ...], args: Tuple[Any, ...],
                    caller_region: MemoryArea, thread: SimThread):
        info, mi, class_owner_values = self._resolve_impl(obj, method_name)
        if mi.native is not None:
            result = yield from self._native_call(obj, mi.native, args)
            return result
        frame = Frame(obj, dict(zip(info.formal_names, class_owner_values)),
                      caller_region)
        for (fn, _kind), value in zip(mi.formals, owner_values):
            frame.owners[fn] = value
        for (ptype, pname), value in zip(mi.params, args):
            frame.vars[pname] = value
        thread.frames.append(frame)
        try:
            yield from self.exec_block(mi.decl.body, frame, caller_region,
                                       thread)
        except _Return as ret:
            return ret.value
        finally:
            thread.frames.pop()
        return _default_return(mi.return_type)

    def _native_call(self, obj: ObjRef, native: str, args: Tuple[Any, ...]):
        storage: ArrayStorage = obj.fields["__storage__"]
        op = native.split(".")[1]
        if op == "get":
            yield self.cost.op_field_read
            return self._array_index(storage, args[0])
        if op == "set":
            yield self.cost.op_field_write
            index = args[0]
            if not 0 <= index < len(storage.values):
                raise InterpreterError(
                    f"array index {index} out of bounds "
                    f"(length {len(storage.values)})")
            storage.values[index] = args[1]
            return None
        if op == "length":
            yield self.cost.op_basic
            return len(storage.values)
        raise InterpreterError(f"unknown native '{native}'")

    def _array_index(self, storage: ArrayStorage, index: int) -> Any:
        if not 0 <= index < len(storage.values):
            raise InterpreterError(
                f"array index {index} out of bounds "
                f"(length {len(storage.values)})")
        return storage.values[index]

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def exec_block(self, block: ast.Block, frame: Frame,
                   region: MemoryArea, thread: SimThread):
        for stmt in block.stmts:
            yield from self.exec_stmt(stmt, frame, region, thread)

    def exec_stmt(self, stmt: ast.Stmt, frame: Frame, region: MemoryArea,
                  thread: SimThread):
        self.stats.steps += 1
        # statement boundary: temporaries of the previous statement in
        # this frame are dead (callee frames have their own lists)
        frame.temps.clear()
        if isinstance(stmt, ast.Block):
            yield from self.exec_block(stmt, frame, region, thread)
        elif isinstance(stmt, ast.LocalDecl):
            value = None
            if stmt.init is not None:
                value = yield from self.eval_expr(stmt.init, frame, region,
                                                  thread)
            yield self.cost.op_local
            frame.vars[stmt.name] = value
        elif isinstance(stmt, ast.AssignLocal):
            value = yield from self.eval_expr(stmt.value, frame, region,
                                              thread)
            if stmt.name in frame.vars:
                yield self.cost.op_local
                frame.vars[stmt.name] = value
            else:
                yield from self._field_write(frame.this, stmt.name, value,
                                             thread, stmt.span)
        elif isinstance(stmt, ast.AssignField):
            value = yield from self.eval_expr(stmt.value, frame, region,
                                              thread)
            target = self._static_target(stmt.target, frame)
            if target is not None:
                yield from self._static_write(target, stmt.field_name,
                                              value, thread, stmt.span)
            else:
                recv = yield from self.eval_expr(stmt.target, frame,
                                                 region, thread)
                if isinstance(recv, RegionHandle):
                    yield from self._portal_write(recv.area,
                                                  stmt.field_name, value,
                                                  thread, stmt.span)
                else:
                    yield from self._field_write(recv, stmt.field_name,
                                                 value, thread, stmt.span)
        elif isinstance(stmt, ast.ExprStmt):
            yield from self.eval_expr(stmt.expr, frame, region, thread)
        elif isinstance(stmt, ast.If):
            cond = yield from self.eval_expr(stmt.cond, frame, region,
                                             thread)
            yield self.cost.op_branch
            if cond:
                yield from self.exec_block(stmt.then_body, frame, region,
                                           thread)
            elif stmt.else_body is not None:
                yield from self.exec_block(stmt.else_body, frame, region,
                                           thread)
        elif isinstance(stmt, ast.While):
            while True:
                cond = yield from self.eval_expr(stmt.cond, frame, region,
                                                 thread)
                yield self.cost.op_branch
                if not cond:
                    break
                yield from self.exec_block(stmt.body, frame, region,
                                           thread)
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = yield from self.eval_expr(stmt.value, frame,
                                                  region, thread)
            yield self.cost.op_return
            raise _Return(value)
        elif isinstance(stmt, ast.Fork):
            yield from self._exec_fork(stmt, frame, region, thread)
        elif isinstance(stmt, ast.RegionStmt):
            yield from self._exec_region(stmt, frame, region, thread)
        elif isinstance(stmt, ast.SubregionStmt):
            yield from self._exec_subregion(stmt, frame, region, thread)
        else:
            raise InterpreterError(f"unknown statement {stmt!r}")

    # -- field access -------------------------------------------------------

    def _static_target(self, target: ast.Expr,
                       frame: Frame) -> Optional[str]:
        if (isinstance(target, ast.VarRef)
                and target.name not in frame.vars
                and target.name in self.info.classes):
            return target.name
        return None

    def _field_write(self, recv: Any, field_name: str, value: Any,
                     thread: SimThread, span):
        obj = self._require_object(recv, span, f"field write '{field_name}'")
        if field_name not in obj.fields:
            raise InterpreterError(
                f"{obj!r} has no field '{field_name}'")
        old = obj.fields[field_name]
        line = span.start.line
        cycles = self.cost.op_field_write
        if isinstance(value, ObjRef):
            cycles += self.checks.assignment_cost(obj.area, value,
                                                  line, thread.name)
        if isinstance(value, ObjRef) or isinstance(old, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value, old,
                                            line, thread.name)
        yield cycles
        obj.fields[field_name] = value

    def _field_read(self, recv: Any, field_name: str, thread: SimThread,
                    span):
        obj = self._require_object(recv, span, f"field read '{field_name}'")
        if field_name not in obj.fields:
            raise InterpreterError(f"{obj!r} has no field '{field_name}'")
        value = obj.fields[field_name]
        cycles = self.cost.op_field_read
        if isinstance(value, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value,
                                            line=span.start.line,
                                            thread=thread.name)
        yield cycles
        return value

    def _static_write(self, class_name: str, field_name: str, value: Any,
                      thread: SimThread, span):
        key = (class_name, field_name)
        old = self.machine.statics.get(key)
        line = span.start.line
        cycles = self.cost.op_field_write
        if isinstance(value, ObjRef):
            # statics conceptually live in immortal memory
            cycles += self.checks.assignment_cost(
                self.machine.regions.immortal, value, line, thread.name)
        if isinstance(value, ObjRef) or isinstance(old, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value, old,
                                            line, thread.name)
        yield cycles
        self.machine.statics[key] = value

    def _static_read(self, class_name: str, field_name: str,
                     thread: SimThread, span):
        value = self.machine.statics.get((class_name, field_name))
        cycles = self.cost.op_field_read
        if isinstance(value, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value,
                                            line=span.start.line,
                                            thread=thread.name)
        yield cycles
        return value

    def _portal_write(self, area: MemoryArea, field_name: str, value: Any,
                      thread: SimThread, span):
        if field_name not in area.portals:
            raise InterpreterError(
                f"region '{area.name}' has no portal '{field_name}'")
        old = area.portals[field_name]
        line = span.start.line
        cycles = self.cost.portal_write
        if isinstance(value, ObjRef):
            cycles += self.checks.assignment_cost(area, value, line,
                                                  thread.name)
        if isinstance(value, ObjRef) or isinstance(old, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value, old,
                                            line, thread.name)
        yield cycles
        area.portals[field_name] = value

    def _portal_read(self, area: MemoryArea, field_name: str,
                     thread: SimThread, span):
        if field_name not in area.portals:
            raise InterpreterError(
                f"region '{area.name}' has no portal '{field_name}'")
        value = area.portals[field_name]
        cycles = self.cost.portal_read
        if isinstance(value, ObjRef):
            cycles += self.checks.read_cost(thread.realtime, value,
                                            line=span.start.line,
                                            thread=thread.name)
        yield cycles
        return value

    # -- regions ----------------------------------------------------------

    def _subregion_meta(self, kind_name: str):
        rk = self.info.region_kinds.get(kind_name)
        if rk is None:
            return {}
        kind = Kind(kind_name, tuple(Owner(fn) for fn in rk.formal_names))
        return {name: sub
                for name, sub in self.info.all_subregions(kind).items()}

    def _portal_defaults(self, kind_name: str):
        """Portal slots with Java zero-initialization by declared type."""
        rk = self.info.region_kinds.get(kind_name)
        if rk is None:
            return {}
        from ..core.types import BOOLEAN, FLOAT, INT
        zero = {INT: 0, FLOAT: 0.0, BOOLEAN: False}
        kind = Kind(kind_name, tuple(Owner(fn) for fn in rk.formal_names))
        return {name: zero.get(portal.type)
                for name, portal in self.info.all_portals(kind).items()}

    def _create_area(self, name: str, kind_name: str, policy: str,
                     budget: int, ancestors, parent, realtime_only: bool,
                     thread: SimThread):
        """Create one area (plus, eagerly, its transitive LT subregions,
        as Section 2.3 requires) and return (area, cycle cost)."""
        area = self.machine.regions.create(name, kind_name, policy, budget,
                                           ancestors, parent,
                                           realtime_only)
        self.stats.regions_created += 1
        self.stats.tracer.emit(
            "region-created", f"{name} ({policy})",
            cycle=self.stats.cycles, thread=thread.name,
            attrs={"region": name, "policy": policy, "kind": kind_name,
                   "lt_budget": budget})
        cycles = self.cost.region_create
        if policy == LT:
            cycles += self.cost.lt_prealloc_per_byte * budget
        area.portals = dict(self._portal_defaults(kind_name))
        meta = self._subregion_meta(kind_name)
        area.subregions = {sub_name: None for sub_name in meta}
        setattr(area, "subregion_meta", meta)
        for sub_name, sub in meta.items():
            if sub.policy.kind == "LT":
                child, child_cycles = self._create_area(
                    f"{name}.{sub_name}", sub.kind.name, LT,
                    sub.policy.size, set(), area, sub.realtime, thread)
                area.subregions[sub_name] = child
                cycles += child_cycles
        return area, cycles

    def _exec_region(self, stmt: ast.RegionStmt, frame: Frame,
                     region: MemoryArea, thread: SimThread):
        if thread.realtime and (self.checks.enabled
                                or self.checks.validate):
            raise RealtimeViolationError(
                "real-time thread attempted to create a region "
                f"'{stmt.region_name}'")
        kind_name = stmt.kind.name if stmt.kind is not None \
            else "LocalRegion"
        policy = LT if (stmt.policy is not None
                        and stmt.policy.kind == "LT") else VT
        budget = stmt.policy.size if stmt.policy is not None else 0
        shared = kind_name in self.info.region_kinds \
            or kind_name == "SharedRegion"
        ancestors = set(region.ancestor_ids) | {region.area_id}
        for entered in thread.shared_stack:
            ancestors |= entered.ancestor_ids | {entered.area_id}
        area, cycles = self._create_area(stmt.region_name, kind_name,
                                         policy, budget, ancestors, None,
                                         False, thread)
        self.stats.region_cycles += cycles
        yield cycles
        saved_owner = frame.owners.get(stmt.region_name)
        saved_var = frame.vars.get(stmt.handle_name)
        frame.owners[stmt.region_name] = area
        frame.vars[stmt.handle_name] = RegionHandle(area)
        if shared:
            area.thread_count = 1
            thread.shared_stack.append(area)
        self.stats.tracer.begin("region-enter", area.name,
                                cycle=self.stats.cycles,
                                thread=thread.name,
                                attrs={"scoped": True})
        try:
            yield from self.exec_block(stmt.body, frame, area, thread)
        finally:
            # charged directly: yielding inside a finally would break
            # generator close semantics
            self.machine.charge_direct(thread, self.cost.region_exit)
            self.stats.region_cycles += self.cost.region_exit
            self.stats.tracer.end("region-exit", area.name,
                                  cycle=self.stats.cycles,
                                  thread=thread.name)
            if shared:
                from ..rtsj.regions import release_shared
                thread.shared_stack.remove(area)
                self.stats.objects_freed += release_shared(area)
            else:
                self.stats.objects_freed += area.destroy()
            if not area.live:
                self.stats.event("region-destroyed", area.name,
                                 thread=thread.name)
            _restore(frame.owners, stmt.region_name, saved_owner)
            _restore(frame.vars, stmt.handle_name, saved_var)

    def _exec_subregion(self, stmt: ast.SubregionStmt, frame: Frame,
                        region: MemoryArea, thread: SimThread):
        handle = yield from self.eval_expr(stmt.parent_handle, frame,
                                           region, thread)
        if not isinstance(handle, RegionHandle):
            raise InterpreterError("subregion entry requires a handle")
        parent = handle.area
        meta = getattr(parent, "subregion_meta", {})
        sub = meta.get(stmt.subregion_name)
        if sub is None:
            raise InterpreterError(
                f"region '{parent.name}' has no subregion "
                f"'{stmt.subregion_name}'")
        slot = parent.subregions.get(stmt.subregion_name)
        if stmt.fresh or slot is None or not slot.live:
            if thread.realtime and (self.checks.enabled
                                    or self.checks.validate):
                raise RealtimeViolationError(
                    "real-time thread attempted to create subregion "
                    f"'{stmt.subregion_name}'")
            policy = LT if sub.policy.kind == "LT" else VT
            if slot is not None and slot.live and stmt.fresh:
                slot.destroy()
            slot, cycles = self._create_area(
                f"{parent.name}.{stmt.subregion_name}", sub.kind.name,
                policy, sub.policy.size, set(), parent, sub.realtime,
                thread)
            parent.subregions[stmt.subregion_name] = slot
            self.stats.region_cycles += cycles
            yield cycles
        if self.checks.enabled or self.checks.validate:
            if thread.realtime and not slot.realtime_only:
                raise RealtimeViolationError(
                    "real-time thread entered NoRT subregion "
                    f"'{slot.name}'")
            if not thread.realtime and slot.realtime_only:
                raise RealtimeViolationError(
                    "regular thread entered RT subregion "
                    f"'{slot.name}'")
        yield self.cost.region_enter
        self.stats.region_cycles += self.cost.region_enter
        self.stats.region_enters += 1
        slot.thread_count += 1
        thread.shared_stack.append(slot)
        self.stats.tracer.begin("region-enter", slot.name,
                                cycle=self.stats.cycles,
                                thread=thread.name,
                                attrs={"scoped": False})
        saved_owner = frame.owners.get(stmt.region_name)
        saved_var = frame.vars.get(stmt.handle_name)
        frame.owners[stmt.region_name] = slot
        frame.vars[stmt.handle_name] = RegionHandle(slot)
        try:
            yield from self.exec_block(stmt.body, frame, slot, thread)
        finally:
            self.machine.charge_direct(thread, self.cost.region_exit)
            self.stats.region_cycles += self.cost.region_exit
            self.stats.tracer.end("region-exit", slot.name,
                                  cycle=self.stats.cycles,
                                  thread=thread.name)
            from ..rtsj.regions import release_shared
            thread.shared_stack.remove(slot)
            before = slot.generation
            self.stats.objects_freed += release_shared(slot)
            if slot.generation != before:
                self.stats.region_flushes += 1
                self.stats.event("region-flushed", slot.name,
                                 thread=thread.name)
            _restore(frame.owners, stmt.region_name, saved_owner)
            _restore(frame.vars, stmt.handle_name, saved_var)

    # -- fork ---------------------------------------------------------------

    def _exec_fork(self, stmt: ast.Fork, frame: Frame, region: MemoryArea,
                   thread: SimThread):
        call = stmt.call
        receiver = yield from self.eval_expr(call.target, frame, region,
                                             thread)
        obj = self._require_object(receiver, stmt.span, "fork")
        owner_values = tuple(self.owner_value(o.name, frame)
                             for o in call.owner_args)
        args = []
        for arg in call.args:
            value = yield from self.eval_expr(arg, frame, region, thread)
            args.append(value)
        if stmt.realtime and (self.checks.enabled or self.checks.validate):
            for value in [obj] + args:
                if isinstance(value, ObjRef) and value.area.is_heap:
                    raise MemoryAccessError(
                        "RT fork passed a heap reference "
                        f"{value!r} to a no-heap real-time thread")
        yield self.cost.thread_spawn
        self.stats.thread_cycles += self.cost.thread_spawn
        name = f"{'rt-' if stmt.realtime else ''}thread-" \
               f"{len(self.machine.scheduler.threads)}"
        child = SimThread(name=name, coroutine=iter(()),
                          realtime=stmt.realtime)
        child.coroutine = self.thread_coroutine(
            child, obj, call.method_name, owner_values, tuple(args),
            region)
        # the child inherits the parent's shared regions (Section 2.2)
        for area in thread.shared_stack:
            area.thread_count += 1
            child.shared_stack.append(area)
        self.stats.tracer.emit(
            "thread-spawned",
            f"{name}{' (realtime)' if stmt.realtime else ''}",
            cycle=self.stats.cycles, thread=thread.name,
            attrs={"child": name, "realtime": stmt.realtime,
                   "method": call.method_name})
        self.machine.scheduler.spawn(child)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, frame: Frame, region: MemoryArea,
                  thread: SimThread):
        value = yield from self._eval_expr_inner(expr, frame, region,
                                                 thread)
        if isinstance(value, ObjRef):
            frame.temps.append(value)  # keep in-flight values GC-visible
        return value

    def _eval_expr_inner(self, expr: ast.Expr, frame: Frame,
                         region: MemoryArea, thread: SimThread):
        if isinstance(expr, ast.IntLit):
            return expr.value
            yield  # pragma: no cover
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return None
        if isinstance(expr, ast.ThisRef):
            return frame.this
        if isinstance(expr, ast.VarRef):
            if expr.name in frame.vars:
                yield self.cost.op_local
                return frame.vars[expr.name]
            result = yield from self._field_read(frame.this, expr.name,
                                                 thread, expr.span)
            return result
        if isinstance(expr, ast.NewExpr):
            result = yield from self._eval_new(expr, frame, region, thread)
            return result
        if isinstance(expr, ast.FieldRead):
            static = self._static_target(expr.target, frame)
            if static is not None:
                result = yield from self._static_read(
                    static, expr.field_name, thread, expr.span)
                return result
            recv = yield from self.eval_expr(expr.target, frame, region,
                                             thread)
            if isinstance(recv, RegionHandle):
                result = yield from self._portal_read(
                    recv.area, expr.field_name, thread, expr.span)
                return result
            result = yield from self._field_read(recv, expr.field_name,
                                                 thread, expr.span)
            return result
        if isinstance(expr, ast.Invoke):
            result = yield from self._eval_invoke(expr, frame, region,
                                                  thread)
            return result
        if isinstance(expr, ast.Binary):
            result = yield from self._eval_binary(expr, frame, region,
                                                  thread)
            return result
        if isinstance(expr, ast.Unary):
            operand = yield from self.eval_expr(expr.operand, frame,
                                                region, thread)
            yield self.cost.op_basic
            if expr.op == "!":
                return not operand
            return -operand
        if isinstance(expr, ast.BuiltinCall):
            result = yield from self._eval_builtin(expr, frame, region,
                                                   thread)
            return result
        raise InterpreterError(f"unknown expression {expr!r}")

    def _eval_new(self, expr: ast.NewExpr, frame: Frame,
                  region: MemoryArea, thread: SimThread):
        owner_values = tuple(self.owner_value(o.name, frame)
                             for o in expr.owners)
        target = region_of_owner(owner_values[0])
        if thread.realtime and (self.checks.enabled
                                or self.checks.validate):
            if target.is_heap:
                raise MemoryAccessError(
                    "no-heap real-time thread allocated in the heap")
            if target.policy == VT:
                raise RealtimeViolationError(
                    "real-time thread allocated in a VT region "
                    f"'{target.name}'")
        if expr.class_name in ("IntArray", "FloatArray"):
            length = yield from self.eval_expr(expr.args[0], frame,
                                               region, thread)
            if length < 0:
                raise InterpreterError(f"negative array length {length}")
            obj = make_array(expr.class_name, owner_values, target, length)
        else:
            layout = self._layout(expr.class_name)
            obj = ObjRef(expr.class_name, owner_values,
                         tuple(name for name, _ in layout), target)
            for name, init in layout:
                if init is not None:
                    obj.fields[name] = init
        fresh_chunks = target.allocate(obj)
        cycles = (self.cost.alloc_base
                  + self.cost.alloc_per_byte * obj.size_bytes)
        if target.policy == VT:
            cycles += (self.cost.vt_alloc_extra
                       + self.cost.vt_chunk_cost * fresh_chunks)
        if target.is_heap:
            cycles += self.cost.heap_alloc_extra
            self.stats.peak_heap_bytes = max(self.stats.peak_heap_bytes,
                                             target.bytes_used)
        self.stats.allocations += 1
        self.stats.bytes_allocated += obj.size_bytes
        self.stats.alloc_cycles += cycles
        self.stats.profile.record_alloc(expr.span.start.line,
                                        target.name, obj.size_bytes)
        self.stats.tracer.emit_detail(
            "alloc", f"{expr.class_name} -> {target.name}",
            cycle=self.stats.cycles, thread=thread.name,
            attrs={"bytes": obj.size_bytes, "policy": target.policy,
                   "region": target.name, "line": expr.span.start.line,
                   "fresh_chunks": fresh_chunks})
        # pin before yielding the allocation cost: a GC at this very
        # preemption point must see the newborn object
        frame.temps.append(obj)
        yield cycles
        return obj

    def _eval_invoke(self, expr: ast.Invoke, frame: Frame,
                     region: MemoryArea, thread: SimThread):
        recv = yield from self.eval_expr(expr.target, frame, region,
                                         thread)
        obj = self._require_object(recv, expr.span,
                                   f"call '{expr.method_name}'")
        owner_values = tuple(self.owner_value(o.name, frame)
                             for o in expr.owner_args)
        args = []
        for arg in expr.args:
            value = yield from self.eval_expr(arg, frame, region, thread)
            args.append(value)
        if obj.class_name not in ("IntArray", "FloatArray"):
            # primitive-array accesses compile to plain loads/stores on a
            # JVM; only real method calls pay call overhead
            yield self.cost.op_invoke
        result = yield from self.call_method(obj, expr.method_name,
                                             owner_values, tuple(args),
                                             region, thread)
        return result

    def _eval_binary(self, expr: ast.Binary, frame: Frame,
                     region: MemoryArea, thread: SimThread):
        op = expr.op
        left = yield from self.eval_expr(expr.left, frame, region, thread)
        if op == "&&":
            yield self.cost.op_basic
            if not left:
                return False
            right = yield from self.eval_expr(expr.right, frame, region,
                                              thread)
            return bool(right)
        if op == "||":
            yield self.cost.op_basic
            if left:
                return True
            right = yield from self.eval_expr(expr.right, frame, region,
                                              thread)
            return bool(right)
        right = yield from self.eval_expr(expr.right, frame, region,
                                          thread)
        yield self.cost.op_basic
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return _java_div(left, right)
        if op == "%":
            return _java_mod(left, right)
        if op == "==":
            return _ref_eq(left, right)
        if op == "!=":
            return not _ref_eq(left, right)
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise InterpreterError(f"unknown operator '{op}'")

    def _eval_builtin(self, expr: ast.BuiltinCall, frame: Frame,
                      region: MemoryArea, thread: SimThread):
        args = []
        for arg in expr.args:
            value = yield from self.eval_expr(arg, frame, region, thread)
            args.append(value)
        name = expr.name
        if name == "print":
            yield self.cost.op_builtin
            self.machine.output.append(format_value(args[0]))
            return None
        if name == "io":
            # simulated network/disk operation: dominates server loops
            cycles = self.cost.op_builtin + max(int(args[0]), 0)
            self.stats.io_cycles += cycles
            yield cycles
            return int(args[0])
        if name == "yieldnow":
            self.stats.thread_cycles += self.cost.thread_yield
            yield self.cost.thread_yield
            yield YIELD
            return None
        if name == "sqrt":
            yield self.cost.op_builtin
            if args[0] < 0:
                raise InterpreterError(f"sqrt of negative {args[0]}")
            return math.sqrt(args[0])
        if name == "itof":
            yield self.cost.op_basic
            return float(args[0])
        if name == "ftoi":
            yield self.cost.op_basic
            return int(args[0])
        if name == "check":
            yield self.cost.op_basic
            if not args[0]:
                raise InterpreterError(
                    f"program assertion failed at {expr.span}")
            return None
        raise InterpreterError(f"unknown builtin '{name}'")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _restore(mapping: Dict[str, Any], key: str, saved: Any) -> None:
    if saved is None:
        mapping.pop(key, None)
    else:
        mapping[key] = saved


def _literal_value(expr: ast.Expr) -> Any:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.NullLit):
        return None
    raise InterpreterError(f"not a literal: {expr!r}")


def _default_return(return_type) -> Any:
    from ..core.types import BOOLEAN, FLOAT, INT
    if return_type == INT:
        return 0
    if return_type == FLOAT:
        return 0.0
    if return_type == BOOLEAN:
        return False
    return None


def _java_div(a, b):
    if isinstance(a, float) or isinstance(b, float):
        if b == 0:
            raise InterpreterError("float division by zero")
        return a / b
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _java_mod(a, b):
    if b == 0:
        raise InterpreterError("integer modulo by zero")
    return a - _java_div(a, b) * b


def _ref_eq(a, b) -> bool:
    if isinstance(a, ObjRef) or isinstance(b, ObjRef):
        return a is b
    return a == b
