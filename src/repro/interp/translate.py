"""Section 2.6 — translation to Real-Time Java.

The paper's system compiles by *type erasure*: owner parameters disappear
and only region handles survive.  The translation has to reconstruct, for
every ``new cn<o1..n>`` site, *how to obtain the handle* of the region the
object goes to.  The typechecker already proved one exists
(``E ⊢ av RH(o1)``); the translator replays that derivation and picks the
cheapest RTSJ mechanism:

=====================  ====================================================
strategy               emitted RTSJ code
=====================  ====================================================
``CURRENT_REGION``     plain ``new`` (we are executing inside that region)
``HEAP``               ``HeapMemory.instance().newInstance(C.class)``
``IMMORTAL``           ``ImmortalMemory.instance().newInstance(C.class)``
``HANDLE_VAR``         ``h.newInstance(C.class)`` for an in-scope handle
``INITIAL_REGION``     the handle the runtime passed for initialRegion
``VIA_THIS``           ``MemoryArea.getMemoryArea(this).newInstance(...)``
``VIA_OWNER_CHAIN``    like VIA_THIS but starting from another owner whose
                       handle is transitively available ([AV TRANS1/2])
=====================  ====================================================

Regions themselves are lowered per Figure 10: a region ``r`` becomes an
RTSJ memory area ``m`` plus wrapper objects ``w1`` (subregion table,
allocated next to ``m``) and ``w2`` (typed portal fields, allocated
*inside* ``m`` and reachable through ``m.getPortal()``).

``translate(analyzed)`` returns a :class:`Translation` with the strategy
table and a pseudo-Java rendering of the erased program for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Tuple

from ..core.api import AnalyzedProgram
from ..core.checker import Checker
from ..core.env import Env
from ..core.owners import HEAP, IMMORTAL, INITIAL_REGION, Owner, THIS
from ..lang import ast


class AllocStrategy(Enum):
    CURRENT_REGION = auto()
    HEAP = auto()
    IMMORTAL = auto()
    HANDLE_VAR = auto()
    INITIAL_REGION = auto()
    VIA_THIS = auto()
    VIA_OWNER_CHAIN = auto()


@dataclass
class AllocSite:
    class_name: str
    owner: str
    strategy: AllocStrategy
    #: handle variable name for HANDLE_VAR (None otherwise)
    handle: Optional[str]
    line: int


@dataclass
class Translation:
    sites: List[AllocSite]
    java: str

    def strategy_histogram(self) -> Dict[AllocStrategy, int]:
        out: Dict[AllocStrategy, int] = {}
        for site in self.sites:
            out[site.strategy] = out.get(site.strategy, 0) + 1
        return out


class _CollectingChecker(Checker):
    """Re-runs the typechecker with handle-variable tracking so each
    allocation site can name the concrete handle to use."""

    def __init__(self, program_info):
        super().__init__(program_info)
        self.sites: List[AllocSite] = []
        #: region owner name -> innermost handle variable name
        self.handle_vars: Dict[str, str] = {}
        self._rcr_stack: List[Owner] = []
        self.new_site_hook = self._record

    # track handle variable names alongside the env's handle set
    def _check_region_stmt(self, env, stmt, permitted, rcr):
        saved = self.handle_vars.get(stmt.region_name)
        self.handle_vars[stmt.region_name] = stmt.handle_name
        try:
            super()._check_region_stmt(env, stmt, permitted, rcr)
        finally:
            if saved is None:
                self.handle_vars.pop(stmt.region_name, None)
            else:
                self.handle_vars[stmt.region_name] = saved

    def _check_subregion_stmt(self, env, stmt, permitted, rcr):
        saved = self.handle_vars.get(stmt.region_name)
        self.handle_vars[stmt.region_name] = stmt.handle_name
        try:
            super()._check_subregion_stmt(env, stmt, permitted, rcr)
        finally:
            if saved is None:
                self.handle_vars.pop(stmt.region_name, None)
            else:
                self.handle_vars[stmt.region_name] = saved

    def _check_method(self, class_env, info, mi):
        from ..core.types import HandleType
        added = []
        for ptype, pname in mi.params:
            if isinstance(ptype, HandleType) \
                    and ptype.region.name not in self.handle_vars:
                self.handle_vars[ptype.region.name] = pname
                added.append(ptype.region.name)
        try:
            super()._check_method(class_env, info, mi)
        finally:
            for name in added:
                self.handle_vars.pop(name, None)

    def _record(self, env: Env, expr: ast.NewExpr, rcr: Owner) -> None:
        owner = Owner(expr.owners[0].name)
        strategy, handle = self._strategy_for(env, owner, rcr)
        self.sites.append(AllocSite(expr.class_name, owner.name, strategy,
                                    handle, expr.span.start.line))

    def _strategy_for(self, env: Env, owner: Owner,
                      rcr: Owner) -> Tuple[AllocStrategy, Optional[str]]:
        if owner == rcr:
            return AllocStrategy.CURRENT_REGION, None
        if owner == HEAP:
            return AllocStrategy.HEAP, None
        if owner == IMMORTAL:
            return AllocStrategy.IMMORTAL, None
        if owner == INITIAL_REGION:
            return AllocStrategy.INITIAL_REGION, None
        if owner.name in self.handle_vars:
            return AllocStrategy.HANDLE_VAR, self.handle_vars[owner.name]
        if owner == THIS:
            return AllocStrategy.VIA_THIS, None
        # replay [AV TRANS1/2]: walk the ownership component looking for
        # an owner whose handle is directly available
        seen = {owner}
        frontier = [owner]
        while frontier:
            current = frontier.pop()
            for a, b in env.owns_edges:
                for nxt in ((b,) if a == current
                            else (a,) if b == current else ()):
                    if nxt in seen:
                        continue
                    seen.add(nxt)
                    if nxt == THIS:
                        return AllocStrategy.VIA_THIS, None
                    if nxt == HEAP:
                        return AllocStrategy.HEAP, None
                    if nxt == IMMORTAL:
                        return AllocStrategy.IMMORTAL, None
                    if nxt == INITIAL_REGION:
                        return AllocStrategy.INITIAL_REGION, None
                    if nxt.name in self.handle_vars:
                        return (AllocStrategy.VIA_OWNER_CHAIN,
                                self.handle_vars[nxt.name])
                    frontier.append(nxt)
        # the typechecker proved availability, so the only remaining path
        # is through `this`'s region
        return AllocStrategy.VIA_THIS, None


# ---------------------------------------------------------------------------
# pseudo-Java emission
# ---------------------------------------------------------------------------

_PRIM_MAP = {"int": "int", "float": "double", "boolean": "boolean",
             "void": "void"}


class _JavaEmitter:
    def __init__(self, sites: Dict[int, AllocSite]) -> None:
        self.lines: List[str] = []
        self.depth = 0
        self.sites = sites

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def erase_type(self, t: ast.TypeAst) -> str:
        if isinstance(t, ast.PrimTypeAst):
            return _PRIM_MAP[t.name]
        if isinstance(t, ast.HandleTypeAst):
            return "MemoryArea"
        assert isinstance(t, ast.ClassTypeAst)
        return t.name

    def expr(self, e: ast.Expr) -> str:
        if isinstance(e, ast.IntLit):
            return str(e.value)
        if isinstance(e, ast.FloatLit):
            return repr(e.value)
        if isinstance(e, ast.BoolLit):
            return "true" if e.value else "false"
        if isinstance(e, ast.NullLit):
            return "null"
        if isinstance(e, ast.ThisRef):
            return "this"
        if isinstance(e, ast.VarRef):
            return e.name
        if isinstance(e, ast.NewExpr):
            return self._new_expr(e)
        if isinstance(e, ast.FieldRead):
            return f"{self.expr(e.target)}.{e.field_name}"
        if isinstance(e, ast.Invoke):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{self.expr(e.target)}.{e.method_name}({args})"
        if isinstance(e, ast.Binary):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, ast.Unary):
            return f"({e.op}{self.expr(e.operand)})"
        if isinstance(e, ast.BuiltinCall):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"Runtime.{e.name}({args})"
        return "/* ? */"

    def _new_expr(self, e: ast.NewExpr) -> str:
        site = self.sites.get(id(e))
        ctor_args = ", ".join(self.expr(a) for a in e.args)
        plain = f"new {e.class_name}({ctor_args})"
        if site is None or site.strategy is AllocStrategy.CURRENT_REGION:
            return plain
        target = {
            AllocStrategy.HEAP: "HeapMemory.instance()",
            AllocStrategy.IMMORTAL: "ImmortalMemory.instance()",
            AllocStrategy.INITIAL_REGION: "initialArea",
            AllocStrategy.VIA_THIS: "MemoryArea.getMemoryArea(this)",
        }.get(site.strategy, site.handle or "area")
        return (f"({e.class_name}) {target}.newInstance"
                f"({e.class_name}.class) /* {ctor_args} */"
                if not ctor_args else
                f"({e.class_name}) {target}.newArray"
                f"({e.class_name}.class, {ctor_args})")

    # -- statements -----------------------------------------------------

    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            self.emit("{")
            self.depth += 1
            for inner in s.stmts:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(s, ast.LocalDecl):
            init = f" = {self.expr(s.init)}" if s.init is not None else ""
            self.emit(f"{self.erase_type(s.declared_type)} "
                      f"{s.name}{init};")
        elif isinstance(s, ast.AssignLocal):
            self.emit(f"{s.name} = {self.expr(s.value)};")
        elif isinstance(s, ast.AssignField):
            self.emit(f"{self.expr(s.target)}.{s.field_name} = "
                      f"{self.expr(s.value)};")
        elif isinstance(s, ast.ExprStmt):
            self.emit(f"{self.expr(s.expr)};")
        elif isinstance(s, ast.If):
            self.emit(f"if ({self.expr(s.cond)})")
            self.stmt(s.then_body)
            if s.else_body is not None:
                self.emit("else")
                self.stmt(s.else_body)
        elif isinstance(s, ast.While):
            self.emit(f"while ({self.expr(s.cond)})")
            self.stmt(s.body)
        elif isinstance(s, ast.Return):
            self.emit("return;" if s.value is None
                      else f"return {self.expr(s.value)};")
        elif isinstance(s, ast.Fork):
            thread_cls = ("NoHeapRealtimeThread" if s.realtime
                          else "RealtimeThread")
            self.emit(f"new {thread_cls}(() -> "
                      f"{self.expr(s.call)}).start();")
        elif isinstance(s, ast.RegionStmt):
            if s.policy is not None and s.policy.kind == "LT":
                ctor = f"new LTMemoryWithSubregions({s.policy.size})"
            else:
                ctor = "new VTMemoryWithSubregions()"
            self.emit(f"// region {s.region_name} "
                      f"(w1 = subregion table, w2 = portal wrapper)")
            self.emit(f"final MemoryArea {s.handle_name} = {ctor};")
            self.emit(f"{s.handle_name}.enter(() ->")
            self.stmt(s.body)
            self.emit(");")
        elif isinstance(s, ast.SubregionStmt):
            parent = self.expr(s.parent_handle)
            self.emit(f"final MemoryArea {s.handle_name} = "
                      f"{parent}.getSubregionTable()"
                      f".{s.subregion_name}"
                      f"{'.renew()' if s.fresh else ''};")
            self.emit(f"{s.handle_name}.enter(() ->")
            self.stmt(s.body)
            self.emit(");")

    # -- declarations -----------------------------------------------------

    def field(self, f: ast.FieldDecl) -> None:
        static = "static " if f.static else ""
        init = f" = {self.expr(f.init)}" if f.init is not None else ""
        self.emit(f"{static}{self.erase_type(f.declared_type)} "
                  f"{f.name}{init};")

    def method(self, m: ast.MethodDecl) -> None:
        params = ", ".join(f"{self.erase_type(t)} {name}"
                           for t, name in m.params)
        self.emit(f"{self.erase_type(m.return_type)} {m.name}({params})")
        self.stmt(m.body)

    def clazz(self, c: ast.ClassDecl) -> None:
        ext = f" extends {c.superclass.name}" if c.superclass else ""
        self.emit(f"class {c.name}{ext} {{")
        self.depth += 1
        for f in c.fields:
            self.field(f)
        for m in c.methods:
            self.method(m)
        self.depth -= 1
        self.emit("}")

    def region_kind(self, rk: ast.RegionKindDecl) -> None:
        self.emit(f"// regionKind {rk.name}: portal wrapper w2 "
                  "(allocated inside the region, typed portal fields)")
        self.emit(f"class {rk.name}Portals {{")
        self.depth += 1
        for portal in rk.portals:
            self.field(portal)
        self.depth -= 1
        self.emit("}")
        self.emit(f"// regionKind {rk.name}: subregion table w1 "
                  "(allocated next to the memory area)")
        self.emit(f"class {rk.name}Subregions {{")
        self.depth += 1
        for sub in rk.subregions:
            self.emit(f"MemoryArea {sub.name}; "
                      f"// {sub.kind.name}, "
                      f"{'LT(%d)' % sub.policy.size if sub.policy.kind == 'LT' else 'VT'}, "
                      f"{'RT' if sub.realtime else 'NoRT'}")
        self.depth -= 1
        self.emit("}")


def allocation_strategies(
        analyzed: AnalyzedProgram
) -> Tuple[Dict[int, AllocSite], List[AllocSite]]:
    """Returns (``id(NewExpr)`` → allocation site, all sites in check
    order) for a well-typed program — shared by the pseudo-Java emitter
    and the executable Python backend."""
    analyzed.require_well_typed()
    checker = _CollectingChecker(analyzed.info)
    errors = checker.check()
    if errors:
        raise errors[0]
    site_by_line: Dict[int, AllocSite] = {}
    for site in checker.sites:
        site_by_line.setdefault(site.line, site)

    sites_by_id: Dict[int, AllocSite] = {}

    def index_expr(e: ast.Expr) -> None:
        if isinstance(e, ast.NewExpr):
            site = site_by_line.get(e.span.start.line)
            if site is not None:
                sites_by_id[id(e)] = site
        for child in _expr_children(e):
            index_expr(child)

    def index_stmt(s: ast.Stmt) -> None:
        for child in _stmt_children(s):
            if isinstance(child, ast.Stmt):
                index_stmt(child)
            else:
                index_expr(child)

    program = analyzed.program
    for cls in program.classes:
        for m in cls.methods:
            index_stmt(m.body)
    if program.main is not None:
        index_stmt(program.main)
    return sites_by_id, checker.sites


def translate(analyzed: AnalyzedProgram) -> Translation:
    """Compute allocation strategies and the pseudo-Java erasure of a
    well-typed program."""
    sites_by_id, all_sites = allocation_strategies(analyzed)
    program = analyzed.program

    emitter = _JavaEmitter(sites_by_id)
    emitter.emit("// Pseudo-RTSJ translation (Section 2.6); owner")
    emitter.emit("// parameters erased, region handles made explicit.")
    for rk in program.region_kinds:
        emitter.region_kind(rk)
    for cls in program.classes:
        emitter.clazz(cls)
    if program.main is not None:
        emitter.emit("static void main() {")
        emitter.depth += 1
        for s in program.main.stmts:
            emitter.stmt(s)
        emitter.depth -= 1
        emitter.emit("}")
    return Translation(all_sites, "\n".join(emitter.lines) + "\n")


def _expr_children(e: ast.Expr):
    if isinstance(e, ast.NewExpr):
        return list(e.args)
    if isinstance(e, ast.FieldRead):
        return [e.target]
    if isinstance(e, ast.Invoke):
        return [e.target, *e.args]
    if isinstance(e, ast.Binary):
        return [e.left, e.right]
    if isinstance(e, ast.Unary):
        return [e.operand]
    if isinstance(e, ast.BuiltinCall):
        return list(e.args)
    return []


def _stmt_children(s: ast.Stmt):
    if isinstance(s, ast.Block):
        return list(s.stmts)
    if isinstance(s, ast.LocalDecl):
        return [s.init] if s.init is not None else []
    if isinstance(s, ast.AssignLocal):
        return [s.value]
    if isinstance(s, ast.AssignField):
        return [s.target, s.value]
    if isinstance(s, ast.ExprStmt):
        return [s.expr]
    if isinstance(s, ast.If):
        out = [s.cond, s.then_body]
        if s.else_body is not None:
            out.append(s.else_body)
        return out
    if isinstance(s, ast.While):
        return [s.cond, s.body]
    if isinstance(s, ast.Return):
        return [s.value] if s.value is not None else []
    if isinstance(s, ast.Fork):
        return [s.call]
    if isinstance(s, ast.RegionStmt):
        return [s.body]
    if isinstance(s, ast.SubregionStmt):
        return [s.parent_handle, s.body]
    return []
