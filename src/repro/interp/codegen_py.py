"""Straight-line (fused) Python-source backend.

``compile_fused`` turns a lowered, hazard-free program into one flat
Python function per method body.  Simulated cycles become *integer
arithmetic on a local* (``cy``) instead of a stream of generator
yields; the whole run commits through a single mega-yield, so the
scheduler round-robin, the generator resume chain, and the per-yield
bookkeeping all disappear from the hot path.  Dynamic checks are
*erased at emit time*: when ``checks_enabled`` is off and the value's
static type is primitive, no check code is generated at all.

Exactness contract
------------------

The fused program must be **observably byte-identical** to the
interpreter — cycles, output, and every ``Stats.summary()`` counter —
or it must not run at all.  The second half of that sentence is the
load-bearing one: fused code *bails* (raises :class:`_Bail`, or any
host exception — both are caught by the coroutine wrapper) whenever it
meets a condition whose exact interpreter behaviour it cannot
reproduce straight-line:

* a simulated failure (null deref, bounds, LT overflow, division by
  zero, a failed ``check``, an illegal assignment) — the interpreter
  reports these with mid-run timing the fused form does not track;
* the run crossing ``max_cycles`` (checked conservatively at loop
  heads and exactly after the run: the scheduler only raises
  ``DeadlockError`` when a *round starts* beyond the limit, so a
  program that finishes within its final slice is a success even past
  the limit — ``ST.cycles + CY[0] > MAXC`` reproduces that exactly);
* the heap crossing the GC trigger (``bytes_used`` is monotone without
  a collection, so a final reading below the trigger proves the
  interpreter never ran a mid-program GC).

On bail the orchestrator (``machine.execute``) discards the machine
and reruns on a fresh one with the *faithful* generator backend, which
reproduces the interpreter yield-for-yield.  Bailing is therefore
always safe — a spurious bail costs wall clock, never correctness.

Eligibility is decided per machine: no hazards from lowering, a
well-typed program, null instrumentation sinks, no recorder, faults,
sanitizer, or degrade mode, and no user ``regionKind`` shadowing the
built-in kinds.  ``repro bench`` (``instrument=False``) qualifies;
a default ``repro run`` (instrumented) routes to the faithful backend.

Known host-level divergence (documented in docs/PERFORMANCE.md): deep
simulated recursion consumes one host frame per call in every backend,
but the exact depth at which the host raises ``RecursionError``
differs between the interpreter's generator chain and compiled code.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..core.types import BOOLEAN, FLOAT, INT
from ..lang import ast
from ..rtsj.objects import ObjRef, make_array
from ..rtsj.regions import LT, VT
from .codegen_base import (CodegenUnsupported, IdentityCache,
                           SourceWriter, bake, cost_key,
                           mangle)
from .lower import THIS, LoweredProgram, MethodUnit, lower
from .values import RegionHandle, format_value


class _Bail(Exception):
    """Fused execution met a condition it cannot reproduce exactly."""


_PRIMS = (INT, FLOAT, BOOLEAN)

_MAIN_KEY = ("", "<main>")

#: host objects the generated module closes over (never re-created, so
#: ``isinstance`` in generated code agrees with the rest of the system)
_CTX: Dict[str, Any] = {
    "Bail": _Bail,
    "ObjRef": ObjRef,
    "make_array": make_array,
    "format_value": format_value,
    "RegionHandle": RegionHandle,
    "sqrt": math.sqrt,
    "LT": LT,
    "VT": VT,
}


class PyProgram:
    """A compiled program bound to one :class:`~repro.interp.machine.
    Machine`: ``main_coroutine`` is a drop-in replacement for the
    interpreter's."""

    __slots__ = ("backend", "fallback_backend", "_factory")

    def __init__(self, backend: str, fallback_backend: str,
                 factory: Any) -> None:
        self.backend = backend
        #: backend ``machine.execute`` reruns with when this one bails
        self.fallback_backend = fallback_backend
        self._factory = factory

    def main_coroutine(self, thread: Any) -> Any:
        return self._factory(thread)


class _Fn:
    """Mutable emit state for one function body."""

    __slots__ = ("unit", "facts", "pend_cy", "pend_sp", "ntmp",
                 "regions", "cur_region")

    def __init__(self, unit: MethodUnit) -> None:
        self.unit = unit
        self.facts = unit.facts
        self.pend_cy = 0          # compile-time-constant cycles not yet emitted
        self.pend_sp = 0          # statement steps not yet emitted
        self.ntmp = 0
        self.regions: List[str] = []   # open region area vars, outer first
        self.cur_region = "HEAP" if unit.is_main else "R"

    def tmp(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"


def _fn_name(key: Tuple[str, str]) -> str:
    return f"f_{mangle(key[0])}__{mangle(key[1])}"


class _FusedEmitter:
    """Emits the whole program as one Python module (see module
    docstring for the charging discipline)."""

    def __init__(self, lowered: LoweredProgram, checks_enabled: bool,
                 validate: bool, cost: Any) -> None:
        self.low = lowered
        self.enabled = checks_enabled
        self.validate = validate
        self.c = cost
        self.w = SourceWriter()

    # -- plumbing --------------------------------------------------------

    def flush(self, fn: _Fn) -> None:
        if fn.pend_cy:
            self.w.emit(f"cy += {fn.pend_cy}")
            fn.pend_cy = 0
        if fn.pend_sp:
            self.w.emit(f"sp += {fn.pend_sp}")
            fn.pend_sp = 0

    def _maybe_ref(self, t: Optional[Any]) -> bool:
        """Could a value of static type ``t`` be an ObjRef at runtime?
        ``None`` (unknown / null literal) must answer yes."""
        return not (t == INT or t == FLOAT or t == BOOLEAN)

    def _type(self, expr: ast.Expr, fn: _Fn) -> Optional[Any]:
        return fn.facts.types.get(id(expr))

    # -- owner descriptors ----------------------------------------------

    def owner_atom(self, fn: _Fn, desc: Tuple[Any, ...]) -> str:
        """The owner *value* the interpreter's resolver would produce."""
        kind = desc[0]
        if kind == "this":
            return "S"
        if kind == "heap":
            return "HEAP"
        if kind == "immortal":
            return "IMM"
        if kind == "initial":
            return "HEAP" if fn.unit.is_main else "R"
        if kind == "cformal":
            return f"CO[{desc[1]}]"
        if kind == "mformal":
            try:
                idx = fn.unit.owner_formals.index(desc[1])
            except ValueError:
                raise CodegenUnsupported(f"unknown owner formal {desc[1]!r}")
            return f"OV[{idx}]"
        if kind == "region":
            return desc[1]
        raise CodegenUnsupported(f"owner descriptor {desc!r}")

    def target_atom(self, fn: _Fn, desc: Tuple[Any, ...]) -> str:
        """``region_of_owner(first owner)`` — the allocation target."""
        kind = desc[0]
        if kind == "this":
            return "S.area"
        if kind in ("heap", "immortal", "initial", "region"):
            return self.owner_atom(fn, desc)
        if kind in ("cformal", "mformal"):
            return f"_roo({self.owner_atom(fn, desc)})"
        raise CodegenUnsupported(f"owner descriptor {desc!r}")

    def _owner_tuple(self, exprs: List[str]) -> str:
        if not exprs:
            return "()"
        return "(" + ", ".join(exprs) + ",)"

    # -- field access ----------------------------------------------------

    def field_get(self, fn: _Fn, recv: str, fname: str) -> str:
        # checked and unchecked reads both charge c_field_read; the
        # no-heap read check returns 0 for non-realtime threads (fused
        # runs are single-threaded main), so it is elided entirely
        fn.pend_cy += self.c.op_field_read
        t = fn.tmp()
        self.w.emit(f"{t} = _rq({recv}).fields[{fname!r}]")
        return t

    def field_put(self, fn: _Fn, recv: str, fname: str, value: str,
                  vtype: Optional[Any], line: int) -> None:
        w = self.w
        o = fn.tmp()
        w.emit(f"{o} = _rq({recv})")
        fn.pend_cy += self.c.op_field_write
        if self._maybe_ref(vtype):
            # mirror of the interpreter's `isinstance(value, ObjRef)`
            # guard; for statically-primitive values the guard is False
            # at runtime always, so it is erased at emit time
            if self.enabled:
                w.emit(f"if isinstance({value}, ObjRef):")
                w.indent()
                w.emit(f"cy += CK.assignment_cost({o}.area, {value}, "
                       f"{line}, 'main')")
                w.dedent()
            elif self.validate:
                w.emit(f"if isinstance({value}, ObjRef):")
                w.indent()
                # returns 0 in validate-only mode; raises on violation
                w.emit(f"CK.assignment_cost({o}.area, {value}, "
                       f"{line}, 'main')")
                w.dedent()
        w.emit(f"{o}.fields[{fname!r}] = {value}")

    # -- expressions -----------------------------------------------------

    def eval(self, fn: _Fn, e: ast.Expr) -> str:
        c = self.c
        w = self.w
        if isinstance(e, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return bake(e.value)
        if isinstance(e, ast.NullLit):
            return "None"
        if isinstance(e, ast.ThisRef):
            return "None" if fn.unit.is_main else "S"
        if isinstance(e, ast.VarRef):
            fact = fn.facts.vars.get(id(e))
            if fact is None:
                raise CodegenUnsupported("missing var fact")
            if fact[0] == "local":
                fn.pend_cy += c.op_local
                return fact[1]
            return self.field_get(fn, "S", e.name)
        if isinstance(e, ast.FieldRead):
            if fn.facts.targets.get(id(e)) != "object":
                raise CodegenUnsupported("non-object field read")
            recv = self.eval(fn, e.target)
            return self.field_get(fn, recv, e.field_name)
        if isinstance(e, ast.NewExpr):
            return self.emit_new(fn, e)
        if isinstance(e, ast.Invoke):
            return self.emit_invoke(fn, e)
        if isinstance(e, ast.Binary):
            return self.emit_binary(fn, e)
        if isinstance(e, ast.Unary):
            if e.op not in ("!", "-"):
                raise CodegenUnsupported(f"unary {e.op!r}")
            v = self.eval(fn, e.operand)
            fn.pend_cy += c.op_basic
            t = fn.tmp()
            if e.op == "!":
                w.emit(f"{t} = not ({v})")
            else:
                w.emit(f"{t} = -({v})")
            return t
        if isinstance(e, ast.BuiltinCall):
            return self.emit_builtin(fn, e)
        raise CodegenUnsupported(f"expression {type(e).__name__}")

    def emit_binary(self, fn: _Fn, e: ast.Binary) -> str:
        c = self.c
        w = self.w
        op = e.op
        if op in ("&&", "||"):
            a = self.eval(fn, e.left)
            fn.pend_cy += c.op_basic
            t = fn.tmp()
            self.flush(fn)
            w.emit(f"if {a}:" if op == "&&" else f"if not {a}:")
            w.indent()
            b = self.eval(fn, e.right)
            w.emit(f"{t} = bool({b})")
            self.flush(fn)
            w.dedent()
            w.emit("else:")
            w.indent()
            w.emit(f"{t} = False" if op == "&&" else f"{t} = True")
            w.dedent()
            return t
        a = self.eval(fn, e.left)
        b = self.eval(fn, e.right)
        fn.pend_cy += c.op_basic
        t = fn.tmp()
        if op in ("+", "-", "*", "<", "<=", ">", ">="):
            w.emit(f"{t} = {a} {op} {b}")
        elif op == "/":
            w.emit(f"{t} = _dv({a}, {b})")
        elif op == "%":
            w.emit(f"{t} = _md({a}, {b})")
        elif op in ("==", "!="):
            lt = self._type(e.left, fn)
            rt = self._type(e.right, fn)
            if lt in _PRIMS and rt in _PRIMS:
                w.emit(f"{t} = {a} {op} {b}")
            elif op == "==":
                w.emit(f"{t} = _eq({a}, {b})")
            else:
                w.emit(f"{t} = not _eq({a}, {b})")
        else:
            raise CodegenUnsupported(f"operator {op!r}")
        return t

    def emit_new(self, fn: _Fn, e: ast.NewExpr) -> str:
        c = self.c
        w = self.w
        if not e.owners:
            raise CodegenUnsupported("new with no owners")
        descs = [fn.facts.owners.get(id(o)) for o in e.owners]
        if any(d is None for d in descs):
            raise CodegenUnsupported("missing owner fact")
        owners = self._owner_tuple(
            [self.owner_atom(fn, d) for d in descs])
        tgt_expr = self.target_atom(fn, descs[0])
        if "(" in tgt_expr:      # impure-looking: pin it once
            tv = fn.tmp()
            w.emit(f"{tv} = {tgt_expr}")
            tgt = tv
        else:
            tgt = tgt_expr
        t = fn.tmp()
        if e.class_name in ("IntArray", "FloatArray"):
            if len(e.args) != 1:
                raise CodegenUnsupported("array new arity")
            ln = self.eval(fn, e.args[0])
            w.emit(f"if {ln} < 0:")
            w.indent()
            w.emit("raise _Bail()")
            w.dedent()
            w.emit(f"{t} = make_array({e.class_name!r}, {owners}, "
                   f"{tgt}, {ln})")
        else:
            if e.args:
                raise CodegenUnsupported("constructor arguments")
            layout = self.low.layouts.get(e.class_name)
            if layout is None:
                raise CodegenUnsupported(
                    f"no layout for {e.class_name!r}")
            names = tuple(n for n, _init in layout)
            w.emit(f"{t} = ObjRef({e.class_name!r}, {owners}, "
                   f"{names!r}, {tgt})")
            for name, init in layout:
                if init is not None:
                    w.emit(f"{t}.fields[{name!r}] = {bake(init)}")
        w.emit(f"cy += _alloc({tgt}, {t})")
        return t

    def emit_invoke(self, fn: _Fn, e: ast.Invoke) -> str:
        c = self.c
        w = self.w
        disp = fn.facts.invokes.get(id(e))
        if disp is None:
            raise CodegenUnsupported("missing invoke fact")
        recv = self.eval(fn, e.target)
        r = fn.tmp()
        w.emit(f"{r} = _rq({recv})")
        args = [self.eval(fn, a) for a in e.args]
        if disp[0] == "native":
            op = disp[1]
            if op == "get":
                if len(args) < 1:
                    raise CodegenUnsupported("array get arity")
                fn.pend_cy += c.op_field_read
                t = fn.tmp()
                w.emit(f"{t} = _ag({r}, {args[0]})")
                return t
            if op == "set":
                if len(args) < 2:
                    raise CodegenUnsupported("array set arity")
                fn.pend_cy += c.op_field_write
                w.emit(f"_as({r}, {args[0]}, {args[1]})")
                return "None"
            if op == "length":
                fn.pend_cy += c.op_basic
                t = fn.tmp()
                w.emit(f"{t} = _al({r})")
                return t
            raise CodegenUnsupported(f"native {op!r}")
        _tag, static_cls, mono = disp
        entry = self.low.call_table.get((static_cls, e.method_name))
        if entry is None or entry.native is not None:
            raise CodegenUnsupported("unresolvable call")
        if len(e.owner_args) != len(entry.owner_formals):
            raise CodegenUnsupported("owner-arg arity")
        if len(args) != len(entry.param_names):
            raise CodegenUnsupported("call arity")
        ovs = []
        for o in e.owner_args:
            desc = fn.facts.owners.get(id(o))
            if desc is None:
                raise CodegenUnsupported("missing owner fact")
            ovs.append(self.owner_atom(fn, desc))
        ov = self._owner_tuple(ovs)
        fn.pend_cy += c.op_invoke
        t = fn.tmp()
        if mono:
            if (entry.impl_class, e.method_name) not in self.low.units:
                raise CodegenUnsupported("no body for call target")
            co = self._selector_tuple(entry.selectors, r)
            arglist = "".join(", " + a for a in args)
            w.emit(f"{t} = {_fn_name((entry.impl_class, e.method_name))}"
                   f"({r}, {co}, {ov}, {fn.cur_region}, T{arglist})")
        else:
            packed = self._owner_tuple(args)
            w.emit(f"{t} = CALLS[({r}.class_name, {e.method_name!r})]"
                   f"({r}, {ov}, {fn.cur_region}, T, {packed})")
        return t

    def _selector_tuple(self, selectors: Optional[Tuple[Any, ...]],
                        recv: str) -> str:
        """Rebuild the defining class's owner tuple from the receiver
        (the interpreter's call-entry selectors, applied at emit)."""
        if selectors is None:
            return f"{recv}.owners"
        parts = []
        for sel in selectors:
            if sel is THIS:
                parts.append(recv)
            elif isinstance(sel, int):
                parts.append(f"{recv}.owners[{sel}]")
            elif sel == "heap":
                parts.append("HEAP")
            elif sel == "immortal":
                parts.append("IMM")
            else:
                raise CodegenUnsupported(f"selector {sel!r}")
        return self._owner_tuple(parts)

    def emit_builtin(self, fn: _Fn, e: ast.BuiltinCall) -> str:
        c = self.c
        w = self.w
        name = e.name
        if name == "yieldnow":
            if e.args:
                raise CodegenUnsupported("yieldnow arity")
            # single-threaded and uninstrumented: the scheduler slice
            # boundary is unobservable, only the charge matters
            ty = c.thread_yield
            w.emit(f"ST.thread_cycles += {ty}")
            fn.pend_cy += ty
            return "None"
        if name not in ("print", "io", "sqrt", "itof", "ftoi", "check") \
                or len(e.args) != 1:
            raise CodegenUnsupported(f"builtin {name!r}")
        v = self.eval(fn, e.args[0])
        if name == "print":
            fn.pend_cy += c.op_builtin
            w.emit(f"OUT.append(FV({v}))")
            return "None"
        if name == "io":
            ti = fn.tmp()
            tc = fn.tmp()
            w.emit(f"{ti} = int({v})")
            w.emit(f"{tc} = {c.op_builtin} + ({ti} if {ti} > 0 else 0)")
            w.emit(f"ST.io_cycles += {tc}")
            w.emit(f"cy += {tc}")
            return ti
        if name == "sqrt":
            fn.pend_cy += c.op_builtin
            w.emit(f"if {v} < 0:")
            w.indent()
            w.emit("raise _Bail()")
            w.dedent()
            t = fn.tmp()
            w.emit(f"{t} = _sqrt({v})")
            return t
        if name == "itof":
            fn.pend_cy += c.op_basic
            t = fn.tmp()
            w.emit(f"{t} = float({v})")
            return t
        if name == "ftoi":
            fn.pend_cy += c.op_basic
            t = fn.tmp()
            w.emit(f"{t} = int({v})")
            return t
        # check
        fn.pend_cy += c.op_basic
        w.emit(f"if not {v}:")
        w.indent()
        w.emit("raise _Bail()")
        w.dedent()
        return "None"

    # -- statements ------------------------------------------------------

    def stmt(self, fn: _Fn, s: ast.Stmt) -> None:
        c = self.c
        w = self.w
        fn.pend_sp += 1
        if isinstance(s, ast.Block):
            for inner in s.stmts:
                self.stmt(fn, inner)
            return
        if isinstance(s, ast.LocalDecl):
            fact = fn.facts.vars.get(id(s))
            if fact is None or fact[0] != "local":
                raise CodegenUnsupported("missing local fact")
            slot = fact[1]
            if s.init is None:
                fn.pend_cy += c.op_local
                w.emit(f"{slot} = None")
            else:
                v = self.eval(fn, s.init)
                fn.pend_cy += c.op_local
                w.emit(f"{slot} = {v}")
            return
        if isinstance(s, ast.AssignLocal):
            fact = fn.facts.vars.get(id(s))
            if fact is None:
                raise CodegenUnsupported("missing assign fact")
            v = self.eval(fn, s.value)
            if fact[0] == "local":
                fn.pend_cy += c.op_local
                w.emit(f"{fact[1]} = {v}")
            else:
                self.field_put(fn, "S", s.name, v,
                               self._type(s.value, fn),
                               s.span.start.line)
            return
        if isinstance(s, ast.AssignField):
            if fn.facts.targets.get(id(s)) != "object":
                raise CodegenUnsupported("non-object field write")
            # interpreter order: value first, then target
            v = self.eval(fn, s.value)
            recv = self.eval(fn, s.target)
            self.field_put(fn, recv, s.field_name, v,
                           self._type(s.value, fn), s.span.start.line)
            return
        if isinstance(s, ast.ExprStmt):
            self.eval(fn, s.expr)
            return
        if isinstance(s, ast.If):
            t = self.eval(fn, s.cond)
            fn.pend_cy += c.op_branch
            self.flush(fn)
            w.emit(f"if {t}:")
            w.indent()
            if s.then_body.stmts:
                for inner in s.then_body.stmts:
                    self.stmt(fn, inner)
                self.flush(fn)
            else:
                w.emit("pass")
            w.dedent()
            if s.else_body is not None:
                w.emit("else:")
                w.indent()
                if s.else_body.stmts:
                    for inner in s.else_body.stmts:
                        self.stmt(fn, inner)
                    self.flush(fn)
                else:
                    w.emit("pass")
                w.dedent()
            return
        if isinstance(s, ast.While):
            self.flush(fn)
            w.emit("while True:")
            w.indent()
            # liveness guard: an infinite simulated loop must still
            # terminate the fused run near the interpreter's deadlock
            # horizon (exactness is decided by the end-of-run check)
            w.emit("if ST.cycles + cy + CY[0] > MAXC:")
            w.indent()
            w.emit("raise _Bail()")
            w.dedent()
            t = self.eval(fn, s.cond)
            fn.pend_cy += c.op_branch
            self.flush(fn)
            w.emit(f"if not {t}:")
            w.indent()
            w.emit("break")
            w.dedent()
            for inner in s.body.stmts:
                self.stmt(fn, inner)
            self.flush(fn)
            w.dedent()
            return
        if isinstance(s, ast.Return):
            v = "None" if s.value is None else self.eval(fn, s.value)
            fn.pend_cy += c.op_return
            self.flush(fn)
            for rslot in reversed(fn.regions):
                self.region_epilogue(fn, rslot)
            w.emit("CY[0] += cy; CY[1] += sp")
            if fn.unit.is_main:
                w.emit("return")
            else:
                w.emit(f"return {v}")
            return
        if isinstance(s, ast.RegionStmt):
            self.emit_region(fn, s)
            return
        raise CodegenUnsupported(f"statement {type(s).__name__}")

    def emit_region(self, fn: _Fn, s: ast.RegionStmt) -> None:
        c = self.c
        w = self.w
        if s.kind is not None:
            raise CodegenUnsupported("region kind")
        pair = fn.facts.regions.get(id(s))
        if pair is None:
            raise CodegenUnsupported("missing region fact")
        rslot, hslot = pair
        is_lt = s.policy is not None and s.policy.kind == "LT"
        budget = s.policy.size if s.policy is not None else 0
        pol = "LT" if is_lt else "VT"
        create_cy = c.region_create + \
            (c.lt_prealloc_per_byte * budget if is_lt else 0)
        anc = fn.tmp()
        cur = fn.cur_region
        w.emit(f"{anc} = set({cur}.ancestor_ids)")
        w.emit(f"{anc}.add({cur}.area_id)")
        w.emit(f"{rslot} = RMC({s.region_name!r}, 'LocalRegion', {pol}, "
               f"{budget}, {anc})")
        w.emit("ST.regions_created += 1")
        w.emit(f"{rslot}.portals = {{}}")
        w.emit(f"{rslot}.subregions = {{}}")
        w.emit(f"{rslot}.subregion_meta = {{}}")
        fn.pend_cy += create_cy
        w.emit(f"ST.region_cycles += {create_cy}")
        w.emit(f"{hslot} = RegionHandle({rslot})")
        fn.regions.append(rslot)
        fn.cur_region = rslot
        for inner in s.body.stmts:
            self.stmt(fn, inner)
        fn.regions.pop()
        fn.cur_region = cur
        self.region_epilogue(fn, rslot)

    def region_epilogue(self, fn: _Fn, rslot: str) -> None:
        rex = self.c.region_exit
        self.w.emit(f"CD(T, {rex})")
        self.w.emit(f"ST.region_cycles += {rex}")
        self.w.emit(f"ST.objects_freed += {rslot}.destroy('main')")

    # -- functions -------------------------------------------------------

    def emit_unit(self, unit: MethodUnit) -> None:
        w = self.w
        fn = _Fn(unit)
        if unit.is_main:
            w.emit("def _main(T):")
        else:
            params = "".join(", " + p for p in unit.facts.param_slots)
            w.emit(f"def {_fn_name(unit.key)}(S, CO, OV, R, T{params}):")
        w.indent()
        w.emit("cy = 0; sp = 0")
        for s in unit.body.stmts:
            self.stmt(fn, s)
        self.flush(fn)
        w.emit("CY[0] += cy; CY[1] += sp")
        if not unit.is_main:
            w.emit(f"return {bake(unit.default)}")
        w.dedent()

    def emit_dispatch(self) -> None:
        """CALLS: runtime dispatch table for polymorphic receivers."""
        w = self.w
        w.emit("CALLS = {}")
        for key in sorted(self.low.call_table):
            entry = self.low.call_table[key]
            if entry.native is not None:
                continue
            if (entry.impl_class, key[1]) not in self.low.units:
                continue
            co = self._selector_tuple(entry.selectors, "_r")
            unpack = "".join(f", _a[{i}]"
                             for i in range(len(entry.param_names)))
            name = f"d_{mangle(key[0])}__{mangle(key[1])}"
            w.emit(f"def {name}(_r, OV, R, T, _a):")
            w.indent()
            w.emit(f"return {_fn_name((entry.impl_class, key[1]))}"
                   f"(_r, {co}, OV, R, T{unpack})")
            w.dedent()
            w.emit(f"CALLS[({key[0]!r}, {key[1]!r})] = {name}")

    def emit_module(self) -> str:
        c = self.c
        w = self.w
        w.emit("def make(ctx):")
        w.indent()
        w.emit("_Bail = ctx['Bail']; ObjRef = ctx['ObjRef']")
        w.emit("make_array = ctx['make_array']; FV = ctx['format_value']")
        w.emit("RegionHandle = ctx['RegionHandle']; _sqrt = ctx['sqrt']")
        w.emit("LT = ctx['LT']; VT = ctx['VT']")
        w.emit("def bind(M):")
        w.indent()
        w.emit("ST = M.stats; HEAP = M.regions.heap")
        w.emit("IMM = M.regions.immortal; RMC = M.regions.create")
        w.emit("CK = M.checks; OUT = M.output; CD = M.charge_direct")
        w.emit("MAXC = M.scheduler.max_cycles; GCT = M.gc.trigger_bytes")
        w.emit("CY = [0, 0]")
        # null / liveness requirement on every object access
        w.emit("def _rq(v):")
        w.indent()
        if self.validate:
            w.emit("if v is None or not v.alive:")
        else:
            w.emit("if v is None:")
        w.indent()
        w.emit("raise _Bail()")
        w.dedent()
        w.emit("return v")
        w.dedent()
        w.emit("def _roo(v):")
        w.indent()
        w.emit("return v.area if isinstance(v, ObjRef) else v")
        w.dedent()
        # allocation: charge formula + counters, mirroring _build_new
        w.emit("def _alloc(tgt, obj):")
        w.indent()
        w.emit("fresh = tgt.allocate(obj)")
        w.emit(f"n = {c.alloc_base} + {c.alloc_per_byte} * obj.size_bytes")
        w.emit("if tgt.policy == VT:")
        w.indent()
        w.emit(f"n += {c.vt_alloc_extra} + {c.vt_chunk_cost} * fresh")
        w.dedent()
        w.emit("if tgt.is_heap:")
        w.indent()
        w.emit(f"n += {c.heap_alloc_extra}")
        w.emit("if tgt.bytes_used > ST.peak_heap_bytes:")
        w.indent()
        w.emit("ST.peak_heap_bytes = tgt.bytes_used")
        w.dedent()
        w.dedent()
        w.emit("ST.allocations += 1")
        w.emit("ST.bytes_allocated += obj.size_bytes")
        w.emit("ST.alloc_cycles += n")
        w.emit("return n")
        w.dedent()
        # array natives (bounds failures bail: the interpreter reports
        # them as simulated MemoryAccessError with mid-run timing)
        w.emit("def _ag(o, i):")
        w.indent()
        w.emit("vs = o.fields['__storage__'].values")
        w.emit("if 0 <= i < len(vs):")
        w.indent()
        w.emit("return vs[i]")
        w.dedent()
        w.emit("raise _Bail()")
        w.dedent()
        w.emit("def _as(o, i, v):")
        w.indent()
        w.emit("vs = o.fields['__storage__'].values")
        w.emit("if 0 <= i < len(vs):")
        w.indent()
        w.emit("vs[i] = v")
        w.emit("return None")
        w.dedent()
        w.emit("raise _Bail()")
        w.dedent()
        w.emit("def _al(o):")
        w.indent()
        w.emit("return len(o.fields['__storage__'].values)")
        w.dedent()
        # Java arithmetic (zero divisors bail — simulated failures)
        w.emit("def _dv(a, b):")
        w.indent()
        w.emit("if isinstance(a, float) or isinstance(b, float):")
        w.indent()
        w.emit("if b == 0:")
        w.indent()
        w.emit("raise _Bail()")
        w.dedent()
        w.emit("return a / b")
        w.dedent()
        w.emit("if b == 0:")
        w.indent()
        w.emit("raise _Bail()")
        w.dedent()
        w.emit("q = abs(a) // abs(b)")
        w.emit("return q if (a >= 0) == (b >= 0) else -q")
        w.dedent()
        w.emit("def _md(a, b):")
        w.indent()
        w.emit("if b == 0:")
        w.indent()
        w.emit("raise _Bail()")
        w.dedent()
        w.emit("return a - _dv(a, b) * b")
        w.dedent()
        w.emit("def _eq(a, b):")
        w.indent()
        w.emit("if isinstance(a, ObjRef) or isinstance(b, ObjRef):")
        w.indent()
        w.emit("return a is b")
        w.dedent()
        w.emit("return a == b")
        w.dedent()
        for key in sorted(self.low.units):
            if key == _MAIN_KEY:
                continue
            self.emit_unit(self.low.units[key])
        self.emit_dispatch()
        self.emit_unit(self.low.units[_MAIN_KEY])
        # the coroutine wrapper: one mega-yield, or a flagged bail
        w.emit("def main_co(T):")
        w.indent()
        w.emit("ok = True")
        w.emit("try:")
        w.indent()
        w.emit("_main(T)")
        w.dedent()
        w.emit("except Exception:")
        w.indent()
        w.emit("ok = False")
        w.dedent()
        w.emit("if not ok or ST.cycles + CY[0] > MAXC "
               "or HEAP.bytes_used >= GCT:")
        w.indent()
        w.emit("M.program_bailed = True")
        w.emit("yield 0")
        w.emit("return")
        w.dedent()
        w.emit("ST.steps += CY[1]")
        w.emit("yield CY[0]")
        w.dedent()
        w.emit("return main_co")
        w.dedent()
        w.emit("return bind")
        w.dedent()
        return w.source()


# ---------------------------------------------------------------------------
# compile + cache
# ---------------------------------------------------------------------------

_FUSED_CACHE = IdentityCache()


def fused_source(lowered: LoweredProgram, checks_enabled: bool,
                 validate: bool, cost: Any) -> str:
    """The generated module text (exposed for tests and debugging)."""
    return _FusedEmitter(lowered, checks_enabled, validate,
                         cost).emit_module()


def _fused_bind(analyzed: Any, lowered: LoweredProgram,
                checks_enabled: bool, validate: bool, cost: Any) -> Any:
    key = (bool(checks_enabled), bool(validate), cost_key(cost))
    per = _FUSED_CACHE.get(analyzed)
    if per is not None and key in per:
        return per[key]
    src = fused_source(lowered, checks_enabled, validate, cost)
    ns: Dict[str, Any] = {}
    exec(compile(src, "<repro-fused>", "exec"), ns)
    bind = ns["make"](_CTX)
    if per is None:
        per = {}
        _FUSED_CACHE.set(analyzed, per)
    per[key] = bind
    return bind


def compile_fused(machine: Any) -> PyProgram:
    """Compile ``machine``'s program for fused execution, or raise
    :class:`CodegenUnsupported` with the reason."""
    analyzed = machine.analyzed
    opts = machine.options
    if getattr(analyzed, "errors", None):
        raise CodegenUnsupported("program has static errors")
    lowered = lower(analyzed)
    if not lowered.fused_ok:
        raise CodegenUnsupported(
            "hazards: " + ", ".join(sorted(lowered.hazards)))
    if _MAIN_KEY not in lowered.units:
        raise CodegenUnsupported("no main block")
    stats = machine.stats
    if not (stats.tracer.null and stats.metrics.null
            and stats.profile.null):
        raise CodegenUnsupported("instrumented run")
    if stats.recorder is not None:
        raise CodegenUnsupported("flight recorder attached")
    if machine.fault_injector is not None:
        raise CodegenUnsupported("fault injection active")
    if opts.sanitize:
        raise CodegenUnsupported("sanitizer active")
    if opts.degrade:
        raise CodegenUnsupported("degrade mode")
    info = analyzed.info
    if "LocalRegion" in info.region_kinds \
            or "SharedRegion" in info.region_kinds:
        raise CodegenUnsupported("regionKind shadows a built-in kind")
    bind = _fused_bind(analyzed, lowered, opts.checks_enabled,
                       opts.validate, machine.cost_model)
    return PyProgram("py-fused", "py-faithful", bind(machine))


def select_program(machine: Any, backend: str) -> PyProgram:
    """Resolve ``--backend`` to a compiled program for this machine.

    ``py`` prefers the fused form and falls back to the faithful
    generator backend; the explicit ``py-fused`` / ``py-faithful``
    names force one form (tests use them).  Raises
    :class:`CodegenUnsupported` when nothing can compile the program —
    the machine then runs the interpreter.
    """
    if backend == "py":
        try:
            return compile_fused(machine)
        except CodegenUnsupported:
            from .codegen_py_faithful import compile_faithful
            return compile_faithful(machine)
    if backend == "py-fused":
        return compile_fused(machine)
    if backend == "py-faithful":
        from .codegen_py_faithful import compile_faithful
        return compile_faithful(machine)
    if backend == "c":
        from .codegen_c import compile_c
        try:
            return compile_c(machine)
        except CodegenUnsupported as exc:
            # chain down the capability ladder; keep the C reason
            # visible (``repro run -v`` surfaces it)
            machine.codegen_fallback = f"c unavailable ({exc})"
            return select_program(machine, "py")
    raise CodegenUnsupported(f"unknown backend {backend!r}")
