"""Metrics registry: counters, gauges, and histograms with labels.

A deliberately small re-implementation of the Prometheus client data
model, sized for the simulator: every instrument lives in a
:class:`MetricsRegistry`, supports optional label sets via
:meth:`Instrument.labels`, and renders to both the Prometheus text
exposition format and a plain JSON-able dict (see
:mod:`repro.obs.exporters`).

Conventions:

* metric names are ``repro_*`` and use base units in the name
  (``_cycles``, ``_bytes``) — the simulated clock has no seconds;
* histograms store non-cumulative per-bucket counts internally and
  cumulate only at export time, so ``observe`` is O(#buckets) worst
  case with a tiny constant;
* ``registry.counter/gauge/histogram`` are get-or-create: calling twice
  with the same name returns the same instrument, so independent
  subsystems (checks, GC, scheduler) can grab handles without plumbing;
* histogram series are **scrape-consistent**: ``observe`` updates sum,
  count, buckets, and exemplar under one per-series lock, and exporters
  read through :meth:`_HistogramChild.snapshot` — a concurrent
  ``/metrics`` scrape can never see a count without its sum (counters
  and gauges are single-field and GIL-atomic, so they need no lock);
* histograms accept **exemplars**: ``observe(value, exemplar=...)``
  remembers the last exemplar string (a trace id, for the serve
  latency histogram) per bucket, rendered OpenMetrics-style by the
  exporter so a p99 bucket points at a concrete retained trace.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: per-metric cap on distinct label sets.  Past it, new label sets fold
#: into one aggregated ``label="<other>"`` series so synthesized
#: thousand-region workloads cannot grow the registry without bound;
#: every folded observation is counted in :data:`LABELS_DROPPED_METRIC`.
DEFAULT_MAX_LABEL_SETS = 1024

#: the label value overflowing series are folded into
OVERFLOW_LABEL_VALUE = "<other>"

#: registry counter tracking observations folded by the cardinality cap
LABELS_DROPPED_METRIC = "repro_metrics_labels_dropped"

#: quantile estimates derived from histogram buckets at export time
QUANTILES = (0.5, 0.95, 0.99)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def quantile_from_counts(bounds: Sequence[float], counts: Sequence[int],
                         total: int, q: float) -> float:
    """Upper-bound estimate of the q-quantile from (non-cumulative)
    bucket counts.  Derived entirely from data the histogram already
    collects — no extra cost on the observe path."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if not total:
        return 0.0
    target = q * total
    running = 0
    for i, c in enumerate(counts):
        running += c
        if running >= target:
            if i < len(bounds):
                return float(bounds[i])
            break
    # overflow bucket: all we know is it exceeds the last bound
    return float(bounds[-1]) if bounds else 0.0


class Instrument:
    """Common base: a named metric family with labeled children."""

    metric_type = "untyped"

    #: distinct label sets allowed before folding (see module docs);
    #: the registry may override per instance
    max_label_sets = DEFAULT_MAX_LABEL_SETS
    #: callback ``(metric_name) -> None`` invoked when an observation is
    #: folded into the overflow series (set by the owning registry)
    _on_drop = None

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._children: Dict[LabelKey, Any] = {}
        self._create_lock = threading.Lock()

    def labels(self, **labels: Any):
        """The child instrument for one label set (created on demand).

        Past :attr:`max_label_sets` distinct sets, further *new* label
        sets share one aggregated child whose every label value is
        ``"<other>"`` — existing series keep updating normally, so the
        cap bounds memory without losing any observation.
        """
        key = _label_key({k: str(v) for k, v in labels.items()})
        child = self._children.get(key)
        if child is None:
            # creation is locked: two handler threads first-touching
            # one label set must share a child, not race one into
            # oblivion along with its counts
            with self._create_lock:
                child = self._children.get(key)
                if child is not None:
                    return child
                if labels and len(self._children) >= self.max_label_sets:
                    okey = _label_key(
                        {k: OVERFLOW_LABEL_VALUE for k in labels})
                    child = self._children.get(okey)
                    if child is None:
                        child = self._make_child()
                        self._children[okey] = child
                    if self._on_drop is not None:
                        self._on_drop(self.name)
                    return child
                child = self._make_child()
                self._children[key] = child
        return child

    def _default(self):
        return self.labels()

    def _make_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def children(self) -> Iterable[Tuple[LabelKey, Any]]:
        if not self._children:
            # a registered-but-never-touched instrument still exports
            # one zero-valued unlabeled series (Prometheus convention)
            self._default()
        return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Counter(Instrument):
    metric_type = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: int = 1) -> None:
        self._default().inc(amount)

    @property
    def value(self):
        return self._default().value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def set_max(self, value) -> None:
        """Watermark update: keep the largest value seen."""
        if value > self.value:
            self.value = value


class Gauge(Instrument):
    metric_type = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value) -> None:
        self._default().set(value)

    def set_max(self, value) -> None:
        self._default().set_max(value)

    @property
    def value(self):
        return self._default().value


#: default histogram buckets for cycle costs (checks, pauses): powers
#: of two up to 64Ki cycles — GC pauses land in the tail buckets
DEFAULT_CYCLE_BUCKETS: Tuple[int, ...] = (
    4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)


class _HistogramChild:
    __slots__ = ("bounds", "counts", "sum", "count", "exemplars",
                 "_lock")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        # one slot per finite bucket plus the +Inf overflow slot
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0
        self.count = 0
        #: last (exemplar_id, value) per bucket, or None
        self.exemplars: List[Optional[Tuple[str, float]]] = (
            [None] * (len(self.bounds) + 1))
        # observe mutates sum, count, and a bucket; without the lock a
        # scrape thread can read a count whose sum is still in flight
        self._lock = threading.Lock()

    def observe(self, value, exemplar: Optional[str] = None) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[i] += 1
                    if exemplar is not None:
                        self.exemplars[i] = (exemplar, value)
                    return
            self.counts[-1] += 1
            if exemplar is not None:
                self.exemplars[-1] = (exemplar, value)

    def snapshot(self) -> Tuple[List[int], Any, int,
                                List[Optional[Tuple[str, float]]]]:
        """A consistent ``(counts, sum, count, exemplars)`` view —
        what every exporter must read instead of the raw fields."""
        with self._lock:
            return (list(self.counts), self.sum, self.count,
                    list(self.exemplars))

    def cumulative(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (ends at count)."""
        counts, _, _, _ = self.snapshot()
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def mean(self) -> float:
        counts, total_sum, total, _ = self.snapshot()
        return total_sum / total if total else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile from bucket counts."""
        counts, _, total, _ = self.snapshot()
        return quantile_from_counts(self.bounds, counts, total, q)


class Histogram(Instrument):
    metric_type = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Sequence[float] = DEFAULT_CYCLE_BUCKETS) -> None:
        super().__init__(name, help_text)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending and "
                             "non-empty")
        self.bounds = tuple(buckets)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value, exemplar: Optional[str] = None) -> None:
        self._default().observe(value, exemplar=exemplar)

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self):
        return self._default().sum

    def quantiles(self, qs: Sequence[float] = QUANTILES
                  ) -> Dict[str, float]:
        """p50/p95/p99-style estimates over *all* label series merged
        (every child shares this family's buckets).  Empty when nothing
        was observed."""
        merged = [0] * (len(self.bounds) + 1)
        total = 0
        for _, child in list(self._children.items()):
            counts, _, count, _ = child.snapshot()
            total += count
            for i, c in enumerate(counts):
                merged[i] += c
        if not total:
            return {}
        return {f"p{round(q * 100):d}": quantile_from_counts(
                    self.bounds, merged, total, q)
                for q in qs}


class MetricsRegistry:
    """All instruments of one simulated run, keyed by metric name."""

    #: False for recording registries; :class:`NullMetricsRegistry`
    #: flips it so hot paths can pre-bind away ``observe`` calls
    null = False

    def __init__(self,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self.max_label_sets = max_label_sets

    def _count_drop(self, name: str) -> None:
        self.counter(
            LABELS_DROPPED_METRIC,
            "observations folded into the '<other>' series by the "
            "per-metric label-cardinality cap").labels(metric=name).inc()

    def _get_or_create(self, cls, name: str, help_text: str,
                       **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric '{name}' already registered as "
                    f"{existing.metric_type}, not {cls.metric_type}")
            return existing
        instrument = cls(name, help_text, **kwargs)
        if name == LABELS_DROPPED_METRIC:
            # the drop counter itself is exempt: its cardinality is
            # bounded by the number of metric names, and capping it
            # would recurse through its own _on_drop
            instrument.max_label_sets = float("inf")
        else:
            instrument.max_label_sets = self.max_label_sets
            instrument._on_drop = self._count_drop
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_CYCLE_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def instruments(self) -> List[Instrument]:
        return [self._instruments[name]
                for name in sorted(self._instruments)]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot (used by tests and ``--stats-json``)."""
        out: Dict[str, Any] = {}
        for inst in self.instruments():
            series = []
            for key, child in inst.children():
                labels = dict(key)
                if isinstance(child, _HistogramChild):
                    counts, total_sum, total, _ = child.snapshot()
                    cumulative, running = [], 0
                    for c in counts:
                        running += c
                        cumulative.append(running)
                    series.append({"labels": labels, "sum": total_sum,
                                   "count": total,
                                   "buckets": dict(zip(
                                       [str(b) for b in child.bounds]
                                       + ["+Inf"], cumulative))})
                else:
                    series.append({"labels": labels,
                                   "value": child.value})
            out[inst.name] = {"type": inst.metric_type,
                              "help": inst.help_text, "series": series}
        return out


class NullInstrument:
    """Accepts the full Counter/Gauge/Histogram surface and does
    nothing.  One shared instance backs every metric of a
    :class:`NullMetricsRegistry`."""

    __slots__ = ()

    metric_type = "null"
    name = "<null>"
    help_text = ""

    def labels(self, **labels: Any) -> "NullInstrument":
        return self

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass

    def observe(self, value, exemplar: Optional[str] = None) -> None:
        pass

    def children(self):
        return ()

    @property
    def value(self) -> int:
        return 0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> int:
        return 0

    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs=QUANTILES) -> Dict[str, float]:
        return {}


_NULL_INSTRUMENT = NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """A registry whose instruments all discard their observations.

    Used by ``RunOptions(instrument=False)`` runs (the wall-clock
    benchmark path): subsystems still grab counter/gauge/histogram
    handles without caring, but nothing is recorded and nothing is
    exported.  ``null`` is True so hot loops can skip ``observe`` calls
    entirely instead of bouncing off the no-op methods.
    """

    null = True

    def counter(self, name: str, help_text: str = "") -> NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help_text: str = "") -> NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_CYCLE_BUCKETS
                  ) -> NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def instruments(self) -> List[Instrument]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {}
