"""Post-mortem analysis of flight-recorder dumps (``repro inspect``).

Takes the (header, records) pair produced by
:func:`repro.obs.flightrec.load_flight` and reconstructs what the run
did, without re-running it:

* **region lifetimes** — created/entered/flushed/destroyed cycles and a
  live-byte *watermark curve* per memory area, rebuilt from ``alloc`` /
  ``region-flushed`` / ``region-destroyed`` / ``gc`` events;
* **leak suspects** — long-lived regions whose live bytes grew
  monotonically and were never flushed or destroyed inside the recorded
  window: exactly the failure mode the paper's subregions (Section 2.2)
  exist to prevent;
* **portal contention** — per-portal read/write counts and the set of
  threads touching each, flagging multi-thread portals;
* **per-thread stall attribution** — recovery-backoff cycles charged to
  each thread plus GC pauses overlapping its lifetime;
* the **check-elimination ledger** — checks performed vs checks elided
  and the cycles each cost/saved (the Figure 12 reproduction).  The
  ledger is computed from the recorder's aggregate ``check_totals`` (so
  it is exact even when the ring evicted records) and cross-checked
  against the ``Stats.summary()`` embedded in the dump header;
* the **fault join** — given the chaos plane's JSONL schedule, maps
  each injected fault to the recovery (or crash) events it caused.

Reports render as text (:meth:`InspectReport.format`), JSON
(:meth:`InspectReport.to_dict`), and a self-contained HTML page with
inline SVG watermark sparklines (:meth:`InspectReport.to_html`).
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .flightrec import FlightRecord

#: kinds that count as "the runtime reacted to a fault" for the join
_RECOVERY_KINDS = ("recovery", "vt-spill", "policy")
_CRASH_KINDS = ("thread-aborted",)

#: watermark curves are downsampled to at most this many points
MAX_CURVE_POINTS = 200


# ---------------------------------------------------------------------------
# per-region lifetime + watermark reconstruction
# ---------------------------------------------------------------------------

@dataclass
class RegionLife:
    """One region's reconstructed lifetime."""

    name: str
    policy: str = "?"
    kind: str = "?"
    created_cycle: Optional[int] = None
    destroyed_cycle: Optional[int] = None
    enters: int = 0
    flushes: int = 0
    allocations: int = 0
    alloc_bytes: int = 0
    live_bytes: int = 0
    peak_bytes: int = 0
    #: (cycle, live-bytes) watermark curve, chronological
    curve: List[Tuple[int, int]] = field(default_factory=list)
    first_cycle: int = 0
    last_cycle: int = 0
    #: False once live bytes ever decreased (flush/destroy/GC)
    monotone: bool = True
    leak_suspect: bool = False
    leak_reasons: List[str] = field(default_factory=list)

    def _touch(self, cycle: int) -> None:
        if not self.curve and self.created_cycle is None:
            self.first_cycle = cycle
        self.last_cycle = max(self.last_cycle, cycle)

    def _point(self, cycle: int) -> None:
        self.curve.append((cycle, self.live_bytes))
        self.last_cycle = max(self.last_cycle, cycle)

    def lifetime(self) -> int:
        start = (self.created_cycle if self.created_cycle is not None
                 else self.first_cycle)
        return max(0, self.last_cycle - start)

    def sampled_curve(self, limit: int = MAX_CURVE_POINTS
                      ) -> List[Tuple[int, int]]:
        curve = self.curve
        if len(curve) <= limit:
            return list(curve)
        step = len(curve) / float(limit - 1)
        picked = [curve[min(len(curve) - 1, int(i * step))]
                  for i in range(limit - 1)]
        picked.append(curve[-1])
        return picked

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "policy": self.policy, "kind": self.kind,
            "created_cycle": self.created_cycle,
            "destroyed_cycle": self.destroyed_cycle,
            "enters": self.enters, "flushes": self.flushes,
            "allocations": self.allocations,
            "alloc_bytes": self.alloc_bytes,
            "live_bytes": self.live_bytes, "peak_bytes": self.peak_bytes,
            "lifetime": self.lifetime(),
            "monotone": self.monotone,
            "leak_suspect": self.leak_suspect,
            "leak_reasons": list(self.leak_reasons),
            "curve": self.sampled_curve(),
        }


def build_region_lives(records: Sequence[FlightRecord]
                       ) -> Dict[str, RegionLife]:
    lives: Dict[str, RegionLife] = {}

    def get(name: str, cycle: int) -> RegionLife:
        life = lives.get(name)
        if life is None:
            life = lives[name] = RegionLife(name=name, first_cycle=cycle,
                                            last_cycle=cycle)
        return life

    for rec in records:
        kind, attrs = rec.kind, rec.attrs or {}
        if kind == "region-created":
            life = get(rec.subject, rec.cycle)
            life.created_cycle = rec.cycle
            life.policy = attrs.get("policy", life.policy)
            life.kind = attrs.get("kind", life.kind)
            life._point(rec.cycle)
        elif kind == "alloc":
            region = attrs.get("region")
            if region is None:
                continue
            life = get(region, rec.cycle)
            size = int(attrs.get("bytes", 0))
            life.allocations += 1
            life.alloc_bytes += size
            life.live_bytes += size
            life.peak_bytes = max(life.peak_bytes, life.live_bytes)
            life._point(rec.cycle)
        elif kind == "region-flushed":
            life = get(rec.subject, rec.cycle)
            life.flushes += 1
            if life.live_bytes > 0:
                life.monotone = False
            life.live_bytes = 0
            life._point(rec.cycle)
        elif kind == "region-destroyed":
            life = get(rec.subject, rec.cycle)
            life.destroyed_cycle = rec.cycle
            if life.live_bytes > 0:
                life.monotone = False
            life.live_bytes = 0
            life._point(rec.cycle)
        elif kind == "region-enter":
            life = get(rec.subject, rec.cycle)
            life.enters += 1
            life.last_cycle = max(life.last_cycle, rec.cycle)
        elif kind == "region-exit":
            life = get(rec.subject, rec.cycle)
            life.last_cycle = max(life.last_cycle, rec.cycle)
        elif kind == "gc":
            life = get("heap", rec.cycle)
            heap_bytes = int(attrs.get("heap_bytes", life.live_bytes))
            if heap_bytes < life.live_bytes:
                life.monotone = False
            life.live_bytes = heap_bytes
            life.peak_bytes = max(life.peak_bytes, heap_bytes)
            life._point(rec.cycle)
    return lives


def flag_leak_suspects(lives: Dict[str, RegionLife], horizon: int,
                       min_allocations: int = 3,
                       lifetime_fraction: float = 0.25) -> List[RegionLife]:
    """Mark and return the leak suspects among ``lives``.

    A suspect is a non-heap region that, inside the recorded window,
    (a) was never flushed or destroyed, (b) grew monotonically to a
    nonzero live size over ``min_allocations``+ allocations, and
    (c) lived at least ``lifetime_fraction`` of the run — i.e. a
    long-lived/shared region that only ever gets bigger, which is the
    unbounded-growth mode subregion flushing exists to prevent.
    """
    suspects: List[RegionLife] = []
    for life in lives.values():
        if life.name == "heap":
            continue  # the collector owns heap growth
        reasons: List[str] = []
        if life.destroyed_cycle is not None or life.flushes:
            continue
        if life.allocations < min_allocations:
            continue
        if not life.monotone or life.live_bytes <= 0:
            continue
        if horizon > 0 and life.lifetime() < lifetime_fraction * horizon:
            continue
        reasons.append(f"never flushed or destroyed in window")
        reasons.append(
            f"monotone growth to {life.live_bytes} live bytes over "
            f"{life.allocations} allocations")
        reasons.append(
            f"lived {life.lifetime()} of {horizon} recorded cycles")
        life.leak_suspect = True
        life.leak_reasons = reasons
        suspects.append(life)
    suspects.sort(key=lambda l: -l.live_bytes)
    return suspects


# ---------------------------------------------------------------------------
# portals and threads
# ---------------------------------------------------------------------------

@dataclass
class PortalStat:
    subject: str               # "<region>.<field>"
    reads: int = 0
    writes: int = 0
    threads: List[str] = field(default_factory=list)
    first_cycle: int = 0
    last_cycle: int = 0

    @property
    def contended(self) -> bool:
        return len(self.threads) > 1

    def to_dict(self) -> Dict[str, Any]:
        return {"portal": self.subject, "reads": self.reads,
                "writes": self.writes, "threads": list(self.threads),
                "contended": self.contended,
                "first_cycle": self.first_cycle,
                "last_cycle": self.last_cycle}


def build_portal_stats(records: Sequence[FlightRecord]
                       ) -> Dict[str, PortalStat]:
    portals: Dict[str, PortalStat] = {}
    for rec in records:
        if rec.kind not in ("portal-read", "portal-write"):
            continue
        stat = portals.get(rec.subject)
        if stat is None:
            stat = portals[rec.subject] = PortalStat(
                subject=rec.subject, first_cycle=rec.cycle)
        if rec.kind == "portal-read":
            stat.reads += 1
        else:
            stat.writes += 1
        if rec.thread not in stat.threads:
            stat.threads.append(rec.thread)
        stat.last_cycle = rec.cycle
    return portals


@dataclass
class ThreadStat:
    name: str
    spawned_cycle: Optional[int] = None
    end_cycle: Optional[int] = None
    status: str = "running"    # running | finished | aborted
    realtime: bool = False
    error: Optional[str] = None
    events: int = 0
    cycles: Optional[int] = None
    backoff_cycles: int = 0    # recovery-retry stall
    gc_stall_cycles: int = 0   # GC pauses overlapping the lifetime

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "spawned_cycle": self.spawned_cycle,
                "end_cycle": self.end_cycle, "status": self.status,
                "realtime": self.realtime, "error": self.error,
                "events": self.events, "cycles": self.cycles,
                "backoff_cycles": self.backoff_cycles,
                "gc_stall_cycles": self.gc_stall_cycles}


def build_thread_stats(records: Sequence[FlightRecord], horizon: int
                       ) -> Dict[str, ThreadStat]:
    threads: Dict[str, ThreadStat] = {}

    def get(name: str) -> ThreadStat:
        stat = threads.get(name)
        if stat is None:
            stat = threads[name] = ThreadStat(name=name)
        return stat

    gc_pauses: List[Tuple[int, int]] = []   # (cycle, pause)
    for rec in records:
        attrs = rec.attrs or {}
        if rec.kind == "thread-spawned":
            stat = get(rec.subject)
            stat.spawned_cycle = rec.cycle
            stat.realtime = bool(attrs.get("realtime", False))
        elif rec.kind == "thread-finished":
            stat = get(rec.subject)
            stat.end_cycle = rec.cycle
            if stat.status == "running":
                stat.status = "finished"
            stat.cycles = attrs.get("cycles", stat.cycles)
        elif rec.kind == "thread-aborted":
            stat = get(rec.subject)
            stat.end_cycle = rec.cycle
            stat.status = "aborted"
            stat.error = attrs.get("error")
        elif rec.kind == "recovery":
            get(rec.thread).backoff_cycles += int(attrs.get("backoff", 0))
        elif rec.kind == "gc":
            gc_pauses.append((rec.cycle, int(attrs.get("pause", 0))))
        if not rec.thread.startswith("<"):
            get(rec.thread).events += 1
    # stall attribution: a GC pause stops the world, so charge it to
    # every thread alive at that cycle
    for cycle, pause in gc_pauses:
        for stat in threads.values():
            start = stat.spawned_cycle or 0
            end = stat.end_cycle if stat.end_cycle is not None else horizon
            if start <= cycle <= end:
                stat.gc_stall_cycles += pause
    return threads


# ---------------------------------------------------------------------------
# the check-elimination ledger (Figure 12)
# ---------------------------------------------------------------------------

def build_ledger(header: Dict[str, Any]) -> Dict[str, Any]:
    """The ledger for one dump, from the aggregate ``check_totals``."""
    totals = header.get("check_totals") or {}

    def pair(kind: str) -> Tuple[int, int]:
        count, cycles = totals.get(kind, (0, 0))
        return int(count), int(cycles)

    pa, ca = pair("check-assign")
    pr, cr = pair("check-read")
    ea, sa = pair("check-elide-assign")
    er, sr = pair("check-elide-read")
    meta = header.get("meta") or {}
    summary = meta.get("summary") or {}
    return {
        "mode": meta.get("mode"),
        "performed": {"assign": pa, "read": pr, "total": pa + pr},
        "check_cycles": {"assign": ca, "read": cr, "total": ca + cr},
        "elided": {"assign": ea, "read": er, "total": ea + er},
        "cycles_saved": {"assign": sa, "read": sr, "total": sa + sr},
        "run_cycles": summary.get("cycles"),
    }


def ledger_mismatches(header: Dict[str, Any]) -> List[str]:
    """Cross-check the ledger against the ``Stats.summary()`` embedded
    in the dump header.  Any mismatch means the recorder missed or
    double-counted a check — a bug, not a report."""
    summary = (header.get("meta") or {}).get("summary")
    if not summary:
        return []
    ledger = build_ledger(header)
    problems: List[str] = []
    checks = [
        ("assignment_checks", ledger["performed"]["assign"]),
        ("read_checks", ledger["performed"]["read"]),
        ("check_cycles", ledger["check_cycles"]["total"]),
    ]
    for key, got in checks:
        want = summary.get(key)
        if want is not None and int(want) != got:
            problems.append(
                f"ledger/summary mismatch: {key} — flight record says "
                f"{got}, Stats.summary() says {want}")
    return problems


def combine_ledgers(primary: Dict[str, Any],
                    secondary: Dict[str, Any]) -> Dict[str, Any]:
    """Merge a dynamic-mode and a static-mode ledger into the Figure 12
    comparison.  Which dump is which is inferred from the check counts
    (``meta.mode`` wins when present)."""

    def looks_dynamic(ledger: Dict[str, Any]) -> bool:
        mode = ledger.get("mode")
        if mode is not None:
            return str(mode).startswith("dynamic")
        return ledger["performed"]["total"] >= ledger["elided"]["total"]

    if looks_dynamic(primary) and not looks_dynamic(secondary):
        dynamic, static = primary, secondary
    elif looks_dynamic(secondary) and not looks_dynamic(primary):
        dynamic, static = secondary, primary
    else:
        dynamic, static = primary, secondary
    out: Dict[str, Any] = {
        "dynamic": dynamic,
        "static": static,
        "checks_performed": dynamic["performed"]["total"],
        "checks_elided": static["elided"]["total"],
        "check_cycles": dynamic["check_cycles"]["total"],
        "cycles_saved": static["cycles_saved"]["total"],
    }
    dyn_cycles, sta_cycles = dynamic.get("run_cycles"), static.get(
        "run_cycles")
    if dyn_cycles and sta_cycles:
        out["dynamic_run_cycles"] = dyn_cycles
        out["static_run_cycles"] = sta_cycles
        out["overhead_ratio"] = dyn_cycles / float(sta_cycles)
    return out


# ---------------------------------------------------------------------------
# fault join (chaos schedule <-> flight record)
# ---------------------------------------------------------------------------

def join_faults(records: Sequence[FlightRecord],
                schedule: Sequence[Any]) -> List[Dict[str, Any]]:
    """Map each fault of a chaos schedule to the flight events it
    caused.  ``schedule`` items need ``site``/``seq``/``detail``
    attributes (``repro.rtsj.faults.FaultRecord``) or the equivalent
    dict keys.

    Faults are matched to ``fault-injected`` flight records by
    ``(site, seq)``; the *reaction* is the first subsequent record whose
    kind is a recovery (``recovery``/``vt-spill``/``policy``) or a crash
    (``thread-aborted``).  Runs are deterministic and reactions are
    recorded immediately after the injection point, so ordinal matching
    is exact.
    """
    injected: Dict[Tuple[str, int], FlightRecord] = {}
    by_id = sorted(records, key=lambda r: r.id)
    for rec in by_id:
        if rec.kind == "fault-injected":
            attrs = rec.attrs or {}
            key = (str(attrs.get("site", rec.subject)),
                   int(attrs.get("seq", -1)))
            injected.setdefault(key, rec)

    def fault_fields(item: Any) -> Tuple[str, int, str]:
        if isinstance(item, dict):
            return (str(item.get("site")), int(item.get("seq", -1)),
                    str(item.get("detail", "")))
        return (str(getattr(item, "site")), int(getattr(item, "seq", -1)),
                str(getattr(item, "detail", "")))

    joins: List[Dict[str, Any]] = []
    for item in schedule:
        site, seq, detail = fault_fields(item)
        event = injected.get((site, seq))
        entry: Dict[str, Any] = {"site": site, "seq": seq,
                                 "detail": detail}
        if event is None:
            entry["matched"] = False
            entry["outcome"] = "not-in-window"
            joins.append(entry)
            continue
        entry["matched"] = True
        entry["event_id"] = event.id
        entry["cycle"] = event.cycle
        outcome, outcome_id = "unobserved", None
        for rec in by_id:
            if rec.id <= event.id:
                continue
            if rec.kind in _RECOVERY_KINDS:
                outcome, outcome_id = f"recovered:{rec.kind}", rec.id
                break
            if rec.kind in _CRASH_KINDS:
                outcome, outcome_id = f"crashed:{rec.subject}", rec.id
                break
        entry["outcome"] = outcome
        if outcome_id is not None:
            entry["outcome_event_id"] = outcome_id
        joins.append(entry)
    return joins


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------

@dataclass
class InspectReport:
    header: Dict[str, Any]
    regions: Dict[str, RegionLife]
    suspects: List[RegionLife]
    portals: Dict[str, PortalStat]
    threads: Dict[str, ThreadStat]
    ledger: Dict[str, Any]
    horizon: int
    record_count: int
    mismatches: List[str] = field(default_factory=list)
    figure12: Optional[Dict[str, Any]] = None
    fault_join: Optional[List[Dict[str, Any]]] = None

    # -- JSON ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        meta = self.header.get("meta") or {}
        out: Dict[str, Any] = {
            "schema": self.header.get("schema"),
            "meta": meta,
            "horizon_cycles": self.horizon,
            "records": self.record_count,
            "dropped": self.header.get("dropped", 0),
            "capacity": self.header.get("capacity"),
            "kind_counts": self.header.get("kind_counts", {}),
            "regions": [life.to_dict()
                        for life in self._regions_by_peak()],
            "leak_suspects": [life.name for life in self.suspects],
            "portals": [p.to_dict() for p in self.portals.values()],
            "threads": [t.to_dict() for t in self.threads.values()],
            "ledger": self.ledger,
            "ledger_mismatches": list(self.mismatches),
        }
        if self.figure12 is not None:
            out["figure12"] = self.figure12
        if self.fault_join is not None:
            out["fault_join"] = self.fault_join
        return out

    def _regions_by_peak(self) -> List[RegionLife]:
        return sorted(self.regions.values(),
                      key=lambda l: (-l.peak_bytes, l.name))

    # -- text ----------------------------------------------------------

    def format_ledger(self) -> str:
        led = self.ledger
        lines = ["check-elimination ledger"
                 + (f" (mode: {led['mode']})" if led.get("mode") else "")]
        lines.append(f"  checks performed : "
                     f"{led['performed']['total']:>8} "
                     f"(assign {led['performed']['assign']}, "
                     f"read {led['performed']['read']})")
        lines.append(f"  check cycles     : "
                     f"{led['check_cycles']['total']:>8}")
        lines.append(f"  checks elided    : "
                     f"{led['elided']['total']:>8} "
                     f"(assign {led['elided']['assign']}, "
                     f"read {led['elided']['read']})")
        lines.append(f"  cycles saved     : "
                     f"{led['cycles_saved']['total']:>8}")
        fig = self.figure12
        if fig:
            lines.append("figure-12 comparison (dynamic vs static)")
            lines.append(f"  dynamic: {fig['checks_performed']} checks, "
                         f"{fig['check_cycles']} check cycles")
            lines.append(f"  static : {fig['checks_elided']} elided, "
                         f"{fig['cycles_saved']} cycles saved")
            if "overhead_ratio" in fig:
                lines.append(
                    f"  run cycles {fig['dynamic_run_cycles']} vs "
                    f"{fig['static_run_cycles']}  "
                    f"(overhead x{fig['overhead_ratio']:.3f})")
        return "\n".join(lines)

    def format(self) -> str:
        meta = self.header.get("meta") or {}
        lines: List[str] = []
        title = meta.get("program") or "<run>"
        lines.append(f"flight record: {title}")
        lines.append(
            f"  {self.record_count} records in window "
            f"({self.header.get('dropped', 0)} dropped, capacity "
            f"{self.header.get('capacity')}), horizon "
            f"{self.horizon} cycles")
        if meta.get("status"):
            lines.append(f"  run status: {meta['status']}"
                         + (f" ({meta.get('error')})"
                            if meta.get("error") else ""))
        lines.append("")
        lines.append(self.format_ledger())
        lines.append("")
        lines.append("regions (by peak live bytes)")
        lines.append(f"  {'region':<18} {'policy':<7} {'peak':>9} "
                     f"{'live':>9} {'allocs':>7} {'flushes':>7} "
                     f"{'lifetime':>9}  fate")
        for life in self._regions_by_peak()[:20]:
            fate = ("destroyed" if life.destroyed_cycle is not None
                    else "live-at-end")
            if life.leak_suspect:
                fate = "LEAK SUSPECT"
            lines.append(
                f"  {life.name:<18} {life.policy:<7} "
                f"{life.peak_bytes:>9} {life.live_bytes:>9} "
                f"{life.allocations:>7} {life.flushes:>7} "
                f"{life.lifetime():>9}  {fate}")
        if self.suspects:
            lines.append("")
            lines.append("leak suspects")
            for life in self.suspects:
                lines.append(f"  {life.name}:")
                for reason in life.leak_reasons:
                    lines.append(f"    - {reason}")
        if self.portals:
            lines.append("")
            lines.append("portals")
            for stat in sorted(self.portals.values(),
                               key=lambda p: -(p.reads + p.writes)):
                mark = "  CONTENDED" if stat.contended else ""
                lines.append(
                    f"  {stat.subject:<24} reads {stat.reads:>5}  "
                    f"writes {stat.writes:>5}  threads "
                    f"{len(stat.threads)}{mark}")
        if self.threads:
            lines.append("")
            lines.append("threads (stall attribution)")
            for stat in self.threads.values():
                stall = stat.backoff_cycles + stat.gc_stall_cycles
                lines.append(
                    f"  {stat.name:<16} {stat.status:<9} "
                    f"events {stat.events:>6}  backoff "
                    f"{stat.backoff_cycles:>7}  gc-stall "
                    f"{stat.gc_stall_cycles:>7}  total-stall {stall:>7}"
                    + (f"  [{stat.error}]" if stat.error else ""))
        if self.fault_join is not None:
            lines.append("")
            lines.append("injected faults (schedule join)")
            for entry in self.fault_join:
                lines.append(
                    f"  {entry['site']}#{entry['seq']:<4} "
                    f"-> {entry['outcome']}"
                    + (f" @cycle {entry['cycle']}"
                       if entry.get("matched") else ""))
        if self.mismatches:
            lines.append("")
            lines.append("LEDGER MISMATCHES")
            for problem in self.mismatches:
                lines.append(f"  ! {problem}")
        return "\n".join(lines)

    # -- HTML ----------------------------------------------------------

    def to_html(self) -> str:
        esc = _html.escape
        meta = self.header.get("meta") or {}
        parts: List[str] = []
        parts.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
        parts.append(f"<title>repro inspect — "
                     f"{esc(str(meta.get('program') or 'run'))}</title>")
        parts.append(
            "<style>body{font-family:ui-monospace,monospace;margin:2em;"
            "background:#fafafa;color:#222}table{border-collapse:collapse;"
            "margin:1em 0}td,th{border:1px solid #ccc;padding:4px 10px;"
            "text-align:right}th{background:#eee}td.l,th.l{text-align:left}"
            "tr.leak{background:#ffe3e3}h2{border-bottom:2px solid #ddd}"
            ".ok{color:#2a7}.bad{color:#c22;font-weight:bold}"
            "svg{background:#fff;border:1px solid #ddd}</style></head><body>")
        parts.append(f"<h1>Flight record: "
                     f"{esc(str(meta.get('program') or '&lt;run&gt;'))}</h1>")
        parts.append(
            f"<p>{self.record_count} records in window "
            f"({self.header.get('dropped', 0)} dropped, capacity "
            f"{self.header.get('capacity')}); horizon {self.horizon} "
            f"cycles; mode "
            f"{esc(str(meta.get('mode') or '?'))}.</p>")
        # ledger
        led = self.ledger
        parts.append("<h2>Check-elimination ledger</h2><table>")
        parts.append("<tr><th class='l'></th><th>assign</th><th>read</th>"
                     "<th>total</th></tr>")
        for label, key in (("checks performed", "performed"),
                           ("check cycles", "check_cycles"),
                           ("checks elided", "elided"),
                           ("cycles saved", "cycles_saved")):
            row = led[key]
            parts.append(f"<tr><td class='l'>{label}</td>"
                         f"<td>{row['assign']}</td><td>{row['read']}</td>"
                         f"<td>{row['total']}</td></tr>")
        parts.append("</table>")
        fig = self.figure12
        if fig and "overhead_ratio" in fig:
            parts.append(
                f"<p>Figure 12: dynamic run "
                f"{fig['dynamic_run_cycles']} cycles vs static "
                f"{fig['static_run_cycles']} — overhead "
                f"<b>x{fig['overhead_ratio']:.3f}</b>.</p>")
        if self.mismatches:
            parts.append("<p class='bad'>LEDGER MISMATCHES: "
                         + "; ".join(esc(m) for m in self.mismatches)
                         + "</p>")
        # regions
        parts.append("<h2>Regions</h2><table>")
        parts.append("<tr><th class='l'>region</th><th>policy</th>"
                     "<th>peak</th><th>live</th><th>allocs</th>"
                     "<th>flushes</th><th>lifetime</th>"
                     "<th class='l'>watermark</th><th class='l'>fate</th>"
                     "</tr>")
        for life in self._regions_by_peak()[:30]:
            cls = " class='leak'" if life.leak_suspect else ""
            fate = ("LEAK SUSPECT" if life.leak_suspect else
                    "destroyed" if life.destroyed_cycle is not None
                    else "live-at-end")
            parts.append(
                f"<tr{cls}><td class='l'>{esc(life.name)}</td>"
                f"<td>{esc(life.policy)}</td><td>{life.peak_bytes}</td>"
                f"<td>{life.live_bytes}</td><td>{life.allocations}</td>"
                f"<td>{life.flushes}</td><td>{life.lifetime()}</td>"
                f"<td class='l'>{self._sparkline(life)}</td>"
                f"<td class='l'>{fate}</td></tr>")
        parts.append("</table>")
        # portals
        if self.portals:
            parts.append("<h2>Portals</h2><table>")
            parts.append("<tr><th class='l'>portal</th><th>reads</th>"
                         "<th>writes</th><th>threads</th>"
                         "<th class='l'>contended</th></tr>")
            for stat in sorted(self.portals.values(),
                               key=lambda p: -(p.reads + p.writes)):
                mark = ("<span class='bad'>yes</span>" if stat.contended
                        else "<span class='ok'>no</span>")
                parts.append(
                    f"<tr><td class='l'>{esc(stat.subject)}</td>"
                    f"<td>{stat.reads}</td><td>{stat.writes}</td>"
                    f"<td>{len(stat.threads)}</td>"
                    f"<td class='l'>{mark}</td></tr>")
            parts.append("</table>")
        # threads
        if self.threads:
            parts.append("<h2>Threads</h2><table>")
            parts.append("<tr><th class='l'>thread</th>"
                         "<th class='l'>status</th><th>events</th>"
                         "<th>backoff</th><th>gc&nbsp;stall</th></tr>")
            for stat in self.threads.values():
                cls = (" class='bad'" if stat.status == "aborted" else "")
                parts.append(
                    f"<tr><td class='l'>{esc(stat.name)}</td>"
                    f"<td class='l'{cls}>{esc(stat.status)}</td>"
                    f"<td>{stat.events}</td>"
                    f"<td>{stat.backoff_cycles}</td>"
                    f"<td>{stat.gc_stall_cycles}</td></tr>")
            parts.append("</table>")
        # faults
        if self.fault_join is not None:
            parts.append("<h2>Injected faults</h2><table>")
            parts.append("<tr><th class='l'>fault</th><th>cycle</th>"
                         "<th class='l'>outcome</th></tr>")
            for entry in self.fault_join:
                parts.append(
                    f"<tr><td class='l'>{esc(entry['site'])}"
                    f"#{entry['seq']}</td>"
                    f"<td>{entry.get('cycle', '—')}</td>"
                    f"<td class='l'>{esc(entry['outcome'])}</td></tr>")
            parts.append("</table>")
        parts.append("</body></html>")
        return "".join(parts)

    def _sparkline(self, life: RegionLife, width: int = 160,
                   height: int = 28) -> str:
        points = life.sampled_curve(80)
        if len(points) < 2:
            return ""
        x0 = points[0][0]
        x_span = max(1, points[-1][0] - x0)
        y_max = max(1, max(y for _, y in points))
        coords = []
        for cycle, value in points:
            x = (cycle - x0) * (width - 2) / float(x_span) + 1
            y = height - 1 - value * (height - 2) / float(y_max)
            coords.append(f"{x:.1f},{y:.1f}")
        return (f"<svg width='{width}' height='{height}'>"
                f"<polyline fill='none' stroke='#28c' stroke-width='1.2'"
                f" points='{' '.join(coords)}'/></svg>")


def build_report(header: Dict[str, Any],
                 records: Sequence[FlightRecord],
                 schedule: Optional[Sequence[Any]] = None,
                 compare: Optional[Dict[str, Any]] = None
                 ) -> InspectReport:
    """Assemble the full report.  ``compare`` is the *header* of a
    second dump (the other mode) for the Figure 12 comparison;
    ``schedule`` is a list of chaos ``FaultRecord``s to join."""
    meta = header.get("meta") or {}
    summary = meta.get("summary") or {}
    horizon = int(summary.get("cycles") or 0)
    if not horizon and records:
        horizon = records[-1].cycle
    lives = build_region_lives(records)
    suspects = flag_leak_suspects(lives, horizon)
    report = InspectReport(
        header=header,
        regions=lives,
        suspects=suspects,
        portals=build_portal_stats(records),
        threads=build_thread_stats(records, horizon),
        ledger=build_ledger(header),
        horizon=horizon,
        record_count=len(records),
        mismatches=ledger_mismatches(header),
    )
    if compare is not None:
        report.figure12 = combine_ledgers(report.ledger,
                                          build_ledger(compare))
        report.mismatches.extend(
            f"(compare dump) {p}" for p in ledger_mismatches(compare))
    if schedule is not None:
        report.fault_join = join_faults(records, schedule)
    return report


def report_json(report: InspectReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
