"""Exporters: JSON Lines traces and Prometheus text metrics.

Two on-disk formats, both line-oriented and tool-friendly:

* **JSON Lines trace** — one JSON object per :class:`TraceEvent`, in
  emission order (which is simulated-time order).  Consumers rebuild
  span nesting with a per-thread stack over the ``ph`` field
  (``"B"``/``"E"``; ``"i"`` is an instant).  See
  ``docs/OBSERVABILITY.md`` for the schema.
* **Prometheus text exposition** — the ``# HELP`` / ``# TYPE`` /
  sample-line format, suitable for ``promtool check metrics`` or a
  file-based scrape.  Histograms render cumulative ``_bucket`` series
  plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
import re
from typing import IO, Any, Dict, Iterator, Tuple, Union

from .events import Tracer
from .metrics import (MetricsRegistry, QUANTILES, _HistogramChild,
                      quantile_from_counts)


# ---------------------------------------------------------------------------
# JSON Lines traces
# ---------------------------------------------------------------------------

def trace_lines(tracer: Tracer) -> Iterator[str]:
    """The trace as JSON Lines (no trailing newlines)."""
    for event in tracer.records:
        yield json.dumps(event.to_dict(), sort_keys=True)
    if getattr(tracer, "sampled_out", 0):
        yield json.dumps({"kind": "trace-sampled", "ph": "i",
                          "cycle": -1, "thread": "<tracer>",
                          "subject": f"{tracer.sampled_out} detail "
                                     f"events sampled out (1-in-"
                                     f"{tracer.sample})",
                          "attrs": {"sampled_out": tracer.sampled_out,
                                    "sample": tracer.sample}},
                         sort_keys=True)
    if tracer.dropped:
        yield json.dumps({"kind": "trace-truncated", "ph": "i",
                          "cycle": -1, "thread": "<tracer>",
                          "subject": f"{tracer.dropped} events dropped",
                          "attrs": {"dropped": tracer.dropped}},
                         sort_keys=True)


def write_trace(tracer: Tracer, dest: Union[str, IO[str]]) -> int:
    """Write the JSONL trace to a path or open file; returns the number
    of lines written."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as handle:
            return write_trace(tracer, handle)
    n = 0
    for line in trace_lines(tracer):
        dest.write(line + "\n")
        n += 1
    return n


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    # exposition format: label values escape backslash, double-quote,
    # and line feed (backslash first so the others stay single-escaped)
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    # HELP text escapes only backslash and line feed (no quote escaping
    # — HELP is not quoted in the exposition format)
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: dict, extra: dict = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                    for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _format_number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the whole registry in Prometheus text exposition format."""
    lines = []
    for inst in registry.instruments():
        lines.append(f"# HELP {inst.name} {_escape_help(inst.help_text)}")
        lines.append(f"# TYPE {inst.name} {inst.metric_type}")
        for key, child in inst.children():
            labels = dict(key)
            if isinstance(child, _HistogramChild):
                # one consistent snapshot per series: bucket counts,
                # sum, count, and exemplars all from the same instant
                counts, total_sum, total, exemplars = child.snapshot()
                cumulative, running = [], 0
                for c in counts:
                    running += c
                    cumulative.append(running)
                bounds = [str(b) for b in child.bounds] + ["+Inf"]
                for i, (bound, count) in enumerate(zip(bounds,
                                                       cumulative)):
                    suffix = _format_labels(labels, {"le": bound})
                    line = f"{inst.name}_bucket{suffix} {count}"
                    exemplar = exemplars[i]
                    if exemplar is not None:
                        # OpenMetrics-style exemplar: the last trace id
                        # observed into this bucket, so a tail bucket
                        # names a concrete retained trace to pull up
                        ident, value = exemplar
                        line += (f" # {{trace_id=\""
                                 f"{_escape_label_value(str(ident))}"
                                 f"\"}} {_format_number(value)}")
                    lines.append(line)
                if total:
                    # quantile estimates derived from the buckets, in
                    # the summary-type `{quantile="..."}` convention —
                    # no collection cost beyond what the buckets paid
                    for q in QUANTILES:
                        suffix = _format_labels(
                            labels, {"quantile": _format_number(q)})
                        lines.append(
                            f"{inst.name}{suffix} "
                            f"{_format_number(quantile_from_counts(child.bounds, counts, total, q))}")
                lines.append(f"{inst.name}_sum{_format_labels(labels)} "
                             f"{_format_number(total_sum)}")
                lines.append(f"{inst.name}_count{_format_labels(labels)} "
                             f"{total}")
            else:
                lines.append(f"{inst.name}{_format_labels(labels)} "
                             f"{_format_number(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_to_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a ``MetricsRegistry.to_dict()`` snapshot (e.g. the
    ``metrics`` section of a telemetry envelope, after a JSON
    round-trip) back into the Prometheus text exposition format.

    The inverse-direction sibling of :func:`to_prometheus`: the
    ``repro metricsd`` daemon uses it to serve ``/metrics`` for the
    most recent run in the telemetry store.
    """
    lines = []
    for name in sorted(snapshot):
        family = snapshot[name] or {}
        lines.append(
            f"# HELP {name} {_escape_help(str(family.get('help', '')))}")
        lines.append(f"# TYPE {name} {family.get('type', 'untyped')}")
        for series in family.get("series", []):
            labels = series.get("labels") or {}
            if "buckets" in series:
                buckets = series["buckets"]
                finite = sorted((b for b in buckets if b != "+Inf"),
                                key=float)
                for bound in finite + ["+Inf"]:
                    suffix = _format_labels(labels, {"le": bound})
                    lines.append(
                        f"{name}_bucket{suffix} {buckets[bound]}")
                lines.append(f"{name}_sum{_format_labels(labels)} "
                             f"{_format_number(series.get('sum', 0))}")
                lines.append(f"{name}_count{_format_labels(labels)} "
                             f"{series.get('count', 0)}")
            else:
                lines.append(f"{name}{_format_labels(labels)} "
                             f"{_format_number(series.get('value', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(raw: str) -> str:
    return (raw.replace("\\\\", "\x00").replace('\\"', '"')
            .replace("\\n", "\n").replace("\x00", "\\"))


def parse_prometheus(text: str) -> Tuple[Dict[str, str], Dict[str, str],
                                         Dict[Tuple[str, Tuple[Tuple[str,
                                              str], ...]], float]]:
    """Parse the exposition format back into ``(help, types, samples)``.

    ``samples`` maps ``(sample_name, sorted_label_items)`` to the float
    value.  The exact inverse of :func:`to_prometheus` for everything it
    emits; used by the CI scrape-validation job (and anyone else) to
    round-trip a live ``/metrics`` response.  Raises ``ValueError`` on a
    malformed line.
    """
    help_text: Dict[str, str] = {}
    types: Dict[str, str] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, rest = line[len("# HELP "):].partition(" ")
            help_text[name] = (rest.replace("\\n", "\n")
                               .replace("\\\\", "\\"))
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal exposition noise
        if " # {" in line:
            # OpenMetrics-style exemplar suffix on a bucket sample:
            # `name_bucket{le="x"} 7 # {trace_id="..."} 0.0042` — the
            # sample value is everything before the suffix
            line = line[:line.index(" # {")]
        if "{" in line:
            name, _, rest = line.partition("{")
            body, sep, value = rest.rpartition("} ")
            if not sep:
                raise ValueError(f"malformed sample line: {line!r}")
            labels = {key: _unescape_label_value(raw)
                      for key, raw in _LABEL_RE.findall(body)}
        else:
            name, sep, value = line.partition(" ")
            if not sep:
                raise ValueError(f"malformed sample line: {line!r}")
            labels = {}
        try:
            samples[(name, tuple(sorted(labels.items())))] = float(value)
        except ValueError:
            raise ValueError(f"non-numeric sample value in {line!r}")
    return help_text, types, samples


def write_metrics(registry: MetricsRegistry,
                  dest: Union[str, IO[str]]) -> None:
    """Write the Prometheus rendering to a path or open file."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(registry))
    else:
        dest.write(to_prometheus(registry))
