"""Exporters: JSON Lines traces and Prometheus text metrics.

Two on-disk formats, both line-oriented and tool-friendly:

* **JSON Lines trace** — one JSON object per :class:`TraceEvent`, in
  emission order (which is simulated-time order).  Consumers rebuild
  span nesting with a per-thread stack over the ``ph`` field
  (``"B"``/``"E"``; ``"i"`` is an instant).  See
  ``docs/OBSERVABILITY.md`` for the schema.
* **Prometheus text exposition** — the ``# HELP`` / ``# TYPE`` /
  sample-line format, suitable for ``promtool check metrics`` or a
  file-based scrape.  Histograms render cumulative ``_bucket`` series
  plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
from typing import IO, Iterator, Union

from .events import Tracer
from .metrics import MetricsRegistry, _HistogramChild


# ---------------------------------------------------------------------------
# JSON Lines traces
# ---------------------------------------------------------------------------

def trace_lines(tracer: Tracer) -> Iterator[str]:
    """The trace as JSON Lines (no trailing newlines)."""
    for event in tracer.records:
        yield json.dumps(event.to_dict(), sort_keys=True)
    if tracer.dropped:
        yield json.dumps({"kind": "trace-truncated", "ph": "i",
                          "cycle": -1, "thread": "<tracer>",
                          "subject": f"{tracer.dropped} events dropped",
                          "attrs": {"dropped": tracer.dropped}},
                         sort_keys=True)


def write_trace(tracer: Tracer, dest: Union[str, IO[str]]) -> int:
    """Write the JSONL trace to a path or open file; returns the number
    of lines written."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as handle:
            return write_trace(tracer, handle)
    n = 0
    for line in trace_lines(tracer):
        dest.write(line + "\n")
        n += 1
    return n


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    # exposition format: label values escape backslash, double-quote,
    # and line feed (backslash first so the others stay single-escaped)
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    # HELP text escapes only backslash and line feed (no quote escaping
    # — HELP is not quoted in the exposition format)
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: dict, extra: dict = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                    for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _format_number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the whole registry in Prometheus text exposition format."""
    lines = []
    for inst in registry.instruments():
        lines.append(f"# HELP {inst.name} {_escape_help(inst.help_text)}")
        lines.append(f"# TYPE {inst.name} {inst.metric_type}")
        for key, child in inst.children():
            labels = dict(key)
            if isinstance(child, _HistogramChild):
                cumulative = child.cumulative()
                bounds = [str(b) for b in child.bounds] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    suffix = _format_labels(labels, {"le": bound})
                    lines.append(
                        f"{inst.name}_bucket{suffix} {count}")
                lines.append(f"{inst.name}_sum{_format_labels(labels)} "
                             f"{_format_number(child.sum)}")
                lines.append(f"{inst.name}_count{_format_labels(labels)} "
                             f"{child.count}")
            else:
                lines.append(f"{inst.name}{_format_labels(labels)} "
                             f"{_format_number(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry,
                  dest: Union[str, IO[str]]) -> None:
    """Write the Prometheus rendering to a path or open file."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(registry))
    else:
        dest.write(to_prometheus(registry))
