"""The cross-run regression observatory behind ``repro report``.

One run's bench payload answers "is this commit slower than the
committed baseline?".  The observatory answers the longitudinal
question: *how has each benchmark moved across the recorded runs, and
is the latest measurement a statistically defensible regression?*  It
joins three sources:

* the committed baselines (``BENCH_interp.json``,
  ``BENCH_frontend.json``, ``BENCH_codegen.json`` at the repo root) —
  the reference the bench-smoke and codegen-equiv CI jobs already
  guard;
* the telemetry store (:mod:`repro.obs.telemetry`) — every recorded
  ``repro bench`` envelope contributes one point of history per
  benchmark;
* optionally an explicit *current* payload (``repro report
  --current FILE``) — the measurement under judgment; without one the
  newest bench envelope in the store is judged.

Verdicts reuse the bench suites' shared judgments
(:mod:`repro.bench.compare`) with one upgrade: the fractional
regression threshold is **widened by the history's spread** (median
absolute deviation), so a benchmark whose recorded history is noisy
needs a proportionally larger slowdown to page, while a rock-stable
one keeps the tight base threshold.  Determinism breaks (simulated
cycles, checker error counts) stay binary — no amount of history
excuses those.

Renderings: aligned text (``--format text``), the raw report JSON
(``--format json``), and a self-contained HTML page with inline
sparklines (``--format html``).  ``repro report`` exits non-zero when
``report["ok"]`` is false, which is how the report-gate CI job fails a
PR that slowed a benchmark down.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..bench.compare import (DEFAULT_THRESHOLD, check_exact, mad,
                             median, robust_threshold)
from .telemetry import TelemetryStore

#: report schema tag (the ``--format json`` output)
REPORT_SCHEMA = "repro-report/1"

#: default committed-baseline paths per suite, relative to the repo root
BASELINE_FILES = {"interp": "BENCH_interp.json",
                  "frontend": "BENCH_frontend.json",
                  "codegen": "BENCH_codegen.json",
                  "serve": "BENCH_serve.json",
                  "serve_chaos": "BENCH_serve_chaos.json"}

#: history points consulted per benchmark (newest last)
DEFAULT_HISTORY = 50

_OK, _REGRESSION, _BREAK, _MISSING = ("ok", "regression",
                                      "determinism-break", "missing")
_NO_CURRENT, _NO_BASELINE = "no-current", "no-baseline"

#: verdicts that fail the report (and the CI gate)
FAILING_VERDICTS = frozenset((_REGRESSION, _BREAK, _MISSING))


# ---------------------------------------------------------------------------
# flattening payloads into comparable (label -> sample) series
# ---------------------------------------------------------------------------

def _interp_points(payload: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """``benchmark/mode`` -> {wall_s, exact} for an interp payload."""
    points: Dict[str, Dict[str, Any]] = {}
    for name, row in (payload.get("benchmarks") or {}).items():
        for mode in ("dynamic", "static"):
            data = row.get(mode)
            if not data:
                continue
            points[f"{name}/{mode}"] = {
                "wall_s": data.get("wall_s") or 0.0,
                "exact": ("simulated cycles", data.get("cycles")),
            }
    return points


def _frontend_points(payload: Dict[str, Any]
                     ) -> Dict[str, Dict[str, Any]]:
    """``size N`` -> {wall_s, exact} for a frontend payload (cold
    analysis is the guarded quantity, matching ``frontend.compare``)."""
    points: Dict[str, Dict[str, Any]] = {}
    for size, row in (payload.get("sizes") or {}).items():
        points[f"size {size}"] = {
            "wall_s": row.get("cold_s") or 0.0,
            "exact": ("error count", row.get("n_errors")),
        }
    return points


def _codegen_points(payload: Dict[str, Any]
                    ) -> Dict[str, Dict[str, Any]]:
    """``benchmark/mode/backend`` -> {wall_s, exact} for a codegen
    payload.  The interpreter reference row is the interp suite's
    territory; here the backend rows are guarded.  Skipped cells (no
    toolchain, checks-erased) contribute no point."""
    points: Dict[str, Dict[str, Any]] = {}
    for name, row in (payload.get("benchmarks") or {}).items():
        for mode in ("dynamic", "static"):
            for backend, cell in (row.get(mode) or {}).items():
                if backend == "interp" or not isinstance(cell, dict) \
                        or "wall_s" not in cell:
                    continue
                points[f"{name}/{mode}/{backend}"] = {
                    "wall_s": cell.get("wall_s") or 0.0,
                    "exact": ("simulated cycles", cell.get("cycles")),
                }
    return points


def _serve_points(payload: Dict[str, Any]
                  ) -> Dict[str, Dict[str, Any]]:
    """``program/served`` + traffic rows for a serve payload.  The
    per-program rows guard wire-level determinism (served cycles and
    output sha joined into one digest — any drift is a break, never a
    "regression").  Warm throughput is inverted to seconds-per-request
    so the report's higher-wall-is-worse judgment applies; the p99
    tail is the serve suite's own gate's territory."""
    points: Dict[str, Dict[str, Any]] = {}
    for name, row in (payload.get("programs") or {}).items():
        points[f"{name}/served"] = {
            "wall_s": 0.0,
            "exact": ("served cycles/output digest",
                      f"{row.get('cycles')}/{row.get('output_sha256')}"),
        }
    coalesce = payload.get("coalesce") or {}
    if coalesce:
        points["coalesce"] = {
            "wall_s": 0.0,
            "exact": ("analyses per identical burst",
                      coalesce.get("analyses")),
        }
    warm = payload.get("warm") or {}
    req_s = warm.get("req_s") or 0.0
    if req_s:
        points["warm/s-per-req"] = {
            "wall_s": 1.0 / req_s,
            "exact": ("warm request errors", warm.get("errors")),
        }
    return points


def _serve_chaos_points(payload: Dict[str, Any]
                        ) -> Dict[str, Dict[str, Any]]:
    """Resilience-contract rows for a serve-chaos payload.  Every row
    is exact-only: the fault schedule is a pure function of (seed,
    traffic), so per-site counts must match the committed baseline bit
    for bit, and the contract quantities (lost requests, parity
    breaks, replay verdict) must stay at their recorded values.
    Wall-clock and transition counts are host-dependent and never
    judged here."""
    points: Dict[str, Dict[str, Any]] = {}
    for site, count in sorted((payload.get("faults") or {}).items()):
        points[f"faults/{site}"] = {
            "wall_s": 0.0,
            "exact": ("injected fault count", count),
        }
    contract = payload.get("contract") or {}
    points["contract/lost"] = {
        "wall_s": 0.0,
        "exact": ("lost requests", contract.get("lost_requests")),
    }
    points["contract/parity"] = {
        "wall_s": 0.0,
        "exact": ("parity failures", contract.get("parity_failures")),
    }
    points["contract/replay"] = {
        "wall_s": 0.0,
        "exact": ("bit-for-bit replay", payload.get("replay_ok")),
    }
    return points


_FLATTEN = {"interp": _interp_points, "frontend": _frontend_points,
            "codegen": _codegen_points, "serve": _serve_points,
            "serve_chaos": _serve_chaos_points}

#: labels whose absence from the current payload is environmental, not
#: a regression (C rows vanish on hosts without a toolchain)
_TOLERATED_MISSING = {"codegen": lambda label: label.endswith("/c")}


def _bench_envelopes(store: TelemetryStore, suite: str,
                     limit: int) -> List[Dict[str, Any]]:
    """The newest ``limit`` bench payloads for one suite, oldest
    first (so history series read left-to-right in time)."""
    payloads: List[Dict[str, Any]] = []
    for envelope in store.load_recent(limit, kind="bench"):
        bench = envelope.get("bench") or {}
        if bench.get("suite") == suite and bench.get("payload"):
            payloads.append(bench["payload"])
    payloads.reverse()
    return payloads


def _trace_section(store: TelemetryStore) -> Optional[Dict[str, Any]]:
    """A condensed view of the newest recorded ``repro trace`` report
    (kind ``trace``), joined into the observatory for context.  Trace
    analyses are diagnostic, not a gate: nothing here ever contributes
    to ``report["ok"]`` — latency regressions are the bench suites'
    territory; this section says *where* the tail went when they fire."""
    envelopes = store.load_recent(1, kind="trace")
    if not envelopes:
        return None
    envelope = envelopes[0]
    summary = envelope.get("summary") or {}
    percentiles = summary.get("percentiles") or {}
    tail = summary.get("tail") or {}
    section: Dict[str, Any] = {
        "label": envelope.get("label", "trace"),
        "created_at": envelope.get("created_at"),
        "traces": summary.get("traces", 0),
        "problems": len(summary.get("problems") or []),
        "percentiles": percentiles,
        "tail_rows": (tail.get("rows") or [])[:5],
        "tail_queue_ms": tail.get("queue_ms"),
        "tail_compute_ms": tail.get("compute_ms"),
        "exemplars": (summary.get("exemplars") or [])[:3],
    }
    return section


# ---------------------------------------------------------------------------
# report construction
# ---------------------------------------------------------------------------

def _suite_report(suite: str, baseline: Optional[Dict[str, Any]],
                  current: Optional[Dict[str, Any]],
                  history_payloads: List[Dict[str, Any]],
                  threshold: float,
                  strict_missing: bool = True) -> Dict[str, Any]:
    flatten = _FLATTEN[suite]
    base_points = flatten(baseline) if baseline else {}
    cur_points = flatten(current) if current else {}
    history_points = [flatten(p) for p in history_payloads]

    rows: List[Dict[str, Any]] = []
    labels = sorted(set(base_points) | set(cur_points))
    for label in labels:
        base = base_points.get(label)
        cur = cur_points.get(label)
        history = [p[label]["wall_s"] for p in history_points
                   if label in p and p[label]["wall_s"]]
        row: Dict[str, Any] = {
            "label": label,
            "baseline_wall_s": base["wall_s"] if base else None,
            "current_wall_s": cur["wall_s"] if cur else None,
            "history": [round(v, 6) for v in history],
            "history_median": round(median(history), 6),
            "history_mad": round(mad(history), 6),
        }
        effective = robust_threshold(threshold, history)
        row["threshold"] = round(threshold, 4)
        row["effective_threshold"] = round(effective, 4)
        verdict, message = _judge(label, base, cur, effective)
        tolerated = _TOLERATED_MISSING.get(suite)
        if verdict == _MISSING and tolerated is not None \
                and tolerated(label):
            verdict, message = _NO_CURRENT, None
        if verdict == _MISSING and not strict_missing:
            # the judged payload came from the store and may be a
            # deliberate subset run (`bench --only X --telemetry`);
            # only an explicit --current payload must be complete
            verdict, message = _NO_CURRENT, None
        if (base and cur and base["wall_s"] and cur["wall_s"]):
            row["delta_pct"] = round(
                (cur["wall_s"] / base["wall_s"] - 1.0) * 100.0, 1)
        row["verdict"] = verdict
        if message:
            row["message"] = message
        rows.append(row)

    failures = [row["message"] for row in rows
                if row["verdict"] in FAILING_VERDICTS]
    return {
        "baseline": bool(baseline),
        "current": bool(current),
        "history_runs": len(history_payloads),
        "rows": rows,
        "failures": failures,
    }


def _judge(label: str, base: Optional[Dict[str, Any]],
           cur: Optional[Dict[str, Any]],
           effective_threshold: float):
    """One benchmark's verdict: determinism first, then the widened
    wall threshold, mirroring the bench suites' ``compare()`` order."""
    if base is None:
        return _NO_BASELINE, None
    if cur is None:
        return _MISSING, f"{label}: missing from current results"
    quantity, base_exact = base["exact"]
    broke = check_exact(label, quantity, base_exact, cur["exact"][1])
    if broke is not None:
        return _BREAK, broke
    base_wall, cur_wall = base["wall_s"], cur["wall_s"]
    if base_wall and cur_wall \
            and cur_wall > base_wall * (1.0 + effective_threshold):
        slow = (cur_wall / base_wall - 1.0) * 100.0
        return _REGRESSION, (
            f"{label}: wall-clock regression {base_wall:.6f}s -> "
            f"{cur_wall:.6f}s (+{slow:.0f}%, effective threshold "
            f"+{effective_threshold * 100:.0f}%)")
    if not cur_wall:
        # exact-only rows (serve parity digests) carry no timing at
        # all: their exact check passed above, so they are ok, not
        # missing-a-measurement
        return (_OK if not base_wall else _NO_CURRENT), None
    return _OK, None


def build_report(store: Optional[TelemetryStore] = None,
                 baselines: Optional[Dict[str, Dict[str, Any]]] = None,
                 current: Optional[Dict[str, Dict[str, Any]]] = None,
                 history: int = DEFAULT_HISTORY,
                 threshold: float = DEFAULT_THRESHOLD
                 ) -> Dict[str, Any]:
    """Assemble the full observatory report.

    ``baselines`` / ``current`` map suite name (``interp`` /
    ``frontend``) to a bench payload; suites absent from ``current``
    fall back to the newest matching bench envelope in the store.
    """
    store = store if store is not None else TelemetryStore()
    baselines = baselines or {}
    current = current or {}
    suites: Dict[str, Any] = {}
    for suite in sorted(_FLATTEN):
        baseline = baselines.get(suite)
        history_payloads = _bench_envelopes(store, suite, history)
        cur = current.get(suite)
        strict_missing = cur is not None
        if cur is None and history_payloads:
            cur = history_payloads[-1]
            history_payloads = history_payloads[:-1]
        if baseline is None and cur is None:
            continue  # nothing recorded and nothing committed: skip
        suites[suite] = _suite_report(suite, baseline, cur,
                                      history_payloads, threshold,
                                      strict_missing=strict_missing)
    regressions = sum(len(s["failures"]) for s in suites.values())
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "store": store.root,
        "threshold": threshold,
        "suites": suites,
        "regressions": regressions,
        "ok": regressions == 0,
    }
    traces = _trace_section(store)
    if traces is not None:
        report["traces"] = traces
    return report


# ---------------------------------------------------------------------------
# renderings
# ---------------------------------------------------------------------------

def render_text(report: Dict[str, Any]) -> str:
    lines: List[str] = []
    for suite, data in report["suites"].items():
        lines.append(f"== {suite} "
                     f"(history: {data['history_runs']} runs) ==")
        lines.append(f"{'benchmark':<16} {'base s':>10} {'cur s':>10} "
                     f"{'delta':>7} {'thresh':>7} {'n':>3} verdict")
        for row in data["rows"]:
            base = row["baseline_wall_s"]
            cur = row["current_wall_s"]
            delta = row.get("delta_pct")
            lines.append(
                f"{row['label']:<16} "
                + (f"{base:>10.6f}" if base is not None else f"{'-':>10}")
                + " "
                + (f"{cur:>10.6f}" if cur is not None else f"{'-':>10}")
                + " "
                + (f"{delta:>+6.1f}%" if delta is not None
                   else f"{'-':>7}")
                + f" {row['effective_threshold'] * 100:>+6.1f}%"
                + f" {len(row['history']):>3}"
                + f" {row['verdict']}")
        for failure in data["failures"]:
            lines.append(f"  FAIL {failure}")
        lines.append("")
    traces = report.get("traces")
    if traces:
        pct = traces.get("percentiles") or {}
        lines.append(f"== request traces ({traces['label']}: "
                     f"{traces['traces']} retained) ==")
        lines.append(
            "p50/p95/p99: "
            + "/".join(f"{pct.get(k, 0.0) * 1000:.1f}ms"
                       for k in ("p50", "p95", "p99")))
        for row in traces.get("tail_rows") or []:
            lines.append(f"  tail {row['span']:<14} "
                         f"{row['mean_ms']:>8.2f}ms "
                         f"{row['share'] * 100:>5.1f}%")
        if traces.get("problems"):
            lines.append(f"  WARN {traces['problems']} incomplete "
                         f"trace(s) in last analysis")
        lines.append("")
    lines.append(f"regressions: {report['regressions']} "
                 f"({'ok' if report['ok'] else 'FAILING'})")
    return "\n".join(lines)


def render_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _sparkline_svg(values: List[float], width: int = 120,
                   height: int = 24) -> str:
    """A tiny inline SVG polyline of the history series."""
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 2 - (v - lo) / span * (height - 4):.1f}"
        for i, v in enumerate(values))
    return (f'<svg width="{width}" height="{height}">'
            f'<polyline fill="none" stroke="#57f" stroke-width="1.5" '
            f'points="{points}"/></svg>')


_HTML_STYLE = """
body { font: 14px system-ui, sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { padding: 4px 10px; border-bottom: 1px solid #ddd;
         text-align: right; }
th { border-bottom: 2px solid #999; }
td.label, th.label { text-align: left; font-family: monospace; }
td.v-ok { color: #2a7; }
td.v-regression, td.v-determinism-break, td.v-missing {
    color: #c33; font-weight: bold; }
td.v-no-baseline, td.v-no-current { color: #888; }
.fail { color: #c33; font-family: monospace; }
"""


def render_html(report: Dict[str, Any]) -> str:
    parts = ["<!doctype html><html><head><meta charset='utf-8'>",
             "<title>repro report</title>",
             f"<style>{_HTML_STYLE}</style></head><body>",
             "<h1>repro regression observatory</h1>",
             f"<p>store: <code>{report['store']}</code> — "
             f"regressions: <b>{report['regressions']}</b> "
             f"({'ok' if report['ok'] else 'FAILING'})</p>"]
    for suite, data in report["suites"].items():
        parts.append(f"<h2>{suite}</h2>")
        parts.append(f"<p>history: {data['history_runs']} recorded "
                     f"runs</p>")
        parts.append("<table><tr><th class='label'>benchmark</th>"
                     "<th>baseline s</th><th>current s</th>"
                     "<th>delta</th><th>threshold</th>"
                     "<th>history</th><th>verdict</th></tr>")
        for row in data["rows"]:
            base = row["baseline_wall_s"]
            cur = row["current_wall_s"]
            delta = row.get("delta_pct")
            parts.append(
                "<tr>"
                + f"<td class='label'>{row['label']}</td>"
                + (f"<td>{base:.6f}</td>" if base is not None
                   else "<td>-</td>")
                + (f"<td>{cur:.6f}</td>" if cur is not None
                   else "<td>-</td>")
                + (f"<td>{delta:+.1f}%</td>" if delta is not None
                   else "<td>-</td>")
                + f"<td>+{row['effective_threshold'] * 100:.1f}%</td>"
                + f"<td>{_sparkline_svg(row['history'])}</td>"
                + f"<td class='v-{row['verdict']}'>{row['verdict']}"
                  f"</td></tr>")
        parts.append("</table>")
        for failure in data["failures"]:
            parts.append(f"<p class='fail'>FAIL {failure}</p>")
    traces = report.get("traces")
    if traces:
        pct = traces.get("percentiles") or {}
        parts.append("<h2>request traces</h2>")
        parts.append(
            f"<p>{traces['label']}: {traces['traces']} retained — "
            f"p50/p95/p99 "
            + "/".join(f"{pct.get(k, 0.0) * 1000:.1f}ms"
                       for k in ("p50", "p95", "p99"))
            + "</p>")
        rows = traces.get("tail_rows") or []
        if rows:
            parts.append("<table><tr><th class='label'>span</th>"
                         "<th>tail mean</th><th>share</th></tr>")
            for row in rows:
                parts.append(
                    f"<tr><td class='label'>{row['span']}</td>"
                    f"<td>{row['mean_ms']:.2f}ms</td>"
                    f"<td>{row['share'] * 100:.1f}%</td></tr>")
            parts.append("</table>")
        if traces.get("problems"):
            parts.append(f"<p class='fail'>WARN {traces['problems']} "
                         f"incomplete trace(s)</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


RENDERERS = {"text": render_text, "json": render_json,
             "html": render_html}
