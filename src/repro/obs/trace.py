"""Request tracing: span trees, tail-based sampling, critical paths.

The single-run observability stack (tracer, flight recorder) explains
*one* execution.  This module explains *requests*: a ``repro serve``
request crosses three processes — the client, the HTTP frontend (and
its pool dispatcher threads), and a forked warm worker — and every
hop contributes latency that an aggregate histogram cannot attribute.
Each request therefore carries a **trace context** (a 128-bit trace
id, propagated as an HTTP header; see
:mod:`repro.serve.protocol`), and every component records **spans**
against it:

===============  ========  ============================================
span             process   covers
===============  ========  ============================================
client-request   client    the whole logical request (retries included)
attempt          client    one HTTP attempt (``n``, ``status`` attrs)
hedge            client    the duplicate fired at observed p99
backoff          client    the sleep between retries
request          frontend  the served request (root of the server tree)
admission        frontend  shape/size/quota/degradation checks
cache-hot        frontend  a frontend hot-tier answer
coalesce-wait    frontend  a follower adopting the leader's in-flight
                           job (``leader_trace`` attr)
queue-wait       pool      submit → dispatcher pickup (one per attempt)
dispatch         pool      pipe send → reply (``worker``, ``attempt``)
batch-wait       worker    batch receipt → this job's turn
cache-memo       worker    a worker result-memo answer
cache-lru        worker    an analyzed-program LRU hit (no frontend)
analyze          worker    the real frontend pass (cache-stats attrs)
execute          worker    machine/back-end execution
serialize        worker    body construction (inspect report build)
===============  ========  ============================================

Span timestamps are ``time.monotonic()`` instants: on Linux the
monotonic clock is system-wide, so spans stamped in a forked worker
nest correctly inside the dispatch span stamped in the parent — the
same property the serve deadline propagation already relies on.

**Tail-based sampling** (:class:`TraceBuffer`): the retention decision
is made when the trace *completes*, so the interesting tail is never
lost — errors (status ≥ 400), fault-affected and requeued jobs,
degradation-rung casualties, and slower-than-p99 requests are always
retained; the healthy fast majority is sampled 1-in-N with the same
counter-based, replay-stable scheme the flight recorder uses (no RNG:
the decision is a pure function of arrival order).

The **critical-path analyzer** (:func:`analyze_traces` /
:func:`render_report_text`) attributes each retained trace's wall time
to spans by *self-time* (a span's duration minus its children's), so
the per-trace breakdown sums to the measured request latency by
construction, then aggregates the slowest percentile into a
where-does-p99-go table and a queue-vs-compute decomposition.  The
``repro trace`` command is a thin CLI over these functions.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict, deque
from typing import (IO, Any, Dict, Iterable, List, Optional, Tuple,
                    Union)

__all__ = [
    "TRACE_SCHEMA", "new_trace_id", "new_span_id", "start_span",
    "end_span", "instant_span", "RequestTrace", "TraceBuffer",
    "validate_trace", "span_tree", "self_times", "queue_compute_ms",
    "analyze_traces", "render_trace_text", "render_report_text",
    "render_report_html", "dump_traces", "load_traces",
]

TRACE_SCHEMA = "repro-trace/1"

#: span names that are time spent *waiting* (admission machinery,
#: queues, batching) vs *working* — the queue-vs-compute decomposition
QUEUE_SPAN_NAMES = frozenset({
    "admission", "coalesce-wait", "queue-wait", "batch-wait",
    "backoff"})
COMPUTE_SPAN_NAMES = frozenset({
    "analyze", "execute", "serialize", "cache-hot", "cache-memo",
    "cache-lru"})

#: how many duration samples feed the slow-tail (p99) estimate, and how
#: many offers between re-estimates (sorting amortized off the hot path)
_SLOW_WINDOW = 1024
_SLOW_REFRESH = 64
#: observations required before "slower than p99" can fire at all
_SLOW_MIN_SAMPLES = 100

# span ids only need uniqueness, not unpredictability: a per-process
# random prefix plus a counter avoids an os.urandom syscall per span.
# The prefix is keyed to the pid because a forked worker inherits the
# module state — without the re-derivation, parent and worker would
# mint identical ids into the same trace (os.urandom reseeds itself
# after fork, so the child's fresh prefix never matches the parent's)
_SPAN_STATE: Dict[str, Any] = {"pid": None, "prefix": ""}
_SPAN_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars), cheap enough for the
    serve hot path and collision-free across forked workers."""
    pid = os.getpid()
    if _SPAN_STATE["pid"] != pid:
        _SPAN_STATE["pid"] = pid
        _SPAN_STATE["prefix"] = os.urandom(4).hex()
    return (f"{_SPAN_STATE['prefix']}"
            f"{next(_SPAN_COUNTER) & 0xFFFFFFFF:08x}")


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

def start_span(name: str, process: str,
               parent: Optional[str] = None,
               attrs: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
    """Open one span (a plain dict — spans cross a ``Pipe``)."""
    return {"name": name, "span": new_span_id(), "parent": parent,
            "process": process, "start": time.monotonic(),
            "end": None, "attrs": dict(attrs) if attrs else {}}


def end_span(span: Dict[str, Any], **attrs: Any) -> Dict[str, Any]:
    """Close a span (idempotent: the first end wins)."""
    if span["end"] is None:
        span["end"] = time.monotonic()
    if attrs:
        span["attrs"].update(attrs)
    return span


def instant_span(name: str, process: str,
                 parent: Optional[str] = None,
                 **attrs: Any) -> Dict[str, Any]:
    """A zero-ish-duration marker span (cache hits, decisions)."""
    span = start_span(name, process, parent, attrs)
    span["end"] = span["start"]
    return span


def span_duration_s(span: Dict[str, Any]) -> float:
    end = span.get("end")
    if end is None:
        return 0.0
    return max(0.0, end - span["start"])


class RequestTrace:
    """Collects one server-side span tree for one request.

    Created at admission; the root ``request`` span parents every
    frontend span, the pool spans adopt the root via the job's
    ``root_span`` field, and worker spans parent the dispatch span
    they rode — :meth:`finish` flattens the lot into one JSON-able
    trace record.
    """

    __slots__ = ("trace_id", "root", "spans", "flags", "attrs")

    def __init__(self, trace_id: str, endpoint: str,
                 parent: Optional[str] = None) -> None:
        self.trace_id = trace_id
        self.root = start_span("request", "frontend", parent=parent,
                               attrs={"endpoint": endpoint})
        self.spans: List[Dict[str, Any]] = [self.root]
        self.flags: List[str] = []
        self.attrs: Dict[str, Any] = {"endpoint": endpoint}

    def begin(self, name: str, **attrs: Any) -> Dict[str, Any]:
        span = start_span(name, "frontend", parent=self.root["span"],
                          attrs=attrs)
        self.spans.append(span)
        return span

    def end(self, span: Dict[str, Any], **attrs: Any) -> None:
        end_span(span, **attrs)

    def instant(self, name: str, **attrs: Any) -> Dict[str, Any]:
        span = instant_span(name, "frontend", self.root["span"],
                            **attrs)
        self.spans.append(span)
        return span

    def adopt(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Take ownership of pool/worker spans for this request."""
        self.spans.extend(spans)

    def flag(self, name: str) -> None:
        if name not in self.flags:
            self.flags.append(name)

    def note(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def finish(self, status: int, **attrs: Any) -> Dict[str, Any]:
        end_span(self.root, status=status)
        self.note(**attrs)
        for span in self.spans:
            if span.get("end") is None:  # crash-path hygiene
                end_span(span, truncated=True)
        return {
            "schema": TRACE_SCHEMA,
            "trace": self.trace_id,
            "root": self.root["span"],
            "status": status,
            "endpoint": self.attrs.get("endpoint", ""),
            "tenant": self.attrs.get("tenant", ""),
            "duration_s": round(span_duration_s(self.root), 9),
            "flags": list(self.flags),
            "attrs": {k: v for k, v in self.attrs.items()
                      if k not in ("endpoint", "tenant")},
            "time": round(time.time(), 3),
            "spans": self.spans,
        }


# ---------------------------------------------------------------------------
# tail-based sampling
# ---------------------------------------------------------------------------

class TraceBuffer:
    """Bounded store of completed traces with tail-based retention.

    ``offer()`` decides, per completed trace, whether to retain:

    * ``status >= 400`` → always (``"error"``);
    * fault-affected (chaos-faulted, requeued after a crash) →
      always (``"faulted"``);
    * admitted under a degraded rung or shed → always (``"degraded"``);
    * slower than the running p99 estimate → always (``"slow"``);
    * otherwise 1-in-``sample`` by arrival counter — the same
      replay-stable scheme as the flight recorder's detail sampling
      (``sample <= 1`` retains everything).

    Retained traces live in an insertion-ordered ring of ``capacity``;
    eviction is oldest-first.  Thread-safe: offers come from every
    HTTP handler thread, snapshots from scrape/CLI threads.
    """

    def __init__(self, capacity: int = 512, sample: int = 16,
                 metrics: Optional[Any] = None) -> None:
        self.capacity = max(1, capacity)
        self.sample = max(1, int(sample))
        self._lock = threading.Lock()
        self._ring: "OrderedDict[int, Dict[str, Any]]" = OrderedDict()
        self._by_trace: Dict[str, int] = {}
        self._seq = 0
        self._seen = 0
        self._by_reason: Dict[str, int] = {}
        self._window: deque = deque(maxlen=_SLOW_WINDOW)
        self._p99: Optional[float] = None
        if metrics is not None:
            self._offered = metrics.counter(
                "repro_serve_traces_total",
                "completed request traces by retention decision")
            self._retained_ctr = metrics.counter(
                "repro_serve_traces_retained_total",
                "retained request traces by reason")
        else:
            self._offered = self._retained_ctr = None

    # -- retention policy ----------------------------------------------

    def _reason(self, record: Dict[str, Any]) -> Optional[str]:
        if record.get("status", 0) >= 400:
            return "error"
        flags = set(record.get("flags") or ())
        if flags & {"faulted", "requeued"}:
            return "faulted"
        if flags & {"degraded", "shed"}:
            return "degraded"
        duration = record.get("duration_s", 0.0)
        if (self._p99 is not None
                and len(self._window) >= _SLOW_MIN_SAMPLES
                and duration > self._p99):
            return "slow"
        # counter-based 1-in-N: deterministic in arrival order, the
        # flight recorder's exact scheme (sample<=1 keeps everything)
        if self.sample <= 1 or self._seen % self.sample == 1:
            return "sampled"
        return None

    def offer(self, record: Dict[str, Any]) -> Tuple[bool, str]:
        """Decide retention for one completed trace; returns
        ``(retained, reason)`` (reason ``"dropped"`` when not)."""
        with self._lock:
            self._seen += 1
            reason = self._reason(record)
            self._window.append(record.get("duration_s", 0.0))
            if self._seen % _SLOW_REFRESH == 0 and self._window:
                ordered = sorted(self._window)
                self._p99 = ordered[int(0.99 * (len(ordered) - 1))]
            if reason is None:
                if self._offered is not None:
                    self._offered.labels(retained="no").inc()
                return False, "dropped"
            record = dict(record)
            record["retained"] = reason
            self._seq += 1
            self._ring[self._seq] = record
            self._by_trace[record["trace"]] = self._seq
            self._by_reason[reason] = (
                self._by_reason.get(reason, 0) + 1)
            while len(self._ring) > self.capacity:
                _, evicted = self._ring.popitem(last=False)
                key = evicted["trace"]
                if key in self._by_trace \
                        and self._by_trace[key] not in self._ring:
                    self._by_trace.pop(key, None)
        if self._offered is not None:
            self._offered.labels(retained="yes").inc()
            self._retained_ctr.labels(reason=reason).inc()
        return True, reason

    # -- reads ----------------------------------------------------------

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The newest retained record for one trace id."""
        with self._lock:
            seq = self._by_trace.get(trace_id)
            return self._ring.get(seq) if seq is not None else None

    def snapshot(self) -> List[Dict[str, Any]]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._ring.values())

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {"seen": self._seen, "retained": len(self._ring),
                    "capacity": self.capacity, "sample": self.sample,
                    "by_reason": dict(self._by_reason),
                    "p99_estimate_s": self._p99}


# ---------------------------------------------------------------------------
# validation and analysis
# ---------------------------------------------------------------------------

def validate_trace(record: Dict[str, Any]) -> List[str]:
    """Structural complaints for one trace record (empty = sound).

    The root span's parent may point outside the record (the client's
    attempt span); every *other* span must parent a span in the
    record — an unparented span is an orphan, which is exactly the
    cross-process propagation bug this check exists to catch.
    """
    problems: List[str] = []
    spans = record.get("spans") or []
    if not spans:
        return [f"trace {record.get('trace', '?')[:12]}: no spans"]
    ids = {s["span"] for s in spans}
    if len(ids) != len(spans):
        problems.append("duplicate span ids")
    root = record.get("root")
    if root not in ids:
        problems.append(f"root span {root!r} not present")
    for span in spans:
        label = f"span {span.get('name')}/{str(span.get('span'))[:8]}"
        if span.get("end") is None:
            problems.append(f"{label}: never ended")
        elif span["end"] < span["start"]:
            problems.append(f"{label}: ends before it starts")
        parent = span.get("parent")
        if span["span"] == root:
            continue  # the root's parent is the client's span (or None)
        if parent is None or parent not in ids:
            problems.append(f"{label}: orphan (parent {parent!r} "
                            f"not in trace)")
    return problems


def span_tree(record: Dict[str, Any]
              ) -> Dict[Optional[str], List[Dict[str, Any]]]:
    """Children-by-parent-id map, children in start order."""
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    ids = {s["span"] for s in record.get("spans") or []}
    root = record.get("root")
    for span in record.get("spans") or []:
        parent = span.get("parent")
        if span["span"] == root or parent not in ids:
            parent = None
        children.setdefault(parent, []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: s["start"])
    return children


def self_times(record: Dict[str, Any]) -> Dict[str, float]:
    """Per-span self-time (duration minus direct children's), keyed by
    span id.  Summed over a sound tree this reproduces the root span's
    duration, so the critical-path table accounts for every measured
    second — gaps between child spans surface as parent self-time
    instead of silently vanishing."""
    children = span_tree(record)
    out: Dict[str, float] = {}
    for span in record.get("spans") or []:
        kids = children.get(span["span"], ())
        covered = sum(span_duration_s(k) for k in kids)
        out[span["span"]] = max(0.0,
                                span_duration_s(span) - covered)
    return out


def queue_compute_ms(record: Dict[str, Any]) -> Tuple[float, float]:
    """(queue_ms, compute_ms) for one trace: self-time of waiting
    spans vs working spans (everything else — dispatch envelope, root
    slack — is coordination and belongs to neither)."""
    selfs = self_times(record)
    by_id = {s["span"]: s for s in record.get("spans") or []}
    queue = compute = 0.0
    for span_id, self_s in selfs.items():
        name = by_id[span_id]["name"]
        if name in QUEUE_SPAN_NAMES:
            queue += self_s
        elif name in COMPUTE_SPAN_NAMES:
            compute += self_s
    return queue * 1e3, compute * 1e3


def analyze_traces(records: List[Dict[str, Any]],
                   tail: float = 0.99) -> Dict[str, Any]:
    """The aggregate critical-path report over retained traces.

    * latency percentiles over every trace;
    * **where does the tail go**: mean self-time per span name over
      the slowest ``1 - tail`` fraction (at least one trace), plus the
      same table over all traces for contrast;
    * queue-vs-compute decomposition of the tail;
    * the slowest traces as exemplars (id, status, duration, flags).
    """
    records = [r for r in records if r.get("spans")]
    if not records:
        return {"schema": TRACE_SCHEMA, "traces": 0, "problems": [],
                "percentiles": {}, "tail": {}, "overall": {},
                "exemplars": [], "statuses": {}, "flags": {}}
    problems: List[str] = []
    for record in records:
        for problem in validate_trace(record):
            problems.append(
                f"{record.get('trace', '?')[:12]}: {problem}")
    by_duration = sorted(records, key=lambda r: r["duration_s"])
    durations = [r["duration_s"] for r in by_duration]

    def pct(q: float) -> float:
        idx = min(len(durations) - 1,
                  max(0, int(q * (len(durations) - 1) + 0.5)))
        return durations[idx]

    cut = max(1, int(round(len(by_duration) * (1.0 - tail))))
    slowest = by_duration[-cut:]

    def breakdown(subset: List[Dict[str, Any]]) -> Dict[str, Any]:
        total: Dict[str, float] = {}
        for record in subset:
            selfs = self_times(record)
            by_id = {s["span"]: s for s in record["spans"]}
            for span_id, self_s in selfs.items():
                name = by_id[span_id]["name"]
                total[name] = total.get(name, 0.0) + self_s
        n = len(subset)
        mean_total = sum(r["duration_s"] for r in subset) / n
        rows = [{"span": name,
                 "mean_ms": round(secs / n * 1e3, 4),
                 "share": round((secs / n) / mean_total, 4)
                 if mean_total else 0.0}
                for name, secs in total.items()]
        rows.sort(key=lambda row: -row["mean_ms"])
        queue = sum(r["mean_ms"] for r in rows
                    if r["span"] in QUEUE_SPAN_NAMES)
        compute = sum(r["mean_ms"] for r in rows
                      if r["span"] in COMPUTE_SPAN_NAMES)
        return {"count": n, "mean_ms": round(mean_total * 1e3, 4),
                "rows": rows,
                "queue_ms": round(queue, 4),
                "compute_ms": round(compute, 4),
                "other_ms": round(mean_total * 1e3 - queue - compute,
                                  4)}

    statuses: Dict[str, int] = {}
    flags: Dict[str, int] = {}
    retained: Dict[str, int] = {}
    for record in records:
        statuses[str(record.get("status"))] = (
            statuses.get(str(record.get("status")), 0) + 1)
        for flag in record.get("flags") or ():
            flags[flag] = flags.get(flag, 0) + 1
        why = record.get("retained", "?")
        retained[why] = retained.get(why, 0) + 1
    return {
        "schema": TRACE_SCHEMA,
        "traces": len(records),
        "problems": problems,
        "percentiles": {"p50": round(pct(0.50), 6),
                        "p95": round(pct(0.95), 6),
                        "p99": round(pct(0.99), 6)},
        "statuses": statuses,
        "flags": flags,
        "retained": retained,
        "tail": breakdown(slowest),
        "overall": breakdown(by_duration),
        "exemplars": [{"trace": r["trace"],
                       "endpoint": r.get("endpoint", ""),
                       "status": r.get("status"),
                       "duration_ms": round(r["duration_s"] * 1e3, 3),
                       "flags": r.get("flags") or [],
                       "retained": r.get("retained", "?")}
                      for r in reversed(slowest[-8:])],
    }


# ---------------------------------------------------------------------------
# renderings
# ---------------------------------------------------------------------------

def render_trace_text(record: Dict[str, Any]) -> str:
    """One trace as an indented span tree with self-time columns."""
    children = span_tree(record)
    selfs = self_times(record)
    lines = [f"trace {record.get('trace', '?')}  "
             f"endpoint={record.get('endpoint', '?')} "
             f"status={record.get('status', '?')} "
             f"duration={record.get('duration_s', 0) * 1e3:.3f}ms "
             f"flags={','.join(record.get('flags') or ()) or '-'} "
             f"retained={record.get('retained', '?')}"]
    base = min((s["start"] for s in record.get("spans") or ()),
               default=0.0)

    def walk(parent: Optional[str], depth: int) -> None:
        for span in children.get(parent, ()):
            dur = span_duration_s(span) * 1e3
            lines.append(
                f"  {'  ' * depth}{span['name']:<16} "
                f"[{span['process']:<8}] "
                f"+{(span['start'] - base) * 1e3:8.3f}ms "
                f"dur={dur:9.3f}ms self={selfs[span['span']] * 1e3:9.3f}ms"
                + (f"  {_fmt_attrs(span['attrs'])}"
                   if span.get("attrs") else ""))
            walk(span["span"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def _fmt_attrs(attrs: Dict[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def render_report_text(report: Dict[str, Any]) -> str:
    if not report["traces"]:
        return "no traces retained (is tracing enabled?)"
    p = report["percentiles"]
    lines = [
        f"== request traces: {report['traces']} retained ==",
        f"latency: p50={p['p50'] * 1e3:.3f}ms "
        f"p95={p['p95'] * 1e3:.3f}ms p99={p['p99'] * 1e3:.3f}ms",
        "statuses: " + " ".join(
            f"{k}={v}" for k, v in sorted(report["statuses"].items())),
        "retained: " + " ".join(
            f"{k}={v}" for k, v in sorted(
                report.get("retained", {}).items())),
    ]
    if report.get("flags"):
        lines.append("flags: " + " ".join(
            f"{k}={v}" for k, v in sorted(report["flags"].items())))
    for title, key in (("where the tail goes (slowest "
                        f"{report['tail']['count']})", "tail"),
                       ("overall", "overall")):
        section = report[key]
        lines.append(f"-- {title}: mean={section['mean_ms']:.3f}ms "
                     f"queue={section['queue_ms']:.3f}ms "
                     f"compute={section['compute_ms']:.3f}ms "
                     f"other={section['other_ms']:.3f}ms --")
        for row in section["rows"]:
            lines.append(f"  {row['span']:<16} {row['mean_ms']:9.3f}ms "
                         f"{row['share'] * 100:5.1f}%")
    lines.append("-- slowest exemplars --")
    for ex in report["exemplars"]:
        lines.append(f"  {ex['trace'][:16]}  {ex['endpoint']:<8} "
                     f"{ex['status']}  {ex['duration_ms']:9.3f}ms  "
                     f"{','.join(ex['flags']) or '-'}  "
                     f"[{ex['retained']}]")
    if report["problems"]:
        lines.append(f"-- {len(report['problems'])} structural "
                     f"problem(s) --")
        lines.extend(f"  {p}" for p in report["problems"])
    return "\n".join(lines)


def render_report_html(report: Dict[str, Any],
                       records: Optional[List[Dict[str, Any]]] = None
                       ) -> str:
    """Self-contained HTML: the aggregate tables plus (optionally)
    each exemplar's span tree in a <pre> block."""
    def esc(value: Any) -> str:
        return (str(value).replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))

    parts = ["<!doctype html><html><head><meta charset='utf-8'>"
             "<title>repro trace</title><style>"
             "body{font-family:system-ui,sans-serif;margin:2em}"
             "table{border-collapse:collapse;margin:1em 0}"
             "td,th{border:1px solid #ccc;padding:4px 8px;"
             "text-align:right}th{background:#eee}"
             "td:first-child{text-align:left}"
             "pre{background:#f6f6f6;padding:1em;overflow-x:auto}"
             "</style></head><body>",
             f"<h1>request traces ({report['traces']} retained)</h1>"]
    p = report.get("percentiles") or {}
    if p:
        parts.append(
            f"<p>p50 {p['p50'] * 1e3:.3f}ms · p95 "
            f"{p['p95'] * 1e3:.3f}ms · p99 {p['p99'] * 1e3:.3f}ms</p>")
    for title, key in (("Where the tail goes", "tail"),
                       ("Overall", "overall")):
        section = report.get(key) or {}
        if not section:
            continue
        parts.append(f"<h2>{title} ({section['count']} traces, mean "
                     f"{section['mean_ms']:.3f}ms — queue "
                     f"{section['queue_ms']:.3f}ms / compute "
                     f"{section['compute_ms']:.3f}ms)</h2>"
                     "<table><tr><th>span</th><th>mean ms</th>"
                     "<th>share</th></tr>")
        for row in section["rows"]:
            parts.append(f"<tr><td>{esc(row['span'])}</td>"
                         f"<td>{row['mean_ms']:.3f}</td>"
                         f"<td>{row['share'] * 100:.1f}%</td></tr>")
        parts.append("</table>")
    if report.get("exemplars"):
        parts.append("<h2>Slowest exemplars</h2><table><tr>"
                     "<th>trace</th><th>endpoint</th><th>status</th>"
                     "<th>ms</th><th>flags</th></tr>")
        for ex in report["exemplars"]:
            parts.append(
                f"<tr><td><code>{esc(ex['trace'][:16])}</code></td>"
                f"<td>{esc(ex['endpoint'])}</td><td>{ex['status']}</td>"
                f"<td>{ex['duration_ms']:.3f}</td>"
                f"<td>{esc(','.join(ex['flags']) or '-')}</td></tr>")
        parts.append("</table>")
    if records:
        by_id = {r["trace"]: r for r in records}
        shown = [by_id[ex["trace"]] for ex in report.get("exemplars",
                                                         ())
                 if ex["trace"] in by_id]
        for record in shown[:4]:
            parts.append(f"<pre>{esc(render_trace_text(record))}</pre>")
    parts.append("</body></html>")
    return "".join(parts)


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------

def dump_traces(records: List[Dict[str, Any]],
                dest: Union[str, IO[str]],
                meta: Optional[Dict[str, Any]] = None) -> int:
    """Write retained traces as JSONL (header line + one trace per
    line); returns the number of lines written."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as handle:
            return dump_traces(records, handle, meta)
    header = {"schema": TRACE_SCHEMA, "kind": "header",
              "count": len(records)}
    if meta:
        header["meta"] = meta
    dest.write(json.dumps(header, sort_keys=True) + "\n")
    n = 1
    for record in records:
        dest.write(json.dumps(record, sort_keys=True) + "\n")
        n += 1
    return n


def load_traces(source: Union[str, IO[str]]
                ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load ``(header, records)`` from a trace dump.

    Accepts the JSONL format from :func:`dump_traces` *and* a saved
    ``GET /traces`` JSON response (a single object with a ``traces``
    list) — both ``repro trace`` inputs.  Raises ``ValueError`` on
    anything else.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_traces(handle)
    text = source.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError("empty trace dump")
    if stripped.startswith("{") and "\n" not in stripped.strip():
        payload = json.loads(stripped)
        return _from_traces_response(payload)
    lines = [line for line in text.splitlines() if line.strip()]
    first = json.loads(lines[0])
    if first.get("kind") == "header":
        if first.get("schema") != TRACE_SCHEMA:
            raise ValueError(f"schema {first.get('schema')!r} != "
                             f"{TRACE_SCHEMA!r}")
        return first, [json.loads(line) for line in lines[1:]]
    if "traces" in first:
        return _from_traces_response(first)
    raise ValueError("not a trace dump (no header line and no "
                     "'traces' key)")


def _from_traces_response(payload: Dict[str, Any]
                          ) -> Tuple[Dict[str, Any],
                                     List[Dict[str, Any]]]:
    records = payload.get("traces")
    if not isinstance(records, list):
        raise ValueError("'traces' is not a list")
    header = {"schema": TRACE_SCHEMA, "kind": "header",
              "count": len(records),
              "meta": payload.get("stats") or {}}
    return header, records
