"""The run-telemetry store: content-addressed envelopes of run evidence.

The observability layer so far answers questions about *one* run: the
tracer orders its events, the metrics registry snapshots its counters,
the flight recorder keeps its last-N window.  This module adds the
*cross-run* memory: every instrumented ``repro run`` / ``profile`` /
``bench`` / ``chaos`` invocation can append one **telemetry envelope**
— a versioned JSON document bundling the run's stats summary, metrics
snapshot, bench timings or chaos taxonomy, observability overhead, git
revision and seed — to a content-addressed store under
``.repro/telemetry/``.  The regression observatory (``repro report``)
and the live endpoint (``repro metricsd``) read that store.

Store layout (all plain files, no daemon required to write)::

    .repro/telemetry/
        objects/<sha256>.json   # one envelope, canonical JSON
        index.jsonl             # append-only: one summary line per
                                # envelope, newest last

Envelopes are addressed by the SHA-256 of their canonical JSON — the
same content-addressing discipline as the frontend analysis cache — so
re-recording an identical run is a no-op and the index can be rebuilt
from the objects directory alone.  The schema is versioned
(``repro-telemetry/1``) with the same load/validate discipline as the
flight recorder's ``repro-flightrec/1`` dumps.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from typing import Any, Dict, List, Optional

#: envelope schema tag; bump when the envelope shape changes
TELEMETRY_SCHEMA = "repro-telemetry/1"

#: default store root, relative to the working directory
DEFAULT_STORE = os.path.join(".repro", "telemetry")

#: envelope kinds the CLI emits; the validator warns on unknown kinds
#: (forward compatibility) rather than rejecting them
KNOWN_KINDS = ("run", "profile", "bench", "chaos", "trace")

#: index entries kept when trimming (the objects stay; only the
#: fast-path index is bounded)
DEFAULT_INDEX_LIMIT = 4096


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def envelope_digest(envelope: Dict[str, Any]) -> str:
    """Content address: SHA-256 of the canonical JSON."""
    return hashlib.sha256(
        canonical_json(envelope).encode("utf-8")).hexdigest()


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit sha, or None outside a repo / without
    git.  Never raises — telemetry must not fail a run."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def make_envelope(kind: str, *,
                  label: str = "",
                  summary: Optional[Dict[str, Any]] = None,
                  metrics: Optional[Dict[str, Any]] = None,
                  bench: Optional[Dict[str, Any]] = None,
                  chaos: Optional[Dict[str, Any]] = None,
                  cache: Optional[Dict[str, Any]] = None,
                  flight: Optional[Dict[str, Any]] = None,
                  overhead: Optional[Dict[str, Any]] = None,
                  seed: Optional[int] = None,
                  meta: Optional[Dict[str, Any]] = None,
                  created_at: Optional[float] = None,
                  git_sha: Optional[str] = None) -> Dict[str, Any]:
    """Build one telemetry envelope.  Only non-empty sections are
    included, so a bench envelope does not carry empty run sections."""
    env: Dict[str, Any] = {
        "schema": TELEMETRY_SCHEMA,
        "kind": kind,
        "created_at": round(time.time() if created_at is None
                            else created_at, 3),
    }
    if label:
        env["label"] = label
    sha = git_sha if git_sha is not None else git_revision()
    if sha:
        env["git_sha"] = sha
    if seed is not None:
        env["seed"] = seed
    for key, section in (("summary", summary), ("metrics", metrics),
                         ("bench", bench), ("chaos", chaos),
                         ("cache", cache), ("flight", flight),
                         ("overhead", overhead), ("meta", meta)):
        if section:
            env[key] = section
    return env


def validate_envelope(envelope: Dict[str, Any]) -> List[str]:
    """Schema checks on one envelope; returns problems (empty = valid).
    Unknown kinds only warn via the store's ``validate`` (forward
    compatibility) — here they are a problem so callers can be strict."""
    problems: List[str] = []
    if not isinstance(envelope, dict):
        return ["envelope is not an object"]
    schema = envelope.get("schema")
    if schema != TELEMETRY_SCHEMA:
        problems.append(f"schema {schema!r} != {TELEMETRY_SCHEMA!r}")
    kind = envelope.get("kind")
    if not isinstance(kind, str) or not kind:
        problems.append("missing envelope kind")
    elif kind not in KNOWN_KINDS:
        problems.append(f"unknown envelope kind {kind!r}")
    created = envelope.get("created_at")
    if not isinstance(created, (int, float)):
        problems.append("created_at is not a number")
    for key in ("summary", "metrics", "bench", "chaos", "cache",
                "flight", "overhead", "meta"):
        if key in envelope and not isinstance(envelope[key], dict):
            problems.append(f"section {key!r} is not an object")
    return problems


class TelemetryStore:
    """The on-disk envelope store.  Cheap to construct; all methods
    tolerate a store that does not exist yet (reads return empty)."""

    def __init__(self, root: str = DEFAULT_STORE) -> None:
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.index_path = os.path.join(root, "index.jsonl")

    # -- writing -------------------------------------------------------

    def append(self, envelope: Dict[str, Any]) -> str:
        """Store one envelope; returns its content address.  Identical
        envelopes dedup to the same object and a single index line."""
        problems = validate_envelope(envelope)
        if problems:
            raise ValueError("invalid telemetry envelope: "
                             + "; ".join(problems))
        sha = envelope_digest(envelope)
        os.makedirs(self.objects_dir, exist_ok=True)
        obj_path = os.path.join(self.objects_dir, sha + ".json")
        if not os.path.exists(obj_path):
            tmp = obj_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(envelope))
            os.replace(tmp, obj_path)
            with open(self.index_path, "a", encoding="utf-8") as handle:
                handle.write(canonical_json(
                    self._index_entry(sha, envelope)) + "\n")
        return sha

    @staticmethod
    def _index_entry(sha: str,
                     envelope: Dict[str, Any]) -> Dict[str, Any]:
        """The small scan-friendly line the index keeps per envelope."""
        entry: Dict[str, Any] = {
            "sha": sha,
            "kind": envelope["kind"],
            "created_at": envelope["created_at"],
        }
        for key in ("label", "git_sha", "seed"):
            if key in envelope:
                entry[key] = envelope[key]
        summary = envelope.get("summary")
        if isinstance(summary, dict) and "cycles" in summary:
            entry["cycles"] = summary["cycles"]
        return entry

    # -- reading -------------------------------------------------------

    def index(self) -> List[Dict[str, Any]]:
        """Every index entry, oldest first.  Malformed lines are
        skipped (a crashed append must not poison the store)."""
        if not os.path.exists(self.index_path):
            return []
        entries: List[Dict[str, Any]] = []
        with open(self.index_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict) and entry.get("sha"):
                    entries.append(entry)
        return entries

    def load(self, sha: str) -> Dict[str, Any]:
        """Load one envelope by content address."""
        path = os.path.join(self.objects_dir, sha + ".json")
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
        actual = envelope_digest(envelope)
        if actual != sha:
            raise ValueError(f"telemetry object {sha} is corrupt "
                             f"(content hashes to {actual})")
        return envelope

    def recent(self, n: int = 20,
               kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """The newest ``n`` index entries (newest first), optionally
        filtered by envelope kind."""
        entries = self.index()
        if kind is not None:
            entries = [e for e in entries if e.get("kind") == kind]
        return list(reversed(entries[-n:])) if n else []

    def load_recent(self, n: int = 20,
                    kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """The newest ``n`` full envelopes (newest first); entries whose
        object is missing or corrupt are skipped."""
        out: List[Dict[str, Any]] = []
        for entry in self.recent(n, kind):
            try:
                out.append(self.load(entry["sha"]))
            except (OSError, ValueError):
                continue
        return out

    # -- maintenance ---------------------------------------------------

    def validate(self) -> List[str]:
        """Cross-check the index against the objects.  Returns problems
        (empty = healthy).  Unknown kinds warn, matching the flight
        recorder's tolerance for forward-compatible dumps."""
        problems: List[str] = []
        seen = set()
        for entry in self.index():
            sha = entry["sha"]
            if sha in seen:
                problems.append(f"duplicate index entry for {sha[:12]}")
                continue
            seen.add(sha)
            try:
                envelope = self.load(sha)
            except OSError:
                problems.append(f"index references missing object "
                                f"{sha[:12]}")
                continue
            except ValueError as err:
                problems.append(str(err))
                continue
            for problem in validate_envelope(envelope):
                problems.append(f"{sha[:12]}: {problem}")
        if os.path.isdir(self.objects_dir):
            for name in os.listdir(self.objects_dir):
                if not name.endswith(".json"):
                    continue
                sha = name[:-len(".json")]
                if sha not in seen:
                    problems.append(
                        f"object {sha[:12]} missing from index "
                        f"(run rebuild_index)")
        return problems

    def rebuild_index(self) -> int:
        """Regenerate ``index.jsonl`` from the objects directory
        (ordered by ``created_at``).  Returns the entry count."""
        envelopes: List[Dict[str, Any]] = []
        if os.path.isdir(self.objects_dir):
            for name in sorted(os.listdir(self.objects_dir)):
                if not name.endswith(".json"):
                    continue
                try:
                    envelopes.append(self.load(name[:-len(".json")]))
                except (OSError, ValueError):
                    continue
        envelopes.sort(key=lambda e: e.get("created_at", 0))
        os.makedirs(self.root, exist_ok=True)
        tmp = self.index_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for envelope in envelopes:
                handle.write(canonical_json(self._index_entry(
                    envelope_digest(envelope), envelope)) + "\n")
        os.replace(tmp, self.index_path)
        return len(envelopes)
