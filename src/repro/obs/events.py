"""Structured event bus: typed trace records with span semantics.

The simulator used to keep a flat list of ``(cycle, kind, subject)``
tuples on :class:`~repro.rtsj.stats.Stats`.  This module replaces that
with :class:`TraceEvent` records — each carries its simulated-cycle
timestamp, the emitting thread, a *phase* marking it as an instant event
or the begin/end of a span, and free-form attributes.  (The old
``Stats.events`` shim is gone; the tracer is the one event source, and
post-mortem recording lives in :mod:`repro.obs.flightrec`.)

Two emission channels keep tracing cheap enough to leave on:

* :meth:`Tracer.emit` — low-volume lifecycle events (region created /
  destroyed / flushed, thread spawn / finish, GC runs, checker phases).
  Always recorded, exactly like the old ``Stats.event``.
* :meth:`Tracer.emit_detail` — high-volume events (region enter/exit
  spans, allocations, individual dynamic checks).  Recorded only when
  ``tracer.detailed`` is set (the ``repro run --trace-out`` path), so
  benchmarks that execute millions of checks pay nothing by default.

Span conventions: a span is a ``begin`` event and a later ``end`` event
with the same *kind pair* and subject, emitted by the same thread.
Because simulated execution is stack-structured per thread, spans from
one thread always nest properly; the JSON Lines exporter preserves
emission order so consumers can replay them with a per-thread stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter as _perf
from typing import Any, Dict, List, Optional, Tuple

#: phase markers (Chrome-trace inspired): instant, span begin, span end
INSTANT, BEGIN, END = "i", "B", "E"


@dataclass
class TraceEvent:
    """One structured trace record."""

    __slots__ = ("cycle", "kind", "subject", "thread", "phase", "attrs")

    cycle: int
    kind: str
    subject: str
    thread: str
    phase: str
    attrs: Optional[Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"cycle": self.cycle, "kind": self.kind,
                               "ph": self.phase, "subject": self.subject,
                               "thread": self.thread}
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """The event bus one simulated run writes to.

    ``records`` is append-only and time-ordered (the simulated clock
    never goes backwards).  ``max_records`` is a runaway guard: past it,
    further records are counted in ``dropped`` instead of stored.

    ``sample`` is the always-on tier: with ``sample=N > 1``, only every
    N-th *instant* detail event per kind is stored (checks, allocs);
    span begin/end pairs are never sampled so nesting stays balanced,
    and the skip count lands in ``sampled_out`` (the JSONL exporter
    appends a ``trace-sampled`` marker).  Sampling is deterministic
    (per-kind counters, no RNG) so traced runs stay replayable.

    The tracer self-measures: ``overhead_s`` accumulates the host
    seconds spent inside ``_record`` (building and storing payloads),
    which `Machine.finalize_metrics` exports as the
    ``repro_observability_overhead_seconds{component="tracer"}`` gauge.
    Simulated cycles are never charged — tracing stays cycle-neutral.
    """

    #: False for recording tracers; :class:`NullTracer` flips it so hot
    #: paths can skip building event payloads entirely
    null = False

    def __init__(self, detailed: bool = False,
                 max_records: int = 1_000_000,
                 sample: int = 1) -> None:
        if sample < 1:
            raise ValueError(f"trace sample stride must be >= 1, "
                             f"got {sample}")
        self.records: List[TraceEvent] = []
        self.detailed = detailed
        self.max_records = max_records
        self.dropped = 0
        self.sample = sample
        #: instant detail events skipped by the 1-in-N sampling tier
        self.sampled_out = 0
        #: host seconds spent inside the recording path (self-measured)
        self.overhead_s = 0.0
        #: per-kind counters driving the deterministic sample stride
        self._seen: Dict[str, int] = {}
        #: per-thread stack of currently-open spans ``(kind, subject)``,
        #: so :meth:`close_abandoned` can repair traces when a thread is
        #: killed mid-span (LT watchdog abort, ``ThreadCrashError``)
        self._open: Dict[str, List[Tuple[str, str]]] = {}

    # ------------------------------------------------------------------

    def _record(self, cycle: int, kind: str, subject: str, thread: str,
                phase: str, attrs: Optional[Dict[str, Any]]) -> None:
        start = _perf()
        if phase == BEGIN:
            self._open.setdefault(thread, []).append((kind, subject))
        elif phase == END:
            stack = self._open.get(thread)
            if stack:
                stack.pop()
        if len(self.records) >= self.max_records:
            self.dropped += 1
            self.overhead_s += _perf() - start
            return
        self.records.append(
            TraceEvent(cycle, kind, subject, thread, phase, attrs))
        self.overhead_s += _perf() - start

    def emit(self, kind: str, subject: str, cycle: int = 0,
             thread: str = "main", phase: str = INSTANT,
             attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record one low-volume lifecycle event (always on)."""
        self._record(cycle, kind, subject, thread, phase, attrs)

    def emit_detail(self, kind: str, subject: str, cycle: int = 0,
                    thread: str = "main", phase: str = INSTANT,
                    attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record one high-volume event — only when ``detailed``.
        Instant events respect the 1-in-N sampling stride; span
        begin/end events always record (nesting must stay balanced)."""
        if self.detailed:
            if self.sample > 1 and phase == INSTANT:
                seen = self._seen.get(kind, 0) + 1
                self._seen[kind] = seen
                if seen % self.sample != 1:
                    self.sampled_out += 1
                    return
            self._record(cycle, kind, subject, thread, phase, attrs)

    def begin(self, kind: str, subject: str, cycle: int = 0,
              thread: str = "main",
              attrs: Optional[Dict[str, Any]] = None) -> None:
        self.emit_detail(kind, subject, cycle, thread, BEGIN, attrs)

    def end(self, kind: str, subject: str, cycle: int = 0,
            thread: str = "main",
            attrs: Optional[Dict[str, Any]] = None) -> None:
        self.emit_detail(kind, subject, cycle, thread, END, attrs)

    def close_abandoned(self, thread: str, cycle: int = 0) -> int:
        """Close every span ``thread`` left open, innermost first.

        Called when a thread is killed mid-span (LT watchdog abort,
        ``ThreadCrashError``, scheduler shutdown): without this, the
        thread's ``B`` events never meet an ``E`` and the exported JSONL
        trace stops being well-nested.  Each synthesized end record
        carries ``aborted: true`` so consumers can tell a repair from a
        real exit.  Returns the number of spans closed.
        """
        stack = self._open.get(thread)
        closed = 0
        while stack:
            kind, subject = stack[-1]
            end_kind = "region-exit" if kind == "region-enter" else kind
            # _record pops the open-span entry itself
            self._record(cycle, end_kind, subject, thread, END,
                         {"aborted": True})
            closed += 1
        return closed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.records:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def spans_balanced(self) -> bool:
        """True when every thread's begin/end events nest like a stack
        (the invariant the integration tests assert on trace files)."""
        stacks: Dict[str, List[Tuple[str, str]]] = {}
        for e in self.records:
            stack = stacks.setdefault(e.thread, [])
            if e.phase == BEGIN:
                stack.append((e.kind, e.subject))
            elif e.phase == END:
                if not stack:
                    return False
                kind, subject = stack.pop()
                if subject != e.subject:
                    return False
        return all(not stack for stack in stacks.values())


class NullTracer(Tracer):
    """A tracer that records nothing, as cheaply as possible.

    Used by the wall-clock benchmark harness (``repro bench``) and any
    ``RunOptions(instrument=False)`` run: when nobody will export the
    trace, the simulator should not spend a single dictionary
    allocation building event payloads.  Hot paths test ``tracer.null``
    once (usually at closure-compile time) and skip emission wholesale;
    the no-op methods below are the safety net for cold paths.
    """

    null = True

    def emit(self, kind: str, subject: str, cycle: int = 0,
             thread: str = "main", phase: str = INSTANT,
             attrs: Optional[Dict[str, Any]] = None) -> None:
        pass

    def emit_detail(self, kind: str, subject: str, cycle: int = 0,
                    thread: str = "main", phase: str = INSTANT,
                    attrs: Optional[Dict[str, Any]] = None) -> None:
        pass

    def begin(self, kind: str, subject: str, cycle: int = 0,
              thread: str = "main",
              attrs: Optional[Dict[str, Any]] = None) -> None:
        pass

    def end(self, kind: str, subject: str, cycle: int = 0,
            thread: str = "main",
            attrs: Optional[Dict[str, Any]] = None) -> None:
        pass


