"""Observability for the simulated RTSJ platform.

Four pieces, all independent of the runtime packages (``repro.rtsj``
imports *us*, never the reverse):

* :mod:`repro.obs.events` — the structured event bus (:class:`Tracer`,
  :class:`TraceEvent`) that replaced the flat ``Stats.events`` tuples;
* :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.exporters` — JSON Lines traces and Prometheus text;
* :mod:`repro.obs.profile` — per-region / per-call-site / per-category
  cycle attribution behind ``repro profile``;
* :mod:`repro.obs.flightrec` — the bounded, causal flight recorder
  dumped post-mortem (``repro run --record-out``, chaos auto-dumps);
* :mod:`repro.obs.analyze` — the ``repro inspect`` analysis engine
  over flight-recorder dumps.

See ``docs/OBSERVABILITY.md`` for the event schema and metric names.
"""

from .events import BEGIN, END, INSTANT, NullTracer, TraceEvent, Tracer
from .exporters import (to_prometheus, trace_lines, write_metrics,
                        write_trace)
from .flightrec import (FLIGHT_SCHEMA, FlightRecord, FlightRecorder,
                        NullFlightRecorder, dump_flight, flight_lines,
                        load_flight, validate_flight)
from .metrics import (Counter, DEFAULT_CYCLE_BUCKETS, Gauge, Histogram,
                      MetricsRegistry, NullMetricsRegistry)
from .profile import (CATEGORIES, NullProfile, ProfileCollector,
                      ProfileReport, build_report)

__all__ = [
    "Tracer", "TraceEvent", "NullTracer", "INSTANT", "BEGIN", "END",
    "MetricsRegistry", "NullMetricsRegistry", "Counter", "Gauge",
    "Histogram", "DEFAULT_CYCLE_BUCKETS",
    "trace_lines", "write_trace", "to_prometheus", "write_metrics",
    "ProfileCollector", "NullProfile", "ProfileReport", "build_report",
    "CATEGORIES",
    "FlightRecorder", "NullFlightRecorder", "FlightRecord",
    "FLIGHT_SCHEMA", "flight_lines", "dump_flight", "load_flight",
    "validate_flight",
]
