"""Observability for the simulated RTSJ platform.

Four pieces, all independent of the runtime packages (``repro.rtsj``
imports *us*, never the reverse):

* :mod:`repro.obs.events` — the structured event bus (:class:`Tracer`,
  :class:`TraceEvent`) that replaced the flat ``Stats.events`` tuples;
* :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.exporters` — JSON Lines traces and Prometheus text;
* :mod:`repro.obs.profile` — per-region / per-call-site / per-category
  cycle attribution behind ``repro profile``;
* :mod:`repro.obs.flightrec` — the bounded, causal flight recorder
  dumped post-mortem (``repro run --record-out``, chaos auto-dumps);
* :mod:`repro.obs.analyze` — the ``repro inspect`` analysis engine
  over flight-recorder dumps;
* :mod:`repro.obs.telemetry` — the content-addressed cross-run
  envelope store under ``.repro/telemetry/``;
* :mod:`repro.obs.live` — the ``repro metricsd`` scrape endpoint
  (``/metrics``, ``/healthz``, ``/runs``);
* :mod:`repro.obs.report` — the ``repro report`` regression
  observatory over the store and committed bench baselines;
* :mod:`repro.obs.trace` — request-scoped distributed tracing for
  ``repro serve`` (span trees, tail-based sampling, the ``repro
  trace`` critical-path analyser).

See ``docs/OBSERVABILITY.md`` for the event schema and metric names.
"""

from .events import BEGIN, END, INSTANT, NullTracer, TraceEvent, Tracer
from .exporters import (parse_prometheus, snapshot_to_prometheus,
                        to_prometheus, trace_lines, write_metrics,
                        write_trace)
from .flightrec import (FLIGHT_SCHEMA, FlightRecord, FlightRecorder,
                        NullFlightRecorder, dump_flight, flight_lines,
                        load_flight, validate_flight)
from .metrics import (Counter, DEFAULT_CYCLE_BUCKETS, Gauge, Histogram,
                      MetricsRegistry, NullMetricsRegistry)
from .profile import (CATEGORIES, NullProfile, ProfileCollector,
                      ProfileReport, build_report)
from .telemetry import (TELEMETRY_SCHEMA, TelemetryStore, make_envelope,
                        validate_envelope)
from .trace import (TRACE_SCHEMA, RequestTrace, TraceBuffer,
                    analyze_traces, dump_traces, load_traces,
                    new_span_id, new_trace_id, validate_trace)

__all__ = [
    "Tracer", "TraceEvent", "NullTracer", "INSTANT", "BEGIN", "END",
    "MetricsRegistry", "NullMetricsRegistry", "Counter", "Gauge",
    "Histogram", "DEFAULT_CYCLE_BUCKETS",
    "trace_lines", "write_trace", "to_prometheus", "write_metrics",
    "snapshot_to_prometheus", "parse_prometheus",
    "ProfileCollector", "NullProfile", "ProfileReport", "build_report",
    "CATEGORIES",
    "FlightRecorder", "NullFlightRecorder", "FlightRecord",
    "FLIGHT_SCHEMA", "flight_lines", "dump_flight", "load_flight",
    "validate_flight",
    "TelemetryStore", "TELEMETRY_SCHEMA", "make_envelope",
    "validate_envelope",
    "TRACE_SCHEMA", "RequestTrace", "TraceBuffer", "analyze_traces",
    "dump_traces", "load_traces", "new_span_id", "new_trace_id",
    "validate_trace",
]
