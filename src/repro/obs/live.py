"""The live scrape endpoint: stdlib HTTP daemon over the telemetry
store and (optionally) a live in-process metrics registry.

``repro metricsd`` serves three routes, all read-only:

* ``GET /metrics`` — Prometheus text exposition.  When the server is
  attached to a live :class:`~repro.obs.metrics.MetricsRegistry`
  (the ``--serve-metrics`` flag on a long run), the registry renders
  directly; otherwise the newest envelope in the telemetry store with
  a metrics snapshot is re-rendered via
  :func:`~repro.obs.exporters.snapshot_to_prometheus`.
* ``GET /healthz`` — liveness JSON: status, store root, envelope
  count, and the source the ``/metrics`` route would use.
* ``GET /runs`` — the newest telemetry index entries as a JSON array
  (``?n=`` bounds the count, ``?kind=`` filters); ``GET /runs/<sha>``
  returns one full envelope.

Implementation notes: pure stdlib (``http.server``), a threading
server on a daemon thread so the CLI's foreground loop stays
interruptible, and port 0 supported for tests (the bound port is
published on ``server.port``).  Every response is computed per
request — scraping always sees the current store state.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from .exporters import snapshot_to_prometheus, to_prometheus
from .metrics import MetricsRegistry
from .telemetry import TelemetryStore

#: content type mandated by the Prometheus text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TelemetryServer:
    """The metrics/telemetry HTTP daemon.

    ``registry`` (or a ``registry_provider`` callable, for runs that
    swap registries) takes precedence for ``/metrics``; without one the
    store's newest metrics-bearing envelope is served.
    """

    def __init__(self, store: Optional[TelemetryStore] = None,
                 registry: Optional[MetricsRegistry] = None,
                 registry_provider: Optional[
                     Callable[[], Optional[MetricsRegistry]]] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.store = store if store is not None else TelemetryStore()
        self._registry = registry
        self._registry_provider = registry_provider
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(self))
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        #: the bound port (resolves port 0 to the ephemeral choice)
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    # -- data sources --------------------------------------------------

    def live_registry(self) -> Optional[MetricsRegistry]:
        if self._registry_provider is not None:
            return self._registry_provider()
        return self._registry

    def metrics_text(self) -> str:
        """The /metrics body: live registry first, store fallback."""
        registry = self.live_registry()
        if registry is not None:
            return to_prometheus(registry)
        for envelope in self.store.load_recent(20):
            snapshot = envelope.get("metrics")
            if snapshot:
                return snapshot_to_prometheus(snapshot)
        return ""

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "store": self.store.root,
            "envelopes": len(self.store.index()),
            "metrics_source": ("live" if self.live_registry() is not None
                               else "store"),
        }

    # -- lifecycle -----------------------------------------------------

    def serve_background(self) -> "TelemetryServer":
        """Start serving on a daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metricsd:{self.port}", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _make_handler(server: TelemetryServer):
    """Bind a request-handler class to one :class:`TelemetryServer`."""

    class Handler(BaseHTTPRequestHandler):
        # stay quiet: scrape traffic must not interleave the CLI output
        def log_message(self, fmt: str, *args: Any) -> None:
            pass

        def _send(self, status: int, body: str,
                  content_type: str = "application/json") -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, status: int, payload: Any) -> None:
            self._send(status, json.dumps(payload, sort_keys=True,
                                          indent=2) + "\n")

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            parsed = urlparse(self.path)
            path = parsed.path.rstrip("/") or "/"
            try:
                if path == "/metrics":
                    self._send(200, server.metrics_text(),
                               PROMETHEUS_CONTENT_TYPE)
                elif path == "/healthz":
                    self._send_json(200, server.health())
                elif path == "/runs":
                    query = parse_qs(parsed.query)
                    try:
                        n = int(query.get("n", ["20"])[0])
                    except ValueError:
                        self._send_json(400, {"error": "bad n= value"})
                        return
                    kind = query.get("kind", [None])[0]
                    self._send_json(
                        200, server.store.recent(n=n, kind=kind))
                elif path.startswith("/runs/"):
                    sha = path[len("/runs/"):]
                    try:
                        self._send_json(200, server.store.load(sha))
                    except (OSError, ValueError):
                        self._send_json(
                            404, {"error": f"no envelope {sha!r}"})
                else:
                    self._send_json(404, {"error": f"no route {path!r}"})
            except Exception as err:  # scrape must never kill the run
                self._send_json(500, {"error": str(err)})

    return Handler
