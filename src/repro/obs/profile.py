"""Per-region and per-call-site profiles.

The paper's evaluation question — *where do the cycles go?* — needs
three attributions the flat counters cannot give:

* **categories** — every simulated cycle binned into a named category
  (compute, checks, alloc, region, thread, gc, io).  The interpreter
  tracks the non-compute categories explicitly; ``compute`` is the
  arithmetic/branch/call remainder, so attribution always covers 100%
  of the clock.
* **per-region** — allocation traffic and dynamic-check cycles charged
  against the region the operation targeted, alongside the region's
  live-bytes watermark.
* **per-call-site** — allocation bytes and check cycles attributed to
  the source line that executed them (the AST spans the interpreter
  already threads for diagnostics), i.e. a flat line profiler for the
  simulated program.

``ProfileCollector`` is the always-on accumulation half (cheap dict
updates); ``ProfileReport``/:func:`build_report` is the presentation
half used by ``repro profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: the cycle categories, in report order; ``compute`` is the remainder
CATEGORIES = ("compute", "checks", "alloc", "region", "thread", "gc",
              "io")


class ProfileCollector:
    """Accumulates per-site and per-region attributions during a run."""

    __slots__ = ("alloc_sites", "check_sites", "region_alloc",
                 "region_check_cycles")

    #: False for recording collectors; :class:`NullProfile` flips it so
    #: the interpreter's compiled closures can skip attribution wholesale
    null = False

    def __init__(self) -> None:
        #: line -> [allocations, bytes]
        self.alloc_sites: Dict[int, List[int]] = {}
        #: line -> [checks, cycles]
        self.check_sites: Dict[int, List[int]] = {}
        #: region name -> [allocations, bytes]
        self.region_alloc: Dict[str, List[int]] = {}
        #: region name -> check cycles charged against stores into it
        self.region_check_cycles: Dict[str, int] = {}

    def record_alloc(self, line: int, region: str, nbytes: int) -> None:
        site = self.alloc_sites.get(line)
        if site is None:
            self.alloc_sites[line] = [1, nbytes]
        else:
            site[0] += 1
            site[1] += nbytes
        per_region = self.region_alloc.get(region)
        if per_region is None:
            self.region_alloc[region] = [1, nbytes]
        else:
            per_region[0] += 1
            per_region[1] += nbytes

    def record_check(self, line: int, region: str, cycles: int) -> None:
        site = self.check_sites.get(line)
        if site is None:
            self.check_sites[line] = [1, cycles]
        else:
            site[0] += 1
            site[1] += cycles
        self.region_check_cycles[region] = (
            self.region_check_cycles.get(region, 0) + cycles)


class NullProfile(ProfileCollector):
    """A collector that attributes nothing (``instrument=False`` runs).

    The dicts stay allocated (and empty) so ``build_report`` on a
    null-profiled run still works — it just reports no sites/regions.
    """

    __slots__ = ()

    null = True

    def record_alloc(self, line: int, region: str, nbytes: int) -> None:
        pass

    def record_check(self, line: int, region: str, cycles: int) -> None:
        pass


@dataclass
class RegionProfile:
    name: str
    policy: str
    kind_name: str
    allocations: int
    alloc_bytes: int
    peak_bytes: int
    check_cycles: int


@dataclass
class SiteProfile:
    line: int
    allocations: int
    alloc_bytes: int
    checks: int
    check_cycles: int


@dataclass
class ProfileReport:
    total_cycles: int
    #: category -> cycles; keys are exactly :data:`CATEGORIES`
    categories: Dict[str, int]
    regions: List[RegionProfile]
    sites: List[SiteProfile]
    cycles_by_thread: Dict[str, int] = field(default_factory=dict)

    @property
    def attributed_cycles(self) -> int:
        return sum(self.categories.values())

    @property
    def attributed_fraction(self) -> float:
        if not self.total_cycles:
            return 1.0
        return self.attributed_cycles / self.total_cycles

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_cycles": self.total_cycles,
            "attributed_fraction": self.attributed_fraction,
            "categories": dict(self.categories),
            "cycles_by_thread": dict(self.cycles_by_thread),
            "regions": [vars(r).copy() for r in self.regions],
            "sites": [vars(s).copy() for s in self.sites],
        }

    def format(self, top: int = 10) -> str:
        lines = [f"total: {self.total_cycles} cycles "
                 f"({self.attributed_fraction:.1%} attributed)", ""]
        lines.append("cycles by category")
        lines.append(f"  {'category':<10} {'cycles':>12} {'share':>7}")
        for cat in CATEGORIES:
            cycles = self.categories.get(cat, 0)
            share = cycles / self.total_cycles if self.total_cycles else 0
            lines.append(f"  {cat:<10} {cycles:>12} {share:>6.1%}")
        if self.cycles_by_thread:
            lines.append("")
            lines.append("cycles by thread")
            for name, cycles in sorted(self.cycles_by_thread.items(),
                                       key=lambda kv: -kv[1]):
                lines.append(f"  {name:<18} {cycles:>12}")
        if self.regions:
            lines.append("")
            lines.append("per-region profile")
            lines.append(f"  {'region':<22} {'policy':>6} {'allocs':>7} "
                         f"{'bytes':>9} {'peak':>7} {'chk cyc':>9}")
            for r in self.regions:
                lines.append(
                    f"  {r.name:<22} {r.policy:>6} {r.allocations:>7} "
                    f"{r.alloc_bytes:>9} {r.peak_bytes:>7} "
                    f"{r.check_cycles:>9}")
        if self.sites:
            lines.append("")
            lines.append(f"hottest call sites (top {top})")
            lines.append(f"  {'line':>5} {'allocs':>7} {'bytes':>9} "
                         f"{'checks':>7} {'chk cyc':>9}")
            for s in self.sites[:top]:
                lines.append(f"  {s.line:>5} {s.allocations:>7} "
                             f"{s.alloc_bytes:>9} {s.checks:>7} "
                             f"{s.check_cycles:>9}")
        return "\n".join(lines)


def build_report(stats, areas=None) -> ProfileReport:
    """Assemble a :class:`ProfileReport` from a finished run.

    ``stats`` is a :class:`repro.rtsj.stats.Stats` (duck-typed — this
    module stays independent of the runtime packages); ``areas`` is the
    machine's region list, for watermarks and policies.
    """
    collector: ProfileCollector = stats.profile
    explicit = {
        "checks": stats.check_cycles,
        "alloc": stats.alloc_cycles,
        "region": stats.region_cycles,
        "thread": stats.thread_cycles,
        "gc": stats.gc_pause_cycles,
        "io": stats.io_cycles,
    }
    compute = stats.cycles - sum(explicit.values())
    categories = {"compute": max(compute, 0)}
    categories.update(explicit)

    regions: List[RegionProfile] = []
    for area in (areas or []):
        allocs, nbytes = collector.region_alloc.get(area.name, (0, 0))
        check_cycles = collector.region_check_cycles.get(area.name, 0)
        if not (allocs or check_cycles or area.peak_bytes):
            continue  # never used; keep the report readable
        regions.append(RegionProfile(
            area.name, area.policy, area.kind_name, allocs, nbytes,
            area.peak_bytes, check_cycles))
    regions.sort(key=lambda r: (-r.alloc_bytes, r.name))

    lines = sorted(set(collector.alloc_sites) | set(collector.check_sites))
    sites: List[SiteProfile] = []
    for line in lines:
        allocs, nbytes = collector.alloc_sites.get(line, (0, 0))
        checks, check_cycles = collector.check_sites.get(line, (0, 0))
        sites.append(SiteProfile(line, allocs, nbytes, checks,
                                 check_cycles))
    sites.sort(key=lambda s: (-(s.alloc_bytes + s.check_cycles), s.line))

    return ProfileReport(stats.cycles, categories, regions, sites,
                         dict(stats.cycles_by_thread))
