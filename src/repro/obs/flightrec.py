"""The flight recorder: a bounded ring buffer of causally-linked events.

Tracing (:mod:`repro.obs.events`) answers "what happened, in order" for
runs where someone asked for a trace up front.  The flight recorder
answers the production question: *when a run crashes, what were the last
N things the machine did, and why?*  It keeps a fixed-capacity ring of
:class:`FlightRecord` entries — region lifecycle, allocations with
owner and site, LT/VT policy decisions, portal traffic, thread
spawn/abort, GC pauses, every dynamic check performed and every check
elided by the static path — each stamped with the simulated cycle, the
emitting thread, and a *parent-event id* so the analysis engine
(:mod:`repro.obs.analyze`, ``repro inspect``) can walk cause chains.

Design rules, matching the rest of the observability layer:

* **compiled out when disabled** — a plain run carries ``recorder is
  None`` through every compiled closure; no payloads are built, no
  branches beyond a bound-local ``is not None`` test, and simulated
  cycle counts are identical with recording on or off (recording
  charges nothing to the clock);
* **bounded** — past ``capacity`` records the ring overwrites the
  oldest entries.  Aggregate counters (``kind_counts`` and the
  per-check-kind ``check_totals``) are maintained *outside* the ring,
  so the check-elimination ledger stays exact no matter how small the
  window is;
* **causal** — every record's ``parent`` is the innermost open context
  of its thread (the enclosing region entry, or the event that spawned
  the thread).  ``parent == 0`` marks a root.

The on-disk format is JSON Lines: one header object (schema tag,
capacity, totals, aggregates, caller metadata) followed by one line per
surviving record — the same shape as the chaos plane's fault schedules,
so a failed run's ``*.flight.jsonl`` sits next to its
``*.schedule.jsonl`` and ``repro inspect`` can join the two.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from time import perf_counter as _perf
from typing import Any, Dict, IO, List, Optional, Tuple, Union

#: on-disk schema tag; bump when the record shape changes
FLIGHT_SCHEMA = "repro-flightrec/1"

#: default ring capacity — large enough to hold every event of the
#: micro-benchmarks, small enough that a runaway server loop cannot
#: exhaust host memory
DEFAULT_CAPACITY = 1 << 16

#: record kinds whose attrs carry ``cycles`` / ``cycles_saved`` and are
#: aggregated exactly (ring overwrites never lose these totals)
CHECK_KINDS = ("check-assign", "check-read",
               "check-elide-assign", "check-elide-read")

#: kinds eligible for the 1-in-N sampling tier: the per-event volume
#: producers.  Everything else (region/thread lifecycle, GC, faults) is
#: low-volume and always stored, so causal context never samples away.
HIGH_VOLUME_KINDS = frozenset(CHECK_KINDS + ("alloc",))

#: every kind the runtime emits, for schema validation and docs; the
#: analyzer tolerates unknown kinds (forward compatibility), the
#: validator only warns on them
KNOWN_KINDS = (
    "region-created", "region-enter", "region-exit",
    "region-flushed", "region-destroyed",
    "alloc", "policy", "vt-spill",
    "portal-read", "portal-write",
    "thread-spawned", "thread-finished", "thread-aborted",
    "gc", "fault-injected", "recovery",
) + CHECK_KINDS


@dataclass
class FlightRecord:
    """One flight-recorder entry."""

    __slots__ = ("id", "parent", "cycle", "thread", "kind", "subject",
                 "attrs")

    id: int          # 1-based, strictly increasing, survives the ring
    parent: int      # causal parent's id; 0 = root event
    cycle: int       # simulated clock at emission
    thread: str
    kind: str
    subject: str
    attrs: Optional[Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"id": self.id, "parent": self.parent,
                               "cycle": self.cycle, "thread": self.thread,
                               "kind": self.kind, "subject": self.subject}
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlightRecord":
        return cls(id=int(data["id"]), parent=int(data.get("parent", 0)),
                   cycle=int(data["cycle"]), thread=str(data["thread"]),
                   kind=str(data["kind"]), subject=str(data["subject"]),
                   attrs=data.get("attrs"))


class FlightRecorder:
    """The bounded, causal event log of one simulated run.

    Hot paths test ``recorder is None`` (the machine hands subsystems
    ``None`` when recording is off), so a :class:`FlightRecorder`
    instance only ever exists on runs that asked for it.  The ``enabled``
    class flag lets callers hand in a :class:`NullFlightRecorder` and
    have the machine treat it as "off".
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sample: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"flight-recorder capacity must be positive,"
                             f" got {capacity}")
        if sample < 1:
            raise ValueError(f"flight-recorder sample stride must be "
                             f">= 1, got {sample}")
        self.capacity = capacity
        #: 1-in-N sampling stride for :data:`HIGH_VOLUME_KINDS`.  The
        #: aggregate counters below are maintained for *every* event —
        #: sampling thins only the stored window, never the ledger.
        #: Deterministic (per-kind counters, no RNG), so sampled
        #: recording stays cycle-neutral and replay-stable.
        self.sample = sample
        self._ring: List[Optional[FlightRecord]] = [None] * capacity
        #: records ever *stored* (ids run 1..total; the ring holds the
        #: newest ``min(total, capacity)``)
        self.total = 0
        #: every event seen, stored or sampled out — the exact universe
        self.events_seen = 0
        #: high-volume events skipped by the sampling stride
        self.sampled_out = 0
        #: host seconds spent inside the recording path (self-measured;
        #: exported as repro_observability_overhead_seconds)
        self.overhead_s = 0.0
        #: per-kind event counts — aggregate, never evicted or sampled
        self.kind_counts: Dict[str, int] = {}
        #: per-check-kind ``[count, cycles]`` totals (``cycles`` is the
        #: cost charged for performed checks, the cost *saved* for
        #: elided ones) — the exact input to the elimination ledger
        self.check_totals: Dict[str, List[int]] = {}
        #: per-kind counters driving the deterministic sample stride
        self._hv_seen: Dict[str, int] = {}
        #: per-thread stack of open context event ids (region entries,
        #: thread spawns) — the source of ``parent`` stamps
        self._context: Dict[str, List[int]] = {}
        self._stats: Optional[Any] = None

    # ------------------------------------------------------------------

    def bind_clock(self, stats: Any) -> None:
        """Point the recorder at the run's ``Stats`` so records emitted
        by layers without clock access (memory areas) are stamped."""
        self._stats = stats

    def _now(self) -> int:
        stats = self._stats
        return stats.cycles if stats is not None else 0

    # ------------------------------------------------------------------

    def record(self, kind: str, subject: str,
               cycle: Optional[int] = None, thread: str = "main",
               attrs: Optional[Dict[str, Any]] = None,
               parent: Optional[int] = None) -> int:
        """Append one record; returns its id (0 when sampled out).

        Aggregates (``kind_counts``, ``check_totals``) update for every
        event regardless of sampling — only ring storage is thinned."""
        start = _perf()
        self.events_seen += 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if attrs is not None and kind.startswith("check-"):
            totals = self.check_totals.get(kind)
            if totals is None:
                totals = self.check_totals[kind] = [0, 0]
            totals[0] += 1
            cycles = attrs.get("cycles")
            if cycles is None:
                cycles = attrs.get("cycles_saved", 0)
            totals[1] += cycles
        if self.sample > 1 and kind in HIGH_VOLUME_KINDS:
            seen = self._hv_seen.get(kind, 0) + 1
            self._hv_seen[kind] = seen
            if seen % self.sample != 1:
                self.sampled_out += 1
                self.overhead_s += _perf() - start
                return 0
        if cycle is None:
            cycle = self._now()
        if parent is None:
            stack = self._context.get(thread)
            parent = stack[-1] if stack else 0
        eid = self.total + 1
        self.total = eid
        self._ring[(eid - 1) % self.capacity] = FlightRecord(
            eid, parent, cycle, thread, kind, subject, attrs)
        self.overhead_s += _perf() - start
        return eid

    def push(self, kind: str, subject: str,
             cycle: Optional[int] = None, thread: str = "main",
             attrs: Optional[Dict[str, Any]] = None) -> int:
        """Record an event and open it as the thread's causal context
        (region entries)."""
        eid = self.record(kind, subject, cycle, thread, attrs)
        self._context.setdefault(thread, []).append(eid)
        return eid

    def pop(self, kind: str, subject: str,
            cycle: Optional[int] = None, thread: str = "main",
            attrs: Optional[Dict[str, Any]] = None) -> int:
        """Record an event parented to the innermost open context, then
        close that context (region exits)."""
        eid = self.record(kind, subject, cycle, thread, attrs)
        stack = self._context.get(thread)
        if stack:
            stack.pop()
        return eid

    def seed(self, thread: str, parent_id: int) -> None:
        """Set a new thread's causal root (its spawn event)."""
        self._context[thread] = [parent_id]

    # ------------------------------------------------------------------

    @property
    def stored(self) -> int:
        return min(self.total, self.capacity)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring (oldest-first)."""
        return max(0, self.total - self.capacity)

    def records(self) -> List[FlightRecord]:
        """The surviving window, oldest first."""
        if self.total <= self.capacity:
            return [r for r in self._ring[:self.total]]
        idx = self.total % self.capacity
        return [r for r in self._ring[idx:] + self._ring[:idx]]

    def kinds(self) -> Dict[str, int]:
        return dict(self.kind_counts)

    def header(self, meta: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "capacity": self.capacity,
            "total": self.total,
            "stored": self.stored,
            "dropped": self.dropped,
            "sample": self.sample,
            "events_seen": self.events_seen,
            "sampled_out": self.sampled_out,
            "overhead_s": round(self.overhead_s, 6),
            "kind_counts": dict(self.kind_counts),
            "check_totals": {k: list(v)
                             for k, v in self.check_totals.items()},
        }
        if meta:
            out["meta"] = meta
        return out


class NullFlightRecorder(FlightRecorder):
    """A recorder that records nothing; ``enabled = False`` makes the
    machine treat it as recording-off (no hooks compiled in)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, kind: str, subject: str,
               cycle: Optional[int] = None, thread: str = "main",
               attrs: Optional[Dict[str, Any]] = None,
               parent: Optional[int] = None) -> int:
        return 0

    def push(self, kind: str, subject: str,
             cycle: Optional[int] = None, thread: str = "main",
             attrs: Optional[Dict[str, Any]] = None) -> int:
        return 0

    def pop(self, kind: str, subject: str,
            cycle: Optional[int] = None, thread: str = "main",
            attrs: Optional[Dict[str, Any]] = None) -> int:
        return 0

    def seed(self, thread: str, parent_id: int) -> None:
        pass


# ---------------------------------------------------------------------------
# persistence: JSON Lines (header object + one line per record)
# ---------------------------------------------------------------------------

def flight_lines(recorder: FlightRecorder,
                 meta: Optional[Dict[str, Any]] = None):
    """The dump as JSON Lines (no trailing newlines)."""
    yield json.dumps(recorder.header(meta), sort_keys=True)
    for record in recorder.records():
        yield json.dumps(record.to_dict(), sort_keys=True)


def dump_flight(recorder: FlightRecorder, dest: Union[str, IO[str]],
                meta: Optional[Dict[str, Any]] = None) -> int:
    """Write the flight record to a path or open file; returns the
    number of lines written (header included)."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as handle:
            return dump_flight(recorder, handle, meta)
    n = 0
    for line in flight_lines(recorder, meta):
        dest.write(line + "\n")
        n += 1
    return n


def load_flight(path: Union[str, IO[str]]
                ) -> Tuple[Dict[str, Any], List[FlightRecord]]:
    """Read a dump back: (header, records)."""
    if isinstance(path, str):
        with open(path, "r", encoding="utf-8") as handle:
            return load_flight(handle)
    lines = [line for line in path if line.strip()]
    if not lines:
        raise ValueError("empty flight record")
    header = json.loads(lines[0])
    schema = header.get("schema")
    if schema != FLIGHT_SCHEMA:
        raise ValueError(f"unsupported flight-record schema {schema!r} "
                         f"(expected {FLIGHT_SCHEMA})")
    records = [FlightRecord.from_dict(json.loads(line))
               for line in lines[1:]]
    return header, records


def validate_flight(header: Dict[str, Any],
                    records: List[FlightRecord]) -> List[str]:
    """Schema and invariant checks on a loaded dump.  Returns the list
    of problems (empty = valid)."""
    problems: List[str] = []
    if header.get("schema") != FLIGHT_SCHEMA:
        problems.append(
            f"schema {header.get('schema')!r} != {FLIGHT_SCHEMA!r}")
    stored = header.get("stored")
    if stored is not None and stored != len(records):
        problems.append(
            f"header claims {stored} stored records, file has "
            f"{len(records)}")
    last_id, last_cycle = 0, 0
    for record in records:
        if record.id <= last_id:
            problems.append(
                f"record ids not strictly increasing at id={record.id}")
            break
        if record.parent >= record.id:
            problems.append(
                f"record {record.id} has non-causal parent "
                f"{record.parent}")
            break
        if record.cycle < last_cycle:
            problems.append(
                f"record {record.id} travels back in time "
                f"({record.cycle} < {last_cycle})")
            break
        if not record.kind or not record.thread:
            problems.append(f"record {record.id} missing kind/thread")
            break
        last_id, last_cycle = record.id, record.cycle
    return problems
