"""Registry of the benchmark programs (Figure 11 / Figure 12 rows)."""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Benchmark:
    """One benchmark program: name, module path, and the paper's
    reference numbers for Figures 11 and 12."""

    name: str
    module: str
    #: Figure 11 — paper's lines of code / lines changed
    paper_loc: Optional[int]
    paper_lines_changed: Optional[int]
    #: Figure 12 — paper's dynamic/static execution-time ratio
    paper_overhead: Optional[float]
    kind: str  # 'micro' | 'scientific' | 'pipeline' | 'server'

    def load(self):
        return importlib.import_module(self.module)

    def source(self, fast: bool = False, **params) -> str:
        mod = self.load()
        merged = dict(mod.FAST_PARAMS if fast else mod.DEFAULT_PARAMS)
        merged.update(params)
        return mod.source(**merged)

    def expected_output(self) -> Optional[List[str]]:
        return getattr(self.load(), "EXPECTED_OUTPUT", None)


_P = "repro.bench.programs"

BENCHMARKS: Dict[str, Benchmark] = {b.name: b for b in [
    Benchmark("Array", f"{_P}.array_bench", 56, 4, 7.23, "micro"),
    Benchmark("Tree", f"{_P}.tree_bench", 83, 8, 4.83, "micro"),
    Benchmark("Water", f"{_P}.water", 1850, 31, 1.24, "scientific"),
    Benchmark("Barnes", f"{_P}.barnes", 1850, 16, 1.13, "scientific"),
    Benchmark("ImageRec", f"{_P}.imagerec", 567, 8, 1.21, "pipeline"),
    Benchmark("http", f"{_P}.http_server", 603, 20, 1.0, "server"),
    Benchmark("game", f"{_P}.game", 97, 10, 1.0, "server"),
    Benchmark("phone", f"{_P}.phone", 244, 24, 1.0, "server"),
]}

#: the ImageRec pipeline stages reported as separate Figure 12 rows
IMAGEREC_STAGES = ["load", "cross", "threshold", "hysteresis", "thinning",
                   "save"]

#: paper's per-stage overheads (Figure 12)
PAPER_STAGE_OVERHEAD = {
    "load": 1.25, "cross": 1.0, "threshold": 1.0, "hysteresis": 1.2,
    "thinning": 1.1, "save": 1.18,
}


def get_benchmark(name: str) -> Benchmark:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark '{name}'; known: {sorted(BENCHMARKS)}")
