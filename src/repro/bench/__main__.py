"""``python -m repro.bench`` — regenerate Figures 11 and 12 on stdout."""

from __future__ import annotations

import argparse
import json

from .overhead import figure11, format_figure11
from .timing import figure12, figure12_dict, format_figure12


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables.")
    parser.add_argument("--fast", action="store_true",
                        help="use the reduced problem sizes")
    parser.add_argument("--only", choices=["fig11", "fig12"],
                        help="print just one table")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    args = parser.parse_args(argv)

    if args.json:
        payload = {}
        if args.only in (None, "fig12"):
            payload["figure12"] = figure12_dict(figure12(fast=args.fast))
        if args.only in (None, "fig11"):
            payload["figure11"] = figure11(fast=args.fast)
        print(json.dumps(payload, indent=2))
        return 0

    if args.only in (None, "fig12"):
        print("Figure 12 — dynamic checking overhead "
              "(simulated cycles)")
        print(format_figure12(figure12(fast=args.fast)))
        print()
    if args.only in (None, "fig11"):
        print("Figure 11 — programming overhead")
        print(format_figure11(figure11(fast=args.fast)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
