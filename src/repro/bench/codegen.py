"""Differential wall-clock benchmark of the codegen backends.

Two jobs in one suite:

* **Equivalence gate** — every backend run is compared against the
  interpreter reference on the same analyzed program: simulated
  cycles, output bytes (sha256) and the full ``Stats.summary()`` must
  be identical.  Any divergence is a hard failure (exit 3 from
  ``repro bench --suite codegen``) — the backends promise
  byte-identical observable behaviour, not "roughly the same".
* **Speedup ledger** — wall time per backend, per benchmark and mode,
  plus the aggregate static-mode speedup against the *committed seed
  interpreter baseline* (the ``BENCH_interp.json`` numbers from
  before any codegen work, embedded below so the comparison is stable
  across machines re-measuring the interpreter).  ``--min-speedup``
  turns the aggregate into a gate.

Backend rows record what actually executed: a program the requested
backend cannot compile falls down the capability ladder
(c -> py-fused -> py-faithful -> interpreter), and the row's
``backend_used``/``fallback`` fields say so.  A host without a C
toolchain (or cffi) gets ``skipped`` C rows, never failures — CI
equivalence coverage for C lives on hosts that have one.

The C backend is checks-erased by design, so it is only measured in
static mode; dynamic-mode rows are measured for the py backend.
"""

from __future__ import annotations

import dataclasses
import hashlib
import platform
import time
from typing import Any, Dict, Iterable, List, Optional

from ..core.api import analyze
from ..interp.machine import RunOptions, execute
from .compare import (check_exact, check_missing, check_wall, collect,
                      load_payload, save_payload)
from .suite import BENCHMARKS

__all__ = ["SCHEMA", "MODES", "DEFAULT_BACKENDS", "SEED_STATIC_WALL_S",
           "measure", "compare", "format_table", "load_payload",
           "save_payload"]

SCHEMA = "repro-bench-codegen/1"

#: mode name -> checks_enabled
MODES = {"dynamic": True, "static": False}

#: backends measured by default ("c" auto-skips without a toolchain)
DEFAULT_BACKENDS = ("py", "c")

#: static-mode wall seconds of the committed seed interpreter baseline
#: (BENCH_interp.json, pre-codegen).  The >=10x acceptance target for
#: the py backend is judged against the sum of these.
SEED_STATIC_WALL_S = {
    "Array": 0.004833,
    "Barnes": 0.089309,
    "ImageRec": 0.028715,
    "Tree": 0.009460,
    "Water": 0.007830,
    "game": 0.002911,
    "http": 0.001832,
    "phone": 0.003186,
}


def _options(enabled: bool, backend: str) -> RunOptions:
    return RunOptions(checks_enabled=enabled, validate=False,
                      instrument=False, backend=backend)


def _run_best(analyzed, options: RunOptions, repeats: int):
    """Best-of-``repeats`` wall time (min: timer noise is additive)."""
    best = None
    result = machine = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result, machine = execute(
            analyzed, dataclasses.replace(options))
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result, machine


def _row(wall: float, result) -> Dict[str, Any]:
    digest = hashlib.sha256(
        "\n".join(result.output).encode()).hexdigest()
    return {
        "wall_s": round(wall, 6),
        "cycles": result.stats.cycles,
        "mcycles_per_s": round(result.stats.cycles / wall / 1e6, 3)
        if wall else 0.0,
        "output_sha256": digest,
        "steps": result.stats.steps,
    }


def measure_benchmark(name: str, backends: Iterable[str],
                      fast: bool = True, repeats: int = 3,
                      divergences: Optional[List[str]] = None
                      ) -> Dict[str, Any]:
    """One benchmark across modes and backends, with the interpreter
    reference row and per-backend equivalence verdicts."""
    bench = BENCHMARKS[name]
    analyzed = analyze(bench.source(fast=fast))
    if analyzed.errors:
        raise analyzed.errors[0]
    out: Dict[str, Any] = {}
    for mode, enabled in MODES.items():
        wall, ref, _m = _run_best(analyzed, _options(enabled, "interp"),
                                  repeats)
        rows: Dict[str, Any] = {"interp": _row(wall, ref)}
        ref_summary = ref.stats.summary()
        for backend in backends:
            if backend == "c" and enabled:
                # checks-erased by design: dynamic mode is py territory
                rows[backend] = {"skipped":
                                 "checks-erased (static mode only)"}
                continue
            wall_b, res, machine = _run_best(
                analyzed, _options(enabled, backend), repeats)
            used = (machine.program.backend
                    if machine.program is not None else "interp")
            row = _row(wall_b, res)
            row["backend_used"] = used
            if machine.codegen_fallback:
                row["fallback"] = machine.codegen_fallback
            if backend == "c" and used != "c":
                note = machine.codegen_fallback or "unsupported"
                if ("toolchain" in note or "cffi" in note
                        or "cc failed" in note):
                    # environmental, not a program property: skip
                    rows[backend] = {"skipped": note}
                    continue
            equivalent = (res.stats.cycles == ref.stats.cycles
                          and res.output == ref.output
                          and res.stats.summary() == ref_summary)
            row["equivalent"] = equivalent
            if not equivalent and divergences is not None:
                divergences.append(
                    f"{name}/{mode}/{backend}: cycles "
                    f"{ref.stats.cycles} -> {res.stats.cycles}, "
                    f"output "
                    f"{'same' if res.output == ref.output else 'DIFFERS'}")
            row["speedup_vs_interp"] = (round(wall / wall_b, 2)
                                        if wall_b else 0.0)
            rows[backend] = row
        out[mode] = rows
    return out


def measure(names: Optional[Iterable[str]] = None,
            backends: Optional[Iterable[str]] = None,
            fast: bool = True, repeats: int = 3) -> Dict[str, Any]:
    """Run the (selected) registry and return the payload."""
    selected = list(names) if names is not None else list(BENCHMARKS)
    chosen = tuple(backends) if backends else DEFAULT_BACKENDS
    divergences: List[str] = []
    results = {name: measure_benchmark(name, chosen, fast=fast,
                                       repeats=repeats,
                                       divergences=divergences)
               for name in selected}
    aggregate: Dict[str, Any] = {}
    seed_total = sum(SEED_STATIC_WALL_S[n] for n in selected
                     if n in SEED_STATIC_WALL_S)
    interp_total = sum(results[n]["static"]["interp"]["wall_s"]
                       for n in selected)
    for backend in chosen:
        rows = [results[n]["static"].get(backend) for n in selected]
        live = [r for r in rows if r and "wall_s" in r]
        if not live or len(live) != len(rows):
            # a skipped row would understate the aggregate: only report
            # aggregates over full coverage
            aggregate[backend] = {"skipped": "incomplete coverage"}
            continue
        total = sum(r["wall_s"] for r in live)
        aggregate[backend] = {
            "static_wall_s": round(total, 6),
            "speedup_vs_seed": (round(seed_total / total, 2)
                                if total and seed_total else 0.0),
            "speedup_vs_interp": (round(interp_total / total, 2)
                                  if total else 0.0),
        }
    return {
        "schema": SCHEMA,
        "fast": fast,
        "repeats": repeats,
        "python": platform.python_version(),
        "backends": list(chosen),
        "benchmarks": results,
        "seed": {"static_wall_s": dict(SEED_STATIC_WALL_S),
                 "total_static_wall_s": round(seed_total, 6)},
        "aggregate": aggregate,
        "divergences": divergences,
    }


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            threshold: float = 0.30) -> List[str]:
    """Regression check against a committed payload.

    * any recorded divergence in the *current* payload → hard failure;
    * simulated-cycle drift on any benchmark/mode/backend vs the
      baseline → hard failure (determinism break);
    * wall-clock beyond ``threshold`` slower on the interp and py rows
      → regression.  C rows are compared only when neither side
      skipped (toolchain availability is environmental).
    """
    failures: List[str] = list(current.get("divergences") or [])
    base_rows = baseline.get("benchmarks", {})
    cur_rows = current.get("benchmarks", {})
    for name, base_row in base_rows.items():
        cur_row = cur_rows.get(name)
        if cur_row is None:
            failures.append(check_missing(name))
            continue
        for mode in MODES:
            for backend, base_cell in (base_row.get(mode) or {}).items():
                cur_cell = (cur_row.get(mode) or {}).get(backend)
                if (not isinstance(base_cell, dict)
                        or "wall_s" not in base_cell):
                    continue
                if cur_cell is None or "wall_s" not in cur_cell:
                    if backend == "c":
                        continue
                    failures.append(check_missing(
                        f"{name}/{mode}/{backend}"))
                    continue
                collect(failures, check_exact(
                    f"{name}/{mode}/{backend}", "simulated cycles",
                    base_cell.get("cycles"), cur_cell.get("cycles")))
                if backend != "c":
                    collect(failures, check_wall(
                        f"{name}/{mode}/{backend}",
                        base_cell.get("wall_s") or 0.0,
                        cur_cell.get("wall_s") or 0.0, threshold))
    return failures


def check_min_speedup(payload: Dict[str, Any], backend: str,
                      minimum: float) -> List[str]:
    """The acceptance gate: aggregate static speedup vs the seed."""
    agg = (payload.get("aggregate") or {}).get(backend) or {}
    speedup = agg.get("speedup_vs_seed")
    if speedup is None:
        return [f"aggregate/{backend}: no speedup recorded "
                f"({agg.get('skipped', 'missing')})"]
    if speedup < minimum:
        return [f"aggregate/{backend}: {speedup}x vs seed baseline "
                f"is below the {minimum}x floor"]
    return []


def format_table(payload: Dict[str, Any],
                 baseline: Optional[Dict[str, Any]] = None) -> str:
    """Aligned text rendering (baseline accepted for CLI symmetry with
    the other suites; speedups here are intra-payload)."""
    del baseline
    lines = [f"{'benchmark':<10} {'mode':<8} {'backend':<8} "
             f"{'wall s':>10} {'cycles':>10} {'vs interp':>9}  note"]
    for name, row in payload.get("benchmarks", {}).items():
        for mode in MODES:
            cells = row.get(mode) or {}
            for backend in ["interp"] + list(payload.get("backends", [])):
                cell = cells.get(backend)
                if cell is None:
                    continue
                if "skipped" in cell:
                    lines.append(f"{name:<10} {mode:<8} {backend:<8} "
                                 f"{'-':>10} {'-':>10} {'-':>9}  "
                                 f"skipped: {cell['skipped']}")
                    continue
                speed = cell.get("speedup_vs_interp")
                note = cell.get("backend_used", "")
                if note == backend:
                    note = ""
                if cell.get("equivalent") is False:
                    note = (note + " DIVERGED").strip()
                lines.append(
                    f"{name:<10} {mode:<8} {backend:<8} "
                    f"{cell['wall_s']:>10.6f} {cell['cycles']:>10} "
                    f"{(f'{speed:.2f}x' if speed else '-'):>9}  {note}")
    for backend, agg in (payload.get("aggregate") or {}).items():
        if "skipped" in agg:
            lines.append(f"aggregate  static   {backend:<8} "
                         f"skipped: {agg['skipped']}")
        else:
            lines.append(
                f"aggregate  static   {backend:<8} "
                f"{agg['static_wall_s']:>10.6f} {'':>10} "
                f"{agg['speedup_vs_interp']:>8.2f}x  "
                f"{agg['speedup_vs_seed']:.2f}x vs seed")
    return "\n".join(lines)
