"""The serve resilience gate: ``repro bench --suite serve-chaos``.

Runs a full seeded chaos campaign against a live service
(:mod:`repro.serve.chaos`) — worker kills, stalls, pipe failures,
torn cache shards, latency spikes — then re-runs the recorded fault
schedule under replay and demands the same identity bit for bit.  The
payload records what a resilient service must prove:

* **zero lost requests** — every admitted request ended in a
  correct-or-honest answer (the campaign's client retries through
  crashes and brownouts; a final non-200 is a contract violation);
* **byte parity on every success** — a served body that diverges from
  direct CLI execution means a corrupt shard or stale tier leaked;
* **self-healing** — every killed/wedged worker respawned, torn
  shards quarantined on disk, and the degradation ladder rode
  healthy → brownout → healthy (read off ``/metrics``);
* **bit-for-bit replay** — the same plan re-fired at the recorded
  (site, seq) points reproduces the same fault key, statuses, and
  response digests.

``compare()`` against the committed ``BENCH_serve_chaos.json`` pins
the *deterministic* quantities exactly — per-site fault counts and the
schedule size are pure functions of (traffic, seed), so any drift
means the dispatch path changed semantically.  Wall-clock and
transition counts are reported but never judged: both depend on how
long brownouts lasted on this host.
"""

from __future__ import annotations

import platform
from typing import Any, Dict, List, Optional

from .compare import (check_exact, collect, load_payload,
                      save_payload)

__all__ = ["SCHEMA", "measure", "compare", "format_table",
           "check_gate", "load_payload", "save_payload"]

SCHEMA = "repro-bench-serve-chaos/1"

DEFAULT_REQUESTS = 32
DEFAULT_SEED = 3


def measure(requests: int = DEFAULT_REQUESTS, workers: int = 2,
            seed: int = DEFAULT_SEED, fast: bool = True,
            verify: bool = True) -> Dict[str, Any]:
    from ..serve.chaos import run_serve_chaos

    report = run_serve_chaos(seed=seed, requests=requests,
                             workers=workers, verify=verify,
                             fast=fast)
    statuses: Dict[str, int] = {}
    for row in report["results"]:
        key = str(row["status"])
        statuses[key] = statuses.get(key, 0) + 1
    divergences: List[str] = list(report["failures"])
    divergences += [f"replay: {m}"
                    for m in report.get("replay_mismatches") or []]
    divergences += [f"replay-run: {m}"
                    for m in report.get("replay_failures") or []]
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "seed": seed,
        "requested": requests,
        "requests": report["requests"],
        "workers": workers,
        "wall_s": report["wall_s"],
        "faults": report["faults"],
        "fault_total": report["fault_total"],
        "statuses": statuses,
        "contract": report["contract"],
        "campaign_status": report["status"],
        "replay_ok": report.get("replay_ok"),
        "divergences": divergences,
    }
    return payload


def check_gate(payload: Dict[str, Any]) -> List[str]:
    """The structural resilience contract, judged from the payload
    alone (defense in depth on top of the recorded divergences)."""
    contract = payload.get("contract") or {}
    failures: List[str] = []
    lost = contract.get("lost_requests")
    if lost:
        failures.append(f"{lost} admitted request(s) lost "
                        f"(non-200 final status)")
    parity = contract.get("parity_failures")
    if parity:
        failures.append(f"{parity} served response(s) diverged from "
                        f"CLI execution (determinism break)")
    if contract.get("workers_alive", 0) < payload.get("workers", 0):
        failures.append("not every killed worker respawned")
    if not contract.get("recovered_healthy"):
        failures.append("service did not return to the healthy rung")
    faults = payload.get("faults") or {}
    if faults.get("cache_corrupt", 0) > 0 \
            and contract.get("quarantined_shards", 0) < 1:
        failures.append("torn shard was not quarantined")
    if payload.get("fault_total", 0) > 0 \
            and (contract.get("transitions_down", 0) < 1
                 or contract.get("transitions_up", 0) < 1):
        failures.append("healthy->brownout->healthy arc missing "
                        "from /metrics")
    if payload.get("replay_ok") is False:
        failures.append("campaign did not replay bit-for-bit")
    return failures


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            threshold: float = 0.30) -> List[str]:
    """Regression check against the committed payload.  The fault
    schedule is a pure function of (seed, traffic), so per-site counts
    compare exactly; timing and transition counts are host-dependent
    and stay unjudged."""
    del threshold  # no wall-clock judgments in this suite
    failures: List[str] = list(current.get("divergences") or [])
    failures += check_gate(current)
    for name, quantity in (("seed", "campaign seed"),
                           ("requested", "requested traffic"),
                           ("fault_total", "total injected faults")):
        collect(failures, check_exact(
            "campaign", quantity,
            baseline.get(name), current.get(name)))
    base_faults = baseline.get("faults") or {}
    cur_faults = current.get("faults") or {}
    for site in sorted(set(base_faults) | set(cur_faults)):
        collect(failures, check_exact(
            site, "injected fault count",
            base_faults.get(site, 0), cur_faults.get(site, 0)))
    collect(failures, check_exact(
        "campaign", "lost requests",
        (baseline.get("contract") or {}).get("lost_requests"),
        (current.get("contract") or {}).get("lost_requests")))
    return failures


def format_table(payload: Dict[str, Any],
                 baseline: Optional[Dict[str, Any]] = None) -> str:
    del baseline  # judgments live in compare(); the table is absolute
    contract = payload.get("contract") or {}
    faults = payload.get("faults") or {}
    lines = [f"{'fault site':<16} {'injected':>9}"]
    for site in sorted(faults):
        lines.append(f"{site:<16} {faults[site]:>9}")
    lines.append(
        f"campaign   {payload.get('requests', 0)} requests "
        f"({payload.get('fault_total', 0)} faults) in "
        f"{payload.get('wall_s', 0)}s -> "
        f"{payload.get('campaign_status')}")
    lines.append(
        f"contract   lost={contract.get('lost_requests')} "
        f"parity_breaks={contract.get('parity_failures')} "
        f"respawns={contract.get('worker_restarts')} "
        f"quarantined={contract.get('quarantined_shards')}")
    lines.append(
        f"ladder     down={contract.get('transitions_down')} "
        f"up={contract.get('transitions_up')} "
        f"final={contract.get('final_rung')} "
        f"recovered={contract.get('recovered_healthy')}")
    replay = payload.get("replay_ok")
    lines.append(f"replay     "
                 f"{'bit-for-bit' if replay else 'NOT VERIFIED' if replay is None else 'MISMATCH'}")
    for failure in payload.get("divergences") or []:
        lines.append(f"DIVERGENCE {failure}")
    return "\n".join(lines)
