"""Figure 12 — dynamic checking overhead.

Runs each benchmark twice on the simulated platform: once with the RTSJ
dynamic checks performed and charged ("Dynamic Checks"), once with them
compiled out ("Static Checks"), and reports the cycle counts and their
ratio next to the paper's measured overheads.  Output determinism is
asserted: both runs must print exactly the same thing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.api import analyze
from ..interp.machine import RunOptions, run_source


@dataclass
class CheckOverheadRow:
    name: str
    static_cycles: int
    dynamic_cycles: int
    assignment_checks: int
    read_checks: int
    paper_overhead: Optional[float]
    static_wall: float
    dynamic_wall: float

    @property
    def overhead(self) -> float:
        return (self.dynamic_cycles / self.static_cycles
                if self.static_cycles else float("nan"))


def measure_check_overhead(source: str, name: str = "?",
                           paper_overhead: Optional[float] = None,
                           expected_output: Optional[List[str]] = None,
                           **option_overrides) -> CheckOverheadRow:
    """Run ``source`` in both modes and return the Figure 12 row."""
    analyzed = analyze(source)
    if analyzed.errors:
        raise analyzed.errors[0]

    def run(enabled: bool):
        opts = RunOptions(checks_enabled=enabled, validate=False,
                          **option_overrides)
        start = time.perf_counter()
        result = run_source(analyzed, opts)
        return result, time.perf_counter() - start

    dynamic, dyn_wall = run(True)
    static, sta_wall = run(False)
    if dynamic.output != static.output:
        raise AssertionError(
            f"{name}: nondeterministic output between modes: "
            f"{dynamic.output!r} vs {static.output!r}")
    if expected_output is not None and static.output != expected_output:
        raise AssertionError(
            f"{name}: wrong output {static.output!r}, expected "
            f"{expected_output!r}")
    return CheckOverheadRow(
        name=name,
        static_cycles=static.cycles,
        dynamic_cycles=dynamic.cycles,
        assignment_checks=dynamic.stats.assignment_checks,
        read_checks=dynamic.stats.read_checks,
        paper_overhead=paper_overhead,
        static_wall=sta_wall,
        dynamic_wall=dyn_wall,
    )


def figure12(fast: bool = True,
             programs: Optional[List[str]] = None) -> List[CheckOverheadRow]:
    """Regenerate Figure 12: every benchmark plus the six ImageRec
    pipeline stages."""
    from .suite import (BENCHMARKS, IMAGEREC_STAGES, PAPER_STAGE_OVERHEAD)
    rows: List[CheckOverheadRow] = []
    selected = programs or list(BENCHMARKS)
    for name in selected:
        bench = BENCHMARKS[name]
        rows.append(measure_check_overhead(
            bench.source(fast=fast), bench.name,
            paper_overhead=bench.paper_overhead,
            expected_output=bench.expected_output()))
        if name == "ImageRec":
            mod = bench.load()
            for stage in IMAGEREC_STAGES:
                rows.append(measure_check_overhead(
                    bench.source(fast=fast, stage=stage),
                    f"  {stage}",
                    paper_overhead=PAPER_STAGE_OVERHEAD.get(stage),
                    expected_output=mod.stage_expected_output(stage)))
    return rows


def format_figure12(rows: List[CheckOverheadRow]) -> str:
    header = (f"{'Program':<12} {'Static':>12} {'Dynamic':>12} "
              f"{'Overhead':>9} {'Paper':>6}   {'#assign':>8} "
              f"{'#read':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = (f"{row.paper_overhead:.2f}"
                 if row.paper_overhead is not None else "-")
        lines.append(
            f"{row.name:<12} {row.static_cycles:>12} "
            f"{row.dynamic_cycles:>12} {row.overhead:>9.2f} "
            f"{paper:>6}   {row.assignment_checks:>8} "
            f"{row.read_checks:>7}")
    return "\n".join(lines)


def figure12_dict(rows: List[CheckOverheadRow]) -> List[Dict]:
    return [
        {
            "program": row.name.strip(),
            "static_cycles": row.static_cycles,
            "dynamic_cycles": row.dynamic_cycles,
            "overhead": round(row.overhead, 3),
            "paper_overhead": row.paper_overhead,
        }
        for row in rows
    ]
