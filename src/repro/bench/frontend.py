"""Wall-clock benchmark of the static frontend (parse → infer → check).

The interpreter benchmark (:mod:`repro.bench.wallclock`) guards the
runtime hot loop; this module guards the *frontend* hot path that the
performance work in ``docs/PERFORMANCE.md`` optimises: interned
owners/types, memoized substitution and relation queries, the regex
lexer, and the content-addressed :class:`repro.core.cache.AnalysisCache`.

Two quantities per program size:

* ``cold_s`` — a full ``analyze()`` with no cache (the first-open cost);
* ``warm_s`` — re-analysis after editing one class body, with a
  populated :class:`~repro.core.cache.AnalysisCache` (the keystroke
  cost).  Only the edited class is re-parsed, re-inferred, and
  re-checked; everything else replays.

Results go into ``BENCH_frontend.json`` at the repo root; ``compare()``
fails CI when cold analysis regresses beyond a threshold or when the
warm/cold speedup collapses (the cache silently degrading to
recompute-everything is a correctness-of-purpose bug even though the
output stays right).  The committed payload's ``baseline`` section
preserves the numbers from before the frontend work for context; it is
informational and never compared against.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any, Dict, Iterable, List, Optional

from ..core.api import analyze
from ..core.cache import AnalysisCache
from .compare import (check_exact, check_missing, check_wall, collect,
                      load_payload, save_payload)

__all__ = ["SCHEMA", "SIZES", "MIN_WARM_SPEEDUP", "synth_program",
           "edit_one_class", "measure", "measure_size", "compare",
           "format_table", "load_payload", "save_payload"]

#: payload schema identifier (bump when the JSON layout changes)
SCHEMA = "repro-bench-frontend/1"

#: program sizes (class count) measured by default
SIZES = (5, 20, 40)

#: warm/cold speedup floor checked by compare(); the incremental cache
#: on a one-class edit of a 40-class program must stay well above 1x
MIN_WARM_SPEEDUP = 3.0


def synth_program(n_classes: int, methods_per_class: int = 3) -> str:
    """A well-typed program with ``n_classes`` linked classes.

    Shared with ``benchmarks/test_checker_scalability.py``: each class
    carries fields, ``accesses`` clauses, region blocks, and a local
    whose type is inferred, so the generated text exercises parsing,
    defaults/inference, and every per-class checking judgment.
    """
    parts = ["class Cell<Owner o> { int v; Cell<o> next; }"]
    for i in range(n_classes):
        methods = []
        for j in range(methods_per_class):
            methods.append(f"""
    int work{j}(int x) accesses o, heap {{
        Cell<o> local = new Cell<o>;
        local.v = x * {j + 1};
        held = local;
        (RHandle<r{j}> h{j}) {{
            Cell<r{j}> scratch = new Cell<r{j}>;
            scratch.v = local.v + {i};
            Cell inferredLocal = scratch;
            inferredLocal.next = scratch;
        }}
        return local.v;
    }}""")
        parts.append(f"""
class Worker{i}<Owner o> {{
    Cell<o> held;
    {''.join(methods)}
}}""")
    body = "\n".join(
        f"    Worker{i}<r> w{i} = new Worker{i}<r>;"
        f" int v{i} = w{i}.work0({i});"
        for i in range(min(n_classes, 20)))
    parts.append(f"(RHandle<r> h) {{\n{body}\n}}")
    return "\n".join(parts)


def edit_one_class(source: str) -> str:
    """The canonical one-class edit: change one method-body constant.

    The edit alters a single class's chunk text without touching any
    signature, so a correct incremental cache re-analyses exactly one
    class.
    """
    needle = "scratch.v = local.v + 0;"
    edited = source.replace(needle, "scratch.v = local.v + 0 + 1;", 1)
    if edited == source:
        raise ValueError("edit needle not found in synthetic program")
    return edited


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def measure_size(size: int, repeats: int = 3,
                 cache_path: Optional[str] = None) -> Dict[str, Any]:
    """Cold and warm-incremental analysis times for one program size."""
    source = synth_program(size)
    edited = edit_one_class(source)

    cold_result = analyze(source)
    n_errors = len(cold_result.errors)
    cold_s = _best_of(lambda: analyze(source), repeats)

    # warm: alternate between the original and the edited text so every
    # timed run analyses a program that differs from the previous one by
    # exactly one class body — the steady-state keystroke cost.  The
    # prepopulation ends on `source` so the first timed run (edited)
    # already has its one-class miss.
    cache = AnalysisCache(cache_path)
    analyze(edited, cache=cache)
    analyze(source, cache=cache)
    sources = [source, edited]
    state = {"i": 0}

    def warm_run():
        state["i"] ^= 1
        result = analyze(sources[state["i"]], cache=cache)
        assert len(result.errors) == n_errors

    warm_s = _best_of(warm_run, repeats)
    stats = analyze(edited, cache=cache).cache_stats or {}
    if cache_path is not None:
        cache.save()
    return {
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s else 0.0,
        "lines": source.count("\n") + 1,
        "n_errors": n_errors,
        "warm_ast_hits": stats.get("ast_hits", 0),
    }


def measure(sizes: Optional[Iterable[int]] = None, repeats: int = 3,
            cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Measure all (selected) sizes and return the full payload.

    ``cache_dir`` backs each size's warm cache with a JSON file under
    that directory (one per size, so sizes stay independent) instead of
    keeping it in memory — the ``bench --suite frontend
    --analysis-cache DIR`` path, which also exercises the disk tier.
    """
    selected = [int(s) for s in (sizes if sizes is not None else SIZES)]
    results = {}
    for size in selected:
        path = (os.path.join(cache_dir, f"analysis-cache-{size}.json")
                if cache_dir else None)
        results[str(size)] = measure_size(size, repeats=repeats,
                                          cache_path=path)
    return {
        "schema": SCHEMA,
        "repeats": repeats,
        "python": platform.python_version(),
        "sizes": results,
    }


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            threshold: float = 0.30) -> List[str]:
    """Regression check: returns human-readable failure messages.

    * cold analysis more than ``threshold`` (fractional) slower than the
      baseline at any size → regression;
    * warm speedup below :data:`MIN_WARM_SPEEDUP` at the largest size →
      the incremental cache stopped being incremental;
    * a different error count → the synthetic corpus or checker changed
      (always an error, no threshold);
    * missing size in the current payload → error.

    Sizes present only in the baseline are compared; extra current-side
    sizes are ignored, so a baseline can be a subset.
    """
    failures: List[str] = []
    base_rows = baseline.get("sizes", {})
    cur_rows = current.get("sizes", {})
    for size, base_row in base_rows.items():
        cur_row = cur_rows.get(size)
        if cur_row is None:
            failures.append(check_missing(f"size {size}"))
            continue
        collect(failures, check_exact(
            f"size {size}", "error count",
            base_row.get("n_errors"), cur_row.get("n_errors")))
        collect(failures, check_wall(
            f"size {size}", base_row.get("cold_s") or 0.0,
            cur_row.get("cold_s") or 0.0, threshold,
            quantity="cold analysis"))
    if base_rows:
        largest = max(base_rows, key=int)
        cur_row = cur_rows.get(largest)
        if cur_row is not None:
            speedup = cur_row.get("warm_speedup") or 0.0
            if speedup < MIN_WARM_SPEEDUP:
                failures.append(
                    f"size {largest}: warm speedup {speedup:.2f}x below "
                    f"the {MIN_WARM_SPEEDUP:.1f}x floor (analysis cache "
                    f"not incremental)")
    return failures


def format_table(payload: Dict[str, Any],
                 baseline: Optional[Dict[str, Any]] = None) -> str:
    """Aligned text rendering of a payload (optionally with speedup
    columns against a baseline payload)."""
    lines = []
    header = (f"{'classes':>7} {'cold s':>10} {'warm s':>10} "
              f"{'warm x':>7} {'lines':>6}")
    if baseline is not None:
        header += f" {'vs base':>8}"
    lines.append(header)
    base_rows = (baseline or {}).get("sizes", {})
    for size in sorted(payload.get("sizes", {}), key=int):
        row = payload["sizes"][size]
        line = (f"{size:>7} {row['cold_s']:>10.6f} "
                f"{row['warm_s']:>10.6f} "
                f"{row['warm_speedup']:>6.2f}x {row['lines']:>6}")
        if baseline is not None:
            base = base_rows.get(size)
            if base and base.get("cold_s") and row["cold_s"]:
                line += f" {base['cold_s'] / row['cold_s']:>7.2f}x"
            else:
                line += f" {'-':>8}"
        lines.append(line)
    return "\n".join(lines)


# load_payload / save_payload re-exported from .compare (shared JSON
# conventions across both suites and the regression observatory)
