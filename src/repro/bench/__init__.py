"""Benchmark programs and the Figure 11 / Figure 12 harnesses.

The paper evaluates on eight programs (Section 3): two micro-benchmarks
written to maximize the ratio of assignments to other computation
(``Array``, ``Tree``), two scientific computations (``Water``,
``Barnes``), the components of an image-recognition pipeline
(``ImageRec``: load, cross, threshold, hysteresis, thinning, save), and
three servers (``http``, ``game``, ``phone``).  Each module in
:mod:`repro.bench.programs` carries the same program written in the core
language with the same memory-management structure: primary data
structures live in regions, not in the garbage-collected heap.

* :mod:`repro.bench.suite`    — the registry of all programs.
* :mod:`repro.bench.overhead` — Figure 11: lines of code vs annotated
  lines.
* :mod:`repro.bench.timing`   — Figure 12: execution with dynamic checks
  vs with static checks only.
"""

from .suite import BENCHMARKS, Benchmark, get_benchmark
from .overhead import AnnotationReport, count_annotations, figure11
from .timing import CheckOverheadRow, figure12, measure_check_overhead
from .wallclock import (compare, format_table, load_payload, measure,
                        measure_benchmark, save_payload)

__all__ = [
    "BENCHMARKS", "Benchmark", "get_benchmark",
    "AnnotationReport", "count_annotations", "figure11",
    "CheckOverheadRow", "figure12", "measure_check_overhead",
    "measure", "measure_benchmark", "compare", "format_table",
    "load_payload", "save_payload",
]
