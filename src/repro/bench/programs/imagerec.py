"""``ImageRec`` — the image-recognition pipeline (Section 3).

The paper reports six components: **load**, **cross** (cross-correlation),
**threshold**, **hysteresis**, **thinning**, and **save**, each measured
separately (Figure 12), plus the whole pipeline as one row.

The image lives in a region as a ``FloatArray`` (scalar pixel accesses —
no RTSJ checks, exactly like Java primitive arrays).  The components that
show overhead in the paper are the ones that build linked metadata
structures: ``load``/``save`` maintain per-row record lists, and
``hysteresis``/``thinning`` push edge/skeleton points onto work lists —
every link is a checked reference store.  The pure-array passes
(``cross``, ``threshold``) show a ratio of exactly 1.0.

``source(stage=...)`` emits a standalone program for one component (with
scalar-only synthetic setup) or the full pipeline (``stage="all"``).
"""

NAME = "ImageRec"

DEFAULT_PARAMS = {"width": 6, "height": 14, "iocost": 20, "stage": "all"}
FAST_PARAMS = {"width": 6, "height": 8, "iocost": 20, "stage": "all"}

_CLASSES = """
class RowRec {{
    int y;
    float sum;
    RowRec next;
    RowRec prev;
}}
class PointRec {{
    int x;
    int y;
    PointRec next;
    PointRec link;
}}
class ImageRec {{
    int width;
    int height;
    FloatArray img;
    FloatArray tmp;
    RowRec rows;
    PointRec edges;
    PointRec skeleton;
    RowRec records;

    void init(int w, int h) {{
        width = w;
        height = h;
        img = new FloatArray(w * h);
        tmp = new FloatArray(w * h);
    }}

    // synthetic input (scalar only; used when a stage is benchmarked in
    // isolation so setup adds no checked stores)
    void fill() {{
        int y = 0;
        while (y < height) {{
            int x = 0;
            while (x < width) {{
                img.set(y * width + x,
                        itof((x * 7 + y * 13) % 32) / 31.0);
                x = x + 1;
            }}
            y = y + 1;
        }}
    }}

    // load: read rows from the (simulated) input device, decode pixels,
    // and keep a doubly-linked list of per-row records
    void load(int iocost) {{
        int y = 0;
        while (y < height) {{
            int data = io(iocost);
            int x = 0;
            float sum = 0.0;
            while (x < width) {{
                float v = itof((x * 31 + y * 17 + data) % 64) / 63.0;
                img.set(y * width + x, v);
                sum = sum + v;
                x = x + 1;
            }}
            RowRec rec = new RowRec;
            rec.y = y;
            rec.sum = sum;
            rec.next = rows;
            if (rows != null) {{
                rows.prev = rec;
            }}
            rows = rec;
            // per-row histogram record, linked both ways
            RowRec hist = new RowRec;
            hist.y = y;
            hist.sum = sum / itof(width);
            hist.next = rec;
            hist.prev = rec;
            rec.prev = hist;
            y = y + 1;
        }}
    }}

    // cross-correlation with a 3x3 kernel: pure array math, no checks
    void cross() {{
        int y = 1;
        while (y < height - 1) {{
            int x = 1;
            while (x < width - 1) {{
                int idx = y * width + x;
                float acc = 4.0 * img.get(idx)
                    - img.get(idx - 1) - img.get(idx + 1)
                    - img.get(idx - width) - img.get(idx + width)
                    + 0.5 * img.get(idx - width - 1)
                    + 0.5 * img.get(idx - width + 1)
                    + 0.5 * img.get(idx + width - 1)
                    + 0.5 * img.get(idx + width + 1);
                tmp.set(idx, acc);
                x = x + 1;
            }}
            y = y + 1;
        }}
        int i = 0;
        while (i < width * height) {{
            img.set(i, tmp.get(i));
            i = i + 1;
        }}
    }}

    // threshold: clamp against a fixed level, pure array math
    void threshold() {{
        int i = 0;
        while (i < width * height) {{
            if (img.get(i) < 0.35) {{
                img.set(i, 0.0);
            }}
            i = i + 1;
        }}
    }}

    // hysteresis: pixels above the strong level seed edge traces; every
    // strong pixel is pushed on a linked work list (checked stores)
    void hysteresis() {{
        int y = 0;
        while (y < height) {{
            int x = 0;
            while (x < width) {{
                float v = img.get(y * width + x);
                if (v > 0.7) {{
                    PointRec p = new PointRec;
                    p.x = x;
                    p.y = y;
                    p.next = edges;
                    p.link = edges;
                    edges = p;
                }} else {{
                    if (v < 0.3) {{
                        img.set(y * width + x, 0.0);
                    }}
                }}
                x = x + 1;
            }}
            y = y + 1;
        }}
        // promote weak neighbours of traced edges
        PointRec walk = edges;
        while (walk != null) {{
            int idx = walk.y * width + walk.x;
            if (walk.x + 1 < width) {{
                if (img.get(idx + 1) > 0.0) {{
                    img.set(idx + 1, 1.0);
                }}
            }}
            if (walk.y + 1 < height) {{
                if (img.get(idx + width) > 0.0) {{
                    img.set(idx + width, 1.0);
                }}
            }}
            walk = walk.next;
        }}
    }}

    // thinning: erode pixels whose 4-neighbourhood is fully set; surviving
    // ridge endpoints go on the skeleton list (checked stores)
    void thinning() {{
        int y = 1;
        while (y < height - 1) {{
            int x = 1;
            while (x < width - 1) {{
                int idx = y * width + x;
                if (img.get(idx) > 0.5) {{
                    int neighbours = 0;
                    if (img.get(idx - 1) > 0.5) {{
                        neighbours = neighbours + 1;
                    }}
                    if (img.get(idx + 1) > 0.5) {{
                        neighbours = neighbours + 1;
                    }}
                    if (img.get(idx - width) > 0.5) {{
                        neighbours = neighbours + 1;
                    }}
                    if (img.get(idx + width) > 0.5) {{
                        neighbours = neighbours + 1;
                    }}
                    if (neighbours == 4) {{
                        img.set(idx, 0.0);
                    }}
                    if (neighbours == 1) {{
                        PointRec p = new PointRec;
                        p.x = x;
                        p.y = y;
                        p.next = skeleton;
                        p.link = skeleton;
                        skeleton = p;
                    }}
                }}
                x = x + 1;
            }}
            y = y + 1;
        }}
    }}

    // save: run-length summarize each row into a record list, then write
    // it to the (simulated) output device
    void save(int iocost) {{
        int y = 0;
        while (y < height) {{
            int runs = 0;
            boolean inRun = false;
            int x = 0;
            float sum = 0.0;
            while (x < width) {{
                float v = img.get(y * width + x);
                sum = sum + v;
                if (v > 0.0) {{
                    if (!inRun) {{
                        runs = runs + 1;
                        inRun = true;
                    }}
                }} else {{
                    inRun = false;
                }}
                x = x + 1;
            }}
            RowRec rec = new RowRec;
            rec.y = runs;
            rec.sum = sum;
            rec.next = records;
            if (records != null) {{
                records.prev = rec;
            }}
            records = rec;
            // directory entry for the saved row
            RowRec dir = new RowRec;
            dir.y = y;
            dir.sum = itof(runs);
            dir.next = rec;
            dir.prev = rec;
            rec.prev = dir;
            io(iocost);
            y = y + 1;
        }}
    }}

    int checksum() {{
        float total = 0.0;
        int i = 0;
        while (i < width * height) {{
            total = total + img.get(i);
            i = i + 1;
        }}
        return ftoi(total * 1000.0);
    }}
}}
"""

_STAGE_BODY = {
    "all": "rec.load({iocost}); rec.cross(); rec.threshold(); "
           "rec.hysteresis(); rec.thinning(); rec.save({iocost});",
    "load": "rec.load({iocost});",
    "cross": "rec.fill(); rec.cross();",
    "threshold": "rec.fill(); rec.threshold();",
    "hysteresis": "rec.fill(); rec.hysteresis();",
    "thinning": "rec.fill(); rec.thinning();",
    "save": "rec.fill(); rec.save({iocost});",
}

_MAIN = """
{{
    (RHandle<r> h) {{
        ImageRec<r> rec = new ImageRec;
        rec.init({width}, {height});
        {body}
        print(rec.checksum());
    }}
}}
"""


def source(**params) -> str:
    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    stage = merged.pop("stage")
    body = _STAGE_BODY[stage].format(**merged)
    return (_CLASSES + _MAIN).format(body=body, **merged)


def stage_expected_output(stage: str):
    """Outputs are deterministic but stage-dependent; the harness asserts
    mode-equality, which is the property that matters."""
    return None


EXPECTED_OUTPUT = None
