"""``http`` — a small HTTP-style server.

A server thread and a client thread communicate through a connection
subregion with typed request/response portal fields (the Figure 8 pattern
with a reply channel).  Every request: the client "sends" bytes
(simulated I/O), the server parses, "reads the file" (more simulated
I/O), builds a typed response in the subregion, and the client consumes
it — after which the subregion flushes, so a long-lived connection never
leaks.

The paper: "For the servers, the running time is dominated by the network
processing overhead and check removal has virtually no effect."
"""

NAME = "http"

DEFAULT_PARAMS = {"requests": 10, "netcost": 2500, "filecost": 1500}
FAST_PARAMS = {"requests": 4, "netcost": 2500, "filecost": 1500}

_TEMPLATE = """
regionKind ConnRegion extends SharedRegion {{
    ReqSubRegion : LT(8192) NoRT conn;
}}
regionKind ReqSubRegion extends SharedRegion {{
    Request<this> req;
    Response<this> resp;
}}
class Request {{
    int method;
    int path;
    int seq;
}}
class Response {{
    int status;
    int length;
    int seq;
}}
class HttpClient<ConnRegion r> {{
    void run(RHandle<r> h, int n, int netcost) accesses r, heap {{
        int i = 0;
        int okCount = 0;
        while (i < n) {{
            io(netcost);
            boolean placed = false;
            while (!placed) {{
                (RHandle<ReqSubRegion r2> h2 = h.conn) {{
                    if (h2.req == null && h2.resp == null) {{
                        Request<r2> request = new Request;
                        request.method = 1;
                        request.path = (i * 37) % 11;
                        request.seq = i;
                        h2.req = request;
                        placed = true;
                    }}
                }}
                yieldnow();
            }}
            boolean answered = false;
            while (!answered) {{
                (RHandle<ReqSubRegion r2> h2 = h.conn) {{
                    Response response = h2.resp;
                    if (response != null) {{
                        check(response.seq == i);
                        if (response.status == 200) {{
                            okCount = okCount + 1;
                        }}
                        h2.resp = null;
                        answered = true;
                    }}
                }}
                yieldnow();
            }}
            i = i + 1;
        }}
        print(okCount);
    }}
}}
class HttpServer<ConnRegion r> {{
    void run(RHandle<r> h, int n, int filecost) accesses r, heap {{
        int served = 0;
        while (served < n) {{
            (RHandle<ReqSubRegion r2> h2 = h.conn) {{
                Request request = h2.req;
                if (request != null) {{
                    io(filecost);
                    Response<r2> response = new Response;
                    response.seq = request.seq;
                    if (request.path % 7 == 3) {{
                        response.status = 404;
                        response.length = 0;
                    }} else {{
                        response.status = 200;
                        response.length = 512 + request.path * 64;
                    }}
                    h2.req = null;
                    h2.resp = response;
                    served = served + 1;
                }}
            }}
            yieldnow();
        }}
        // only the client prints: thread interleaving may differ between
        // checked/unchecked runs, and output must be mode-independent
        check(served == n);
    }}
}}
(RHandle<ConnRegion r> h) {{
    fork (new HttpServer<r>).run(h, {requests}, {filecost});
    fork (new HttpClient<r>).run(h, {requests}, {netcost});
}}
"""


def source(**params) -> str:
    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    return _TEMPLATE.format(**merged)


EXPECTED_OUTPUT = None
