"""``Tree`` — micro-benchmark: in-place relinking of a threaded tree.

Builds a left-spine "vine" of tree nodes (each with left/right/parent
pointers) in a region, then repeatedly reverses it in place; every step of
the reversal relinks all three pointers of a node, so the loop is
assignment-check-dominated but carries more pointer-chasing per check than
``Array`` — the paper measures 4.8x vs Array's 7.2x.
"""

NAME = "Tree"

DEFAULT_PARAMS = {"nodes": 50, "passes": 150}
FAST_PARAMS = {"nodes": 16, "passes": 10}

_TEMPLATE = """
class TreeNode {{
    int key;
    TreeNode left;
    TreeNode right;
    TreeNode parent;
    TreeNode twin;
}}
class TreeBench {{
    int run(int nodes, int passes) accesses heap {{
        int result = 0;
        (RHandle<r> h) {{
            TreeNode<r> head = null;
            int total = 0;
            int i = 0;
            while (i < nodes) {{
                TreeNode node = new TreeNode;
                node.key = i;
                node.left = head;
                head = node;
                total = total + i;
                i = i + 1;
            }}
            int p = 0;
            while (p < passes) {{
                TreeNode prev = null;
                TreeNode cur = head;
                while (cur != null) {{
                    TreeNode nxt = cur.left;
                    cur.parent = nxt;
                    cur.twin = prev;
                    cur.left = prev;
                    cur.right = prev;
                    prev = cur;
                    cur = nxt;
                }}
                head = prev;
                p = p + 1;
            }}
            int sum = 0;
            TreeNode walk = head;
            while (walk != null) {{
                sum = sum + walk.key;
                walk = walk.left;
            }}
            check(sum == total);
            result = sum;
        }}
        return result;
    }}
}}
{{
    TreeBench bench = new TreeBench;
    int value = bench.run({nodes}, {passes});
    print(value > 0);
}}
"""


def source(**params) -> str:
    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    return _TEMPLATE.format(**merged)


EXPECTED_OUTPUT = ["true"]
