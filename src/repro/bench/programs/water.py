"""``Water`` — scientific computation (reduced-scale SPLASH-style water
simulation).

N molecules live in a region as a linked list.  Every timestep:

1. molecules are re-binned into two spatial cell lists hanging off a
   ``Grid`` object (two checked reference stores per molecule — this is
   the per-step check load the paper's 1.24x comes from);
2. an O(n²) pairwise force computation over the list (pure float math:
   distances, ``sqrt``, Lennard-Jones-style terms — no checks);
3. leapfrog integration per molecule (float math, no checks).

A kinetic-energy checksum guards correctness across modes.
"""

NAME = "Water"

DEFAULT_PARAMS = {"molecules": 6, "steps": 8}
FAST_PARAMS = {"molecules": 5, "steps": 2}

_TEMPLATE = """
class Molecule {{
    float x;
    float y;
    float vx;
    float vy;
    float fx;
    float fy;
    Molecule next;
    Molecule cellNext;
    Molecule collNext;
}}
class Grid {{
    Molecule evenCell;
    Molecule oddCell;
    Molecule fastColl;
    Molecule slowColl;
}}
class Water {{
    int simulate(int n, int steps) accesses heap {{
        int checksum = 0;
        (RHandle<r> h) {{
            Molecule<r> head = null;
            Grid grid = new Grid;
            int i = 0;
            while (i < n) {{
                Molecule m = new Molecule;
                m.x = itof(i) * 1.3;
                m.y = itof(i * i % 17) * 0.7;
                m.vx = 0.01 * itof(i % 5);
                m.vy = 0.0 - 0.01 * itof(i % 3);
                m.next = head;
                head = m;
                i = i + 1;
            }}
            int s = 0;
            while (s < steps) {{
                // (1) spatial re-binning: the checked stores
                grid.evenCell = null;
                grid.oddCell = null;
                Molecule binWalk = head;
                while (binWalk != null) {{
                    int bucket = ftoi(binWalk.x) % 2;
                    if (bucket == 0) {{
                        binWalk.cellNext = grid.evenCell;
                        grid.evenCell = binWalk;
                    }} else {{
                        binWalk.cellNext = grid.oddCell;
                        grid.oddCell = binWalk;
                    }}
                    binWalk = binWalk.next;
                }}
                // collision candidate lists by speed (more checked
                // stores, as in the full code's neighbour lists)
                grid.fastColl = null;
                grid.slowColl = null;
                Molecule collWalk = head;
                while (collWalk != null) {{
                    float speed2 = collWalk.vx * collWalk.vx
                                   + collWalk.vy * collWalk.vy;
                    if (speed2 > 0.0004) {{
                        collWalk.collNext = grid.fastColl;
                        grid.fastColl = collWalk;
                    }} else {{
                        collWalk.collNext = grid.slowColl;
                        grid.slowColl = collWalk;
                    }}
                    collWalk = collWalk.next;
                }}
                // (2) O(n^2) pairwise forces: pure float math
                Molecule mi = head;
                while (mi != null) {{
                    mi.fx = 0.0;
                    mi.fy = 0.0;
                    mi = mi.next;
                }}
                mi = head;
                while (mi != null) {{
                    Molecule mj = mi.next;
                    while (mj != null) {{
                        float dx = mi.x - mj.x;
                        float dy = mi.y - mj.y;
                        float r2 = dx * dx + dy * dy + 0.05;
                        float dist = sqrt(r2);
                        float inv2 = 1.0 / r2;
                        float inv6 = inv2 * inv2 * inv2;
                        float mag = 24.0 * inv6 * (2.0 * inv6 - 1.0)
                                    / dist;
                        float fx = mag * dx;
                        float fy = mag * dy;
                        mi.fx = mi.fx + fx;
                        mi.fy = mi.fy + fy;
                        mj.fx = mj.fx - fx;
                        mj.fy = mj.fy - fy;
                        mj = mj.next;
                    }}
                    mi = mi.next;
                }}
                // (3) leapfrog integration
                Molecule mk = head;
                while (mk != null) {{
                    mk.vx = mk.vx + 0.001 * mk.fx;
                    mk.vy = mk.vy + 0.001 * mk.fy;
                    mk.x = mk.x + mk.vx;
                    mk.y = mk.y + mk.vy;
                    mk = mk.next;
                }}
                s = s + 1;
            }}
            // kinetic-energy checksum
            float energy = 0.0;
            Molecule walk = head;
            while (walk != null) {{
                energy = energy + walk.vx * walk.vx
                         + walk.vy * walk.vy;
                walk = walk.next;
            }}
            check(energy >= 0.0);
            checksum = ftoi(energy * 100000.0);
        }}
        return checksum;
    }}
}}
{{
    Water water = new Water;
    print(water.simulate({molecules}, {steps}));
}}
"""


def source(**params) -> str:
    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    return _TEMPLATE.format(**merged)


#: deterministic, asserted identical across modes by the harness
EXPECTED_OUTPUT = None
