"""``phone`` — a database-backed information server (the paper's
"database-backed information server").

At startup the directory database — a binary search tree of records — is
built in *immortal memory* (it lives for the whole program, the canonical
use of immortal).  The query loop then: receives a request (simulated
network I/O), looks the name up in the tree (reads only), materializes a
response in a per-request scratch region, and replies (more I/O).
Network I/O dominates; check removal has virtually no effect.
"""

NAME = "phone"

DEFAULT_PARAMS = {"records": 24, "queries": 8, "netcost": 3000}
FAST_PARAMS = {"records": 10, "queries": 3, "netcost": 3000}

_TEMPLATE = """
class Record {{
    int name;
    int number;
    int extension;
    Record left;
    Record right;
}}
class Directory<Owner o> {{
    Record<o> root;

    void add(Record<o> rec) {{
        if (root == null) {{
            root = rec;
            return;
        }}
        Record cur = root;
        boolean placed = false;
        while (!placed) {{
            if (rec.name < cur.name) {{
                if (cur.left == null) {{
                    cur.left = rec;
                    placed = true;
                }} else {{
                    cur = cur.left;
                }}
            }} else {{
                if (cur.right == null) {{
                    cur.right = rec;
                    placed = true;
                }} else {{
                    cur = cur.right;
                }}
            }}
        }}
    }}

    Record<o> lookup(int name) {{
        Record cur = root;
        while (cur != null) {{
            if (name == cur.name) {{
                return cur;
            }}
            if (name < cur.name) {{
                cur = cur.left;
            }} else {{
                cur = cur.right;
            }}
        }}
        return null;
    }}
}}
class Reply {{
    int number;
    int found;
}}
class PhoneServer {{
    Directory<immortal> dir;

    void buildDatabase(int n) accesses immortal {{
        dir = new Directory;
        int i = 0;
        int seed = 4242;
        while (i < n) {{
            seed = (seed * 1103515245 + 12345) % 2147483647;
            if (seed < 0) {{ seed = -seed; }}
            Record rec = new Record;
            rec.name = seed % 1000;
            rec.number = 5550000 + i;
            rec.extension = i % 100;
            dir.add(rec);
            i = i + 1;
        }}
    }}

    int serve(int queries, int netcost) accesses immortal, heap {{
        int answered = 0;
        int q = 0;
        int seed = 4242;
        while (q < queries) {{
            int request = io(netcost);
            seed = (seed * 1103515245 + 12345) % 2147483647;
            if (seed < 0) {{ seed = -seed; }}
            int name = seed % 1000;
            // per-request scratch region for the reply
            (RHandle<scratch> hs) {{
                Reply<scratch> reply = new Reply;
                Record rec = dir.lookup(name);
                if (rec != null) {{
                    reply.number = rec.number;
                    reply.found = 1;
                }} else {{
                    reply.number = 0;
                    reply.found = 0;
                }}
                io(netcost);
                answered = answered + reply.found;
            }}
            q = q + 1;
        }}
        return answered;
    }}
}}
{{
    PhoneServer server = new PhoneServer;
    server.buildDatabase({records});
    print(server.serve({queries}, {netcost}));
}}
"""


def source(**params) -> str:
    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    return _TEMPLATE.format(**merged)


EXPECTED_OUTPUT = None
