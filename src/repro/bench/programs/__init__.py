"""The eight benchmark programs of Section 3, written in the core
language."""
