"""``Barnes`` — Barnes-Hut N-body (reduced scale).

Bodies live in a long-lived region.  Every step a fresh quadtree is built
in a *scratch region* that is deleted at the end of the step (the paper's
region discipline for phase-local data).  Leaves store references to the
bodies they contain — legal precisely because the bodies' region outlives
the scratch region (rule R3), and each such store is a checked assignment
under the RTSJ.  The force pass is a math-heavy traversal with an
opening-angle test; a Morton-style reordering relinks the body list after
each step.  Check density is lower than Water's (the paper measures 1.13x
vs 1.24x).
"""

NAME = "Barnes"

DEFAULT_PARAMS = {"bodies": 20, "steps": 4, "relinks": 8}
FAST_PARAMS = {"bodies": 10, "steps": 2, "relinks": 2}

_TEMPLATE = """
class Body {{
    float x;
    float y;
    float vx;
    float vy;
    float fx;
    float fy;
    float mass;
    Body next;
}}
class QNode<Owner o, Owner bo> {{
    float cx;
    float cy;
    float half;
    float mass;
    float mx;
    float my;
    boolean leaf;
    Body<bo> occupant;
    QNode<o, bo> q0;
    QNode<o, bo> q1;
    QNode<o, bo> q2;
    QNode<o, bo> q3;

    void init(float centerX, float centerY, float halfSize) {{
        cx = centerX;
        cy = centerY;
        half = halfSize;
        leaf = true;
    }}

    void insert(Body<bo> b) {{
        mass = mass + b.mass;
        mx = mx + b.x * b.mass;
        my = my + b.y * b.mass;
        if (leaf) {{
            if (occupant == null) {{
                occupant = b;
                return;
            }}
            if (half < 0.001) {{
                return;
            }}
            leaf = false;
            Body<bo> old = occupant;
            occupant = null;
            this.insertChild(old);
            this.insertChild(b);
            return;
        }}
        this.insertChild(b);
    }}

    void insertChild(Body<bo> b) {{
        float q = half / 2.0;
        if (b.x < cx) {{
            if (b.y < cy) {{
                if (q0 == null) {{
                    QNode child = new QNode;
                    child.init(cx - q, cy - q, q);
                    q0 = child;
                }}
                q0.insert(b);
            }} else {{
                if (q1 == null) {{
                    QNode child = new QNode;
                    child.init(cx - q, cy + q, q);
                    q1 = child;
                }}
                q1.insert(b);
            }}
        }} else {{
            if (b.y < cy) {{
                if (q2 == null) {{
                    QNode child = new QNode;
                    child.init(cx + q, cy - q, q);
                    q2 = child;
                }}
                q2.insert(b);
            }} else {{
                if (q3 == null) {{
                    QNode child = new QNode;
                    child.init(cx + q, cy + q, q);
                    q3 = child;
                }}
                q3.insert(b);
            }}
        }}
    }}

    void force(Body<bo> b) {{
        if (mass == 0.0) {{ return; }}
        float comx = mx / mass;
        float comy = my / mass;
        float dx = comx - b.x;
        float dy = comy - b.y;
        float r2 = dx * dx + dy * dy + 0.025;
        float dist = sqrt(r2);
        if (leaf || half / dist < 0.5) {{
            float mag = mass / (r2 * dist);
            b.fx = b.fx + mag * dx;
            b.fy = b.fy + mag * dy;
            return;
        }}
        if (q0 != null) {{ q0.force(b); }}
        if (q1 != null) {{ q1.force(b); }}
        if (q2 != null) {{ q2.force(b); }}
        if (q3 != null) {{ q3.force(b); }}
    }}
}}
class Barnes {{
    int simulate(int n, int steps, int relinks) accesses heap {{
        int checksum = 0;
        (RHandle<bodiesRegion> hb) {{
            Body<bodiesRegion> head = null;
            int i = 0;
            while (i < n) {{
                Body b = new Body;
                b.x = itof(i * 7 % 23) - 11.0;
                b.y = itof(i * 13 % 19) - 9.0;
                b.mass = 1.0 + itof(i % 3);
                b.next = head;
                head = b;
                i = i + 1;
            }}
            int s = 0;
            while (s < steps) {{
                // phase-local quadtree in a scratch region, deleted at
                // the end of every step — no GC, no leak.  Leaves point
                // back at the bodies (legal: bodiesRegion outlives
                // treeRegion), so every leaf store is a checked
                // assignment.
                (RHandle<treeRegion> ht) {{
                    QNode<treeRegion, bodiesRegion> root = new QNode;
                    root.init(0.0, 0.0, 16.0);
                    Body w = head;
                    while (w != null) {{
                        root.insert(w);
                        w = w.next;
                    }}
                    Body b = head;
                    while (b != null) {{
                        b.fx = 0.0;
                        b.fy = 0.0;
                        root.force(b);
                        b.vx = b.vx + 0.005 * b.fx;
                        b.vy = b.vy + 0.005 * b.fy;
                        b.x = b.x + b.vx;
                        b.y = b.y + b.vy;
                        b = b.next;
                    }}
                }}
                // Morton-style reordering so the next build has good
                // locality (the full code reorders bodies every step)
                int pass = 0;
                while (pass < relinks) {{
                    Body prev = null;
                    Body cur = head;
                    while (cur != null) {{
                        Body nxt = cur.next;
                        cur.next = prev;
                        prev = cur;
                        cur = nxt;
                    }}
                    head = prev;
                    pass = pass + 1;
                }}
                s = s + 1;
            }}
            float energy = 0.0;
            Body walk = head;
            while (walk != null) {{
                energy = energy + walk.mass
                         * (walk.vx * walk.vx + walk.vy * walk.vy);
                walk = walk.next;
            }}
            check(energy >= 0.0);
            checksum = ftoi(energy * 100000.0);
        }}
        return checksum;
    }}
}}
{{
    Barnes barnes = new Barnes;
    print(barnes.simulate({bodies}, {steps}, {relinks}));
}}
"""


def source(**params) -> str:
    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    return _TEMPLATE.format(**merged)


EXPECTED_OUTPUT = None
