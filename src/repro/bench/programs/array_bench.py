"""``Array`` — micro-benchmark maximizing assignment checks.

The paper: "Our micro benchmarks (Array and Tree) were written
specifically to maximize the checking overhead — our development goal was
to maximize the ratio of assignments to other computation."

The inner loop is an unrolled burst of reference stores into a bank of
slot objects; with dynamic checks on, every store runs the RTSJ
assignment check (scope comparison on the write-barrier path), with
checks compiled out the loop is pure pointer stores.
"""

NAME = "Array"

DEFAULT_PARAMS = {"n": 600}
FAST_PARAMS = {"n": 40}

_TEMPLATE = """
class Item {{ int pad; }}
class Slot {{
    Item ref;
}}
class ArrayBench {{
    int run(int n) accesses heap {{
        int survived = 0;
        (RHandle<r> h) {{
            Item<r> a = new Item;
            Item b = new Item;
            Slot s1 = new Slot;
            Slot s2 = new Slot;
            Slot s3 = new Slot;
            Slot s4 = new Slot;
            int i = 0;
            while (i < n) {{
                s1.ref = a; s2.ref = b; s3.ref = a; s4.ref = b;
                s1.ref = b; s2.ref = a; s3.ref = b; s4.ref = a;
                s1.ref = a; s2.ref = b; s3.ref = a; s4.ref = b;
                s1.ref = b; s2.ref = a; s3.ref = b; s4.ref = a;
                i = i + 1;
            }}
            if (s1.ref != null) {{ survived = 1; }}
            check(s1.ref == b);
            check(s4.ref == a);
        }}
        return survived;
    }}
}}
{{
    ArrayBench bench = new ArrayBench;
    print(bench.run({n}));
}}
"""


def source(**params) -> str:
    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    return _TEMPLATE.format(**merged)


EXPECTED_OUTPUT = ["1"]
