"""``game`` — a small game server (97 LoC in the paper, the smallest
server).

A single simulation loop: receive player inputs (simulated network I/O),
integrate player positions (scalar math on objects in the world region),
spawn per-tick projectiles in a scratch region that dies with the tick,
then broadcast the new state (more simulated I/O).  Network I/O dominates;
check removal has virtually no effect.
"""

NAME = "game"

DEFAULT_PARAMS = {"players": 4, "ticks": 8, "netcost": 3000}
FAST_PARAMS = {"players": 3, "ticks": 3, "netcost": 3000}

_TEMPLATE = """
class Player {{
    int x;
    int y;
    int dx;
    int dy;
    int score;
    Player next;
}}
class Projectile {{
    int x;
    int y;
    Projectile next;
}}
class GameServer {{
    int run(int players, int ticks, int netcost) accesses heap {{
        int finalScore = 0;
        (RHandle<world> hw) {{
            Player<world> roster = null;
            int i = 0;
            while (i < players) {{
                Player p = new Player;
                p.x = i * 10;
                p.y = 100 - i * 10;
                p.dx = 1 + i % 3;
                p.dy = 2 - i % 2;
                p.next = roster;
                roster = p;
                i = i + 1;
            }}
            int t = 0;
            while (t < ticks) {{
                int inputs = io(netcost);
                Player p = roster;
                while (p != null) {{
                    p.x = p.x + p.dx;
                    p.y = p.y + p.dy;
                    if (p.x > 100) {{ p.dx = -p.dx; }}
                    if (p.y > 100) {{ p.dy = -p.dy; }}
                    p = p.next;
                }}
                // per-tick projectiles live exactly one tick
                (RHandle<shots> hs) {{
                    Projectile<shots> fired = null;
                    Player shooter = roster;
                    while (shooter != null) {{
                        if ((shooter.x + t) % 3 == 0) {{
                            Projectile shot = new Projectile;
                            shot.x = shooter.x;
                            shot.y = shooter.y;
                            shot.next = fired;
                            fired = shot;
                            shooter.score = shooter.score + 1;
                        }}
                        shooter = shooter.next;
                    }}
                    // resolve hits against every player
                    Projectile s = fired;
                    while (s != null) {{
                        Player victim = roster;
                        while (victim != null) {{
                            if (victim.x == s.x && victim.y == s.y) {{
                                victim.score = victim.score - 1;
                            }}
                            victim = victim.next;
                        }}
                        s = s.next;
                    }}
                }}
                io(netcost);
                t = t + 1;
            }}
            Player w = roster;
            while (w != null) {{
                finalScore = finalScore + w.score;
                w = w.next;
            }}
        }}
        return finalScore;
    }}
}}
{{
    GameServer server = new GameServer;
    print(server.run({players}, {ticks}, {netcost}));
}}
"""


def source(**params) -> str:
    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    return _TEMPLATE.format(**merged)


EXPECTED_OUTPUT = None
