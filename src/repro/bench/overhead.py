"""Figure 11 — programming overhead: lines of code vs lines changed.

The paper counts "the number of lines of code that needed type
annotations", observing "In most cases, we only had to change code where
regions were created."  We reproduce the measurement directly on the AST
*before* defaults and inference run: a line is *annotated* iff the
programmer wrote any construct plain Java would not contain —

* a ``regionKind`` declaration (every line of it),
* a region creation / subregion entry statement (``(RHandle<...>)``),
* explicit owner formals on a class or method,
* explicit owner arguments on a type, ``new``, or call,
* an ``accesses`` effects clause or a ``where`` constraint clause,
* an ``RT fork`` (a plain ``fork`` maps to ``new Thread``, so it does not
  count).

Everything the Section 2.5 defaults/inference can supply is, by
construction, *not* written in our benchmark sources — the same experience
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..lang import ast, parse_program


@dataclass
class AnnotationReport:
    name: str
    total_lines: int
    annotated_lines: int
    lines: Set[int]

    @property
    def fraction(self) -> float:
        return (self.annotated_lines / self.total_lines
                if self.total_lines else 0.0)


def _code_lines(source: str) -> int:
    count = 0
    in_block_comment = False
    for line in source.splitlines():
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if not stripped or stripped.startswith("//"):
            continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            continue
        count += 1
    return count


class _AnnotationScanner:
    def __init__(self) -> None:
        self.lines: Set[int] = set()

    def mark(self, span) -> None:
        if span is not None and span.start.line > 0:
            self.lines.add(span.start.line)

    def mark_range(self, span) -> None:
        if span is not None and span.start.line > 0:
            for line in range(span.start.line, span.end.line + 1):
                self.lines.add(line)

    # ------------------------------------------------------------------

    def scan_program(self, program: ast.Program) -> None:
        for rk in program.region_kinds:
            self.mark_range(rk.span)
        for cls in program.classes:
            self.scan_class(cls)
        if program.main is not None:
            self.scan_block(program.main)

    def scan_class(self, cls: ast.ClassDecl) -> None:
        if cls.formals:
            self.mark(cls.span)
        for c in cls.constraints:
            self.mark(c.span)
        if cls.superclass is not None and cls.superclass.owners:
            self.mark(cls.superclass.span)
        for fld in cls.fields:
            self.scan_type(fld.declared_type)
        for meth in cls.methods:
            self.scan_method(meth)

    def scan_method(self, meth: ast.MethodDecl) -> None:
        if meth.formals:
            self.mark(meth.span)
        if meth.effects is not None:
            self.mark(meth.span)
        for c in meth.constraints:
            self.mark(c.span)
        self.scan_type(meth.return_type)
        for ptype, _name in meth.params:
            self.scan_type(ptype)
        self.scan_block(meth.body)

    def scan_type(self, t: ast.TypeAst) -> None:
        if isinstance(t, ast.ClassTypeAst) and t.owners:
            self.mark(t.span)
        elif isinstance(t, ast.HandleTypeAst):
            self.mark(t.span)

    # -- statements -----------------------------------------------------

    def scan_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.scan_stmt(stmt)

    def scan_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.scan_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            self.scan_type(stmt.declared_type)
            if stmt.init is not None:
                self.scan_expr(stmt.init)
        elif isinstance(stmt, ast.AssignLocal):
            self.scan_expr(stmt.value)
        elif isinstance(stmt, ast.AssignField):
            self.scan_expr(stmt.target)
            self.scan_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self.scan_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.scan_expr(stmt.cond)
            self.scan_block(stmt.then_body)
            if stmt.else_body is not None:
                self.scan_block(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self.scan_expr(stmt.cond)
            self.scan_block(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.scan_expr(stmt.value)
        elif isinstance(stmt, ast.Fork):
            if stmt.realtime:
                self.mark(stmt.span)
            self.scan_expr(stmt.call)
        elif isinstance(stmt, ast.RegionStmt):
            self.mark(stmt.span)
            self.scan_block(stmt.body)
        elif isinstance(stmt, ast.SubregionStmt):
            self.mark(stmt.span)
            self.scan_block(stmt.body)

    # -- expressions --------------------------------------------------------

    def scan_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.NewExpr):
            if expr.owners:
                self.mark(expr.span)
            for arg in expr.args:
                self.scan_expr(arg)
        elif isinstance(expr, ast.FieldRead):
            self.scan_expr(expr.target)
        elif isinstance(expr, ast.Invoke):
            if expr.owner_args:
                self.mark(expr.span)
            self.scan_expr(expr.target)
            for arg in expr.args:
                self.scan_expr(arg)
        elif isinstance(expr, ast.Binary):
            self.scan_expr(expr.left)
            self.scan_expr(expr.right)
        elif isinstance(expr, ast.Unary):
            self.scan_expr(expr.operand)
        elif isinstance(expr, ast.BuiltinCall):
            for arg in expr.args:
                self.scan_expr(arg)


def _count_owner_atoms(program: ast.Program) -> int:
    """Number of owner atoms written in the AST (formals' kind arguments,
    type owners, new/call owner arguments, effects, constraints...)."""
    count = 0

    def count_kind(kind: ast.KindAst) -> None:
        nonlocal count
        count += len(kind.args)

    def count_type(t: ast.TypeAst) -> None:
        nonlocal count
        if isinstance(t, ast.ClassTypeAst):
            count += len(t.owners)
        elif isinstance(t, ast.HandleTypeAst):
            count += 1

    def walk_expr(e: ast.Expr) -> None:
        nonlocal count
        if isinstance(e, ast.NewExpr):
            count += len(e.owners)
            for arg in e.args:
                walk_expr(arg)
        elif isinstance(e, ast.FieldRead):
            walk_expr(e.target)
        elif isinstance(e, ast.Invoke):
            count += len(e.owner_args)
            walk_expr(e.target)
            for arg in e.args:
                walk_expr(arg)
        elif isinstance(e, ast.Binary):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, ast.Unary):
            walk_expr(e.operand)
        elif isinstance(e, ast.BuiltinCall):
            for arg in e.args:
                walk_expr(arg)

    def walk_stmt(s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            for inner in s.stmts:
                walk_stmt(inner)
        elif isinstance(s, ast.LocalDecl):
            count_type(s.declared_type)
            if s.init is not None:
                walk_expr(s.init)
        elif isinstance(s, ast.AssignLocal):
            walk_expr(s.value)
        elif isinstance(s, ast.AssignField):
            walk_expr(s.target)
            walk_expr(s.value)
        elif isinstance(s, ast.ExprStmt):
            walk_expr(s.expr)
        elif isinstance(s, ast.If):
            walk_expr(s.cond)
            walk_stmt(s.then_body)
            if s.else_body is not None:
                walk_stmt(s.else_body)
        elif isinstance(s, ast.While):
            walk_expr(s.cond)
            walk_stmt(s.body)
        elif isinstance(s, ast.Return):
            if s.value is not None:
                walk_expr(s.value)
        elif isinstance(s, ast.Fork):
            walk_expr(s.call)
        elif isinstance(s, (ast.RegionStmt, ast.SubregionStmt)):
            walk_stmt(s.body)

    for cls in program.classes:
        count += len(cls.formals)
        for f in cls.formals:
            count_kind(f.kind)
        if cls.superclass is not None:
            count_type(cls.superclass)
        count += 2 * len(cls.constraints)
        for fld in cls.fields:
            count_type(fld.declared_type)
        for meth in cls.methods:
            count += len(meth.formals)
            for f in meth.formals:
                count_kind(f.kind)
            count_type(meth.return_type)
            for ptype, _n in meth.params:
                count_type(ptype)
            if meth.effects is not None:
                count += len(meth.effects)
            count += 2 * len(meth.constraints)
            walk_stmt(meth.body)
    for rk in program.region_kinds:
        count += len(rk.formals)
        for portal in rk.portals:
            count_type(portal.declared_type)
        for sub in rk.subregions:
            count_kind(sub.kind)
    if program.main is not None:
        walk_stmt(program.main)
    return count


def inference_stats(source: str, name: str = "?") -> dict:
    """How much of the ownership structure was *supplied* by the
    Section 2.5 defaults and inference rather than written by the
    programmer: owner atoms before vs after the completion pass."""
    from .. import analyze
    raw = _count_owner_atoms(parse_program(source))
    analyzed = analyze(source)
    completed = _count_owner_atoms(analyzed.program)
    supplied = completed - raw
    return {
        "program": name,
        "written_owner_atoms": raw,
        "total_owner_atoms": completed,
        "supplied_by_inference": supplied,
        "supplied_fraction": (supplied / completed if completed else 0.0),
    }


def count_annotations(source: str, name: str = "?") -> AnnotationReport:
    """Parse ``source`` (without running defaults/inference) and count the
    lines carrying explicit ownership/region annotations."""
    program = parse_program(source)
    scanner = _AnnotationScanner()
    scanner.scan_program(program)
    return AnnotationReport(name, _code_lines(source),
                            len(scanner.lines), scanner.lines)


def figure11(fast: bool = True) -> List[dict]:
    """Regenerate Figure 11: per benchmark, our LoC / annotated lines next
    to the paper's numbers."""
    from .suite import BENCHMARKS
    rows = []
    for bench in BENCHMARKS.values():
        report = count_annotations(bench.source(fast=fast), bench.name)
        rows.append({
            "program": bench.name,
            "loc": report.total_lines,
            "lines_changed": report.annotated_lines,
            "fraction": round(report.fraction, 3),
            "paper_loc": bench.paper_loc,
            "paper_lines_changed": bench.paper_lines_changed,
            "paper_fraction": (
                round(bench.paper_lines_changed / bench.paper_loc, 3)
                if bench.paper_loc else None),
        })
    return rows


def format_figure11(rows: List[dict]) -> str:
    header = (f"{'Program':<10} {'LoC':>6} {'Changed':>8} {'Frac':>6}   "
              f"{'Paper LoC':>9} {'Paper chg':>9} {'Frac':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['program']:<10} {row['loc']:>6} "
            f"{row['lines_changed']:>8} {row['fraction']:>6.3f}   "
            f"{row['paper_loc']:>9} {row['paper_lines_changed']:>9} "
            f"{row['paper_fraction']:>6.3f}")
    return "\n".join(lines)
