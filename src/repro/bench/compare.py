"""Shared baseline-comparison primitives for the bench suites.

``repro bench`` grew two compare implementations — the interpreter
suite (:mod:`repro.bench.wallclock`) and the frontend suite
(:mod:`repro.bench.frontend`) — with the same three judgments written
twice: *wall-clock regression beyond a fractional threshold*,
*determinism break* (a quantity that must be bit-identical changed),
and *missing entry*.  The regression observatory (``repro report``)
needs the same judgments a third time, plus robust statistics over a
*history* of measurements rather than a single baseline pair.  This
module is the single home for all of it:

* message-formatting helpers (:func:`check_wall`, :func:`check_exact`,
  :func:`check_missing`) so every suite reports regressions in the
  same words;
* robust statistics (:func:`median`, :func:`mad`,
  :func:`robust_threshold`) — median/MAD are the standard estimators
  for noisy timer data because a single outlier run cannot move them;
* payload I/O (:func:`load_payload`, :func:`save_payload`) shared by
  both suites and the observatory.

The per-suite modules keep their public ``compare()`` signatures (CI
and the integration tests call them) but delegate the shared judgments
here.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

#: default fractional wall-clock regression threshold (+30%) — generous
#: because CI runners are noisy; the observatory widens it further from
#: history spread (see :func:`robust_threshold`)
DEFAULT_THRESHOLD = 0.30

#: how many history MADs (relative to the median) widen the threshold;
#: 3 MADs ~ 2 sigma for normal noise, conservative for heavier tails
MAD_WIDENING = 3.0


# ---------------------------------------------------------------------------
# robust statistics
# ---------------------------------------------------------------------------

def median(values: Sequence[float]) -> float:
    """The sample median; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation from the median; 0.0 when fewer than
    two samples (no spread to estimate)."""
    if len(values) < 2:
        return 0.0
    center = median(values)
    return median([abs(v - center) for v in values])


def robust_threshold(base: float, history: Sequence[float],
                     widening: float = MAD_WIDENING) -> float:
    """The effective fractional regression threshold given a history of
    measurements: the base threshold widened by ``widening`` history
    MADs relative to the history median.  A stable history leaves the
    threshold at ``base``; a noisy one widens it so the observatory
    does not page on noise the baseline pair cannot see."""
    center = median(history)
    if center <= 0:
        return base
    return base + widening * (mad(history) / center)


# ---------------------------------------------------------------------------
# the three shared judgments
# ---------------------------------------------------------------------------

def check_wall(label: str, base_s: float, cur_s: float,
               threshold: float = DEFAULT_THRESHOLD,
               quantity: str = "wall-clock") -> Optional[str]:
    """Fractional-slowdown judgment; returns the failure message or
    None.  A zero/missing baseline never fails (nothing to compare)."""
    if not base_s or not cur_s:
        return None
    if cur_s <= base_s * (1.0 + threshold):
        return None
    slow = (cur_s / base_s - 1.0) * 100.0
    return (f"{label}: {quantity} regression "
            f"{base_s:.6f}s -> {cur_s:.6f}s "
            f"(+{slow:.0f}%, threshold +{threshold * 100:.0f}%)")


def check_exact(label: str, quantity: str, base: Any,
                cur: Any) -> Optional[str]:
    """Bit-identity judgment for quantities that must never drift
    (simulated cycles, checker error counts); returns the failure
    message or None."""
    if base == cur:
        return None
    return (f"{label}: {quantity} changed {base} -> {cur} "
            f"(determinism break)")


def check_missing(label: str) -> str:
    return f"{label}: missing from current results"


# ---------------------------------------------------------------------------
# payload I/O (one home for the JSON conventions)
# ---------------------------------------------------------------------------

def load_payload(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_payload(payload: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def collect(failures: List[str], message: Optional[str]) -> None:
    """Append ``message`` when a judgment failed (None = passed)."""
    if message is not None:
        failures.append(message)
