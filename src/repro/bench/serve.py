"""The serve load suite: ``repro bench --suite serve``.

Drives a real in-process :class:`~repro.serve.server.ServeService`
(workers forked, HTTP sockets, the whole admission path) with
closed-loop clients over the three traffic shapes the service is built
for, and gates the results:

* **cold** — first sight of each program in the mix: full frontend +
  machine execution through the pool.  Every served result must be
  **byte-identical** (cycles + output sha) to an in-process CLI
  execution of the same program — the determinism contract extends
  across the wire;
* **coalesce** — N concurrent requests for one never-seen program.
  The coalescing layer must collapse them to exactly one analysis
  (asserted from the service's own ``/metrics``);
* **warm** — closed-loop clients (persistent HTTP/1.1 connections,
  ``TCP_NODELAY``) round-robining the now-hot mix for a fixed window.
  The committed gate demands sustained throughput at or above
  ``warm_min_req_s`` (1000 req/s — the ROADMAP's "thousands of req/s
  on warm cache") with p99 latency bounded by the recorded threshold.

``compare()`` re-judges a fresh payload against the committed
``BENCH_serve.json``: any divergence or parity drift is a determinism
break (hard failure), the throughput/latency gate comes from the
*baseline*'s recorded bounds, and wall-style numbers use the shared
threshold machinery.  Like the codegen suite, the payload's own
``divergences`` list makes ``repro bench`` exit 3 even without
``--compare``.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import platform
import socket
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from .compare import (check_exact, check_missing, collect, load_payload,
                      save_payload)

__all__ = ["SCHEMA", "measure", "compare", "format_table",
           "check_gate", "load_payload", "save_payload"]

SCHEMA = "repro-bench-serve/1"

#: the ROADMAP floor: sustained warm-cache throughput, req/s
WARM_MIN_REQ_S = 1000.0

#: default benchmark mix: small fast registry programs (cold cost in
#: the low ms), diverse enough to keep the hot tier honest
DEFAULT_MIX = ("Array", "Tree", "game", "phone")

#: the coalesce probe program must be *unseen*, so it is derived from a
#: registry program by appending a comment (changes the content
#: address, not the semantics)
COALESCE_BASE = "Water"
COALESCE_CLIENTS = 8


class _Client:
    """One persistent keep-alive connection with Nagle disabled."""

    def __init__(self, host: str, port: int) -> None:
        self.conn = http.client.HTTPConnection(host, port, timeout=30)
        self.conn.connect()
        self.conn.sock.setsockopt(socket.IPPROTO_TCP,
                                  socket.TCP_NODELAY, 1)
        #: response headers of the most recent post() (title-cased)
        self.last_headers: Dict[str, str] = {}

    def post(self, endpoint: str, payload: Dict[str, Any]):
        body = json.dumps(payload)
        self.conn.request("POST", f"/v1/{endpoint}", body=body,
                          headers={"Content-Type": "application/json"})
        resp = self.conn.getresponse()
        data = resp.read()
        self.last_headers = {k.title(): v
                             for k, v in resp.getheaders()}
        return resp.status, json.loads(data)

    def get_text(self, path: str) -> str:
        self.conn.request("GET", path)
        resp = self.conn.getresponse()
        return resp.read().decode("utf-8")

    def close(self) -> None:
        self.conn.close()


def _reference_results(sources: Dict[str, str]) -> Dict[str, Dict[str, Any]]:
    """CLI-equivalent execution: the byte-identity reference."""
    from ..core.api import analyze
    from ..interp.machine import RunOptions, execute
    out: Dict[str, Dict[str, Any]] = {}
    for name, source in sources.items():
        analyzed = analyze(source)
        assert not analyzed.errors, f"{name} failed analysis"
        result, machine = execute(analyzed, RunOptions(
            checks_enabled=False, validate=False, instrument=False,
            backend="py"))
        out[name] = {
            "cycles": result.stats.cycles,
            "output_sha256": hashlib.sha256(
                "\n".join(result.output).encode()).hexdigest(),
            "backend_used": (machine.program.backend
                             if machine.program is not None
                             else "interp"),
        }
    return out


def _metric_value(text: str, name: str) -> float:
    """Sum of all samples of one metric family in exposition text."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            head = line.split(" ")
            if head[0] == name or head[0].startswith(name + "{"):
                total += float(head[-1])
    return total


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[idx]


def measure(names: Optional[Sequence[str]] = None, fast: bool = True,
            workers: int = 2, clients: int = 4,
            warm_seconds: Optional[float] = None,
            queue_depth: int = 64) -> Dict[str, Any]:
    from ..bench.suite import BENCHMARKS
    from ..serve import ServeConfig, ServeService

    mix = list(names) if names else list(DEFAULT_MIX)
    if warm_seconds is None:
        warm_seconds = 2.0 if fast else 5.0
    sources = {name: BENCHMARKS[name].source(fast=fast)
               for name in mix}
    reference = _reference_results(sources)
    divergences: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        config = ServeConfig(workers=workers, cache_dir=tmp,
                             queue_depth=queue_depth)
        with ServeService(config).serve_background() as service:
            host, port = service.host, service.port

            # -- phase 1: cold + byte-identity parity ------------------
            programs: Dict[str, Dict[str, Any]] = {}
            client = _Client(host, port)
            for name in mix:
                t0 = time.perf_counter()
                status, body = client.post("run", {
                    "program": sources[name], "mode": "static",
                    "backend": "py"})
                cold_s = time.perf_counter() - t0
                ref = reference[name]
                row = {"cold_ms": round(cold_s * 1e3, 3),
                       "cycles": body.get("cycles"),
                       "output_sha256": body.get("output_sha256"),
                       "served_backend": body.get("backend_used")}
                programs[name] = row
                if status != 200:
                    divergences.append(
                        f"{name}: served status {status}: "
                        f"{body.get('error')}")
                    continue
                if not client.last_headers.get("X-Repro-Trace-Id"):
                    # the bench runs with tracing on (the gate *is*
                    # the tracing-overhead gate) — a missing trace id
                    # means the plane silently fell off
                    divergences.append(
                        f"{name}: response missing X-Repro-Trace-Id "
                        f"(tracing should be on)")
                for quantity in ("cycles", "output_sha256"):
                    if body.get(quantity) != ref[quantity]:
                        divergences.append(
                            f"{name}: served {quantity} "
                            f"{body.get(quantity)} != CLI "
                            f"{ref[quantity]} (determinism break)")

            # -- phase 2: coalescing -----------------------------------
            probe = (BENCHMARKS[COALESCE_BASE].source(fast=fast)
                     + "\n// serve-bench coalesce probe\n")
            before = client.get_text("/metrics")
            barrier = threading.Barrier(COALESCE_CLIENTS)
            statuses: List[int] = []
            lock = threading.Lock()

            def fire():
                c = _Client(host, port)
                try:
                    barrier.wait(timeout=10)
                    status, _body = c.post("run", {
                        "program": probe, "mode": "static",
                        "backend": "py"})
                    with lock:
                        statuses.append(status)
                finally:
                    c.close()

            threads = [threading.Thread(target=fire)
                       for _ in range(COALESCE_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            after = client.get_text("/metrics")
            d_analyses = (_metric_value(after,
                                        "repro_serve_analyses_total")
                          - _metric_value(before,
                                          "repro_serve_analyses_total"))
            d_coalesced = (_metric_value(after,
                                         "repro_serve_coalesced_total")
                           - _metric_value(
                               before, "repro_serve_coalesced_total"))
            coalesce = {"requests": COALESCE_CLIENTS,
                        "ok": sum(1 for s in statuses if s == 200),
                        "analyses": int(d_analyses),
                        "coalesced": int(d_coalesced)}
            if coalesce["ok"] != COALESCE_CLIENTS:
                divergences.append(
                    f"coalesce: {coalesce['ok']}/{COALESCE_CLIENTS} "
                    f"requests succeeded")
            if d_analyses != 1:
                divergences.append(
                    f"coalesce: {int(d_analyses)} analyses for "
                    f"{COALESCE_CLIENTS} identical concurrent requests "
                    f"(want exactly 1)")

            # -- phase 3: warm closed loop -----------------------------
            latencies: List[List[float]] = [[] for _ in range(clients)]
            errors = [0] * clients
            stop_at = time.perf_counter() + warm_seconds

            def closed_loop(idx: int) -> None:
                c = _Client(host, port)
                payloads = [json.dumps({"program": sources[n],
                                        "mode": "static",
                                        "backend": "py"})
                            for n in mix]
                try:
                    i = idx  # desynchronize the round-robin phase
                    while time.perf_counter() < stop_at:
                        body = payloads[i % len(payloads)]
                        i += 1
                        t0 = time.perf_counter()
                        c.conn.request(
                            "POST", "/v1/run", body=body,
                            headers={"Content-Type":
                                     "application/json"})
                        resp = c.conn.getresponse()
                        resp.read()
                        latencies[idx].append(
                            time.perf_counter() - t0)
                        if resp.status != 200:
                            errors[idx] += 1
                finally:
                    c.close()

            warm_threads = [threading.Thread(target=closed_loop,
                                             args=(i,))
                            for i in range(clients)]
            t_start = time.perf_counter()
            for t in warm_threads:
                t.start()
            for t in warm_threads:
                t.join(timeout=warm_seconds + 60)
            elapsed = time.perf_counter() - t_start
            flat = sorted(x for per in latencies for x in per)
            total = len(flat)
            warm = {
                "requests": total,
                "errors": sum(errors),
                "duration_s": round(elapsed, 4),
                "req_s": round(total / elapsed, 1) if elapsed else 0.0,
                "p50_s": round(_percentile(flat, 0.50), 6),
                "p95_s": round(_percentile(flat, 0.95), 6),
                "p99_s": round(_percentile(flat, 0.99), 6),
            }
            if warm["errors"]:
                divergences.append(
                    f"warm: {warm['errors']} non-200 responses")

            hits = _metric_value(client.get_text("/metrics"),
                                 "repro_serve_result_cache_hits_total")
            client.close()

    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "fast": fast,
        "workers": workers,
        "clients": clients,
        "mix": mix,
        "programs": programs,
        "coalesce": coalesce,
        "warm": warm,
        "result_cache_hits": int(hits),
        "gate": {
            "warm_min_req_s": WARM_MIN_REQ_S,
            # committed bound: 3x the measured p99, floored at 50 ms,
            # so host jitter does not flap the gate while a real tail
            # regression (an order of magnitude) still fails it
            "p99_max_s": round(max(0.05,
                                   warm["p99_s"] * 3.0), 4),
        },
        "divergences": divergences,
    }
    return payload


def check_gate(payload: Dict[str, Any],
               gate: Optional[Dict[str, Any]] = None) -> List[str]:
    """Judge ``payload`` against a gate block (its own by default)."""
    gate = gate or payload.get("gate") or {}
    warm = payload.get("warm") or {}
    failures: List[str] = []
    floor = gate.get("warm_min_req_s")
    if floor and warm.get("req_s", 0.0) < floor:
        failures.append(
            f"warm throughput {warm.get('req_s')} req/s is below the "
            f"{floor} req/s floor")
    ceiling = gate.get("p99_max_s")
    if ceiling and warm.get("p99_s", 0.0) > ceiling:
        failures.append(
            f"warm p99 {warm.get('p99_s')}s exceeds the recorded "
            f"{ceiling}s bound")
    return failures


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            threshold: float = 0.30) -> List[str]:
    """Regression check against the committed payload.

    * recorded divergences in the current payload → hard failure;
    * per-program served cycles / output sha drift vs the baseline →
      determinism break;
    * the *baseline's* gate bounds (throughput floor, p99 ceiling)
      applied to the current warm numbers.
    """
    del threshold  # latency is judged by the recorded gate bounds
    failures: List[str] = list(current.get("divergences") or [])
    base_programs = baseline.get("programs", {})
    cur_programs = current.get("programs", {})
    for name, base_row in base_programs.items():
        cur_row = cur_programs.get(name)
        if cur_row is None:
            failures.append(check_missing(name))
            continue
        collect(failures, check_exact(
            name, "served simulated cycles",
            base_row.get("cycles"), cur_row.get("cycles")))
        collect(failures, check_exact(
            name, "served output sha",
            base_row.get("output_sha256"),
            cur_row.get("output_sha256")))
    base_coalesce = baseline.get("coalesce") or {}
    cur_coalesce = current.get("coalesce") or {}
    collect(failures, check_exact(
        "coalesce", "analyses per identical burst",
        base_coalesce.get("analyses"), cur_coalesce.get("analyses")))
    failures.extend(check_gate(current, baseline.get("gate")))
    return failures


def format_table(payload: Dict[str, Any],
                 baseline: Optional[Dict[str, Any]] = None) -> str:
    del baseline  # judgments live in compare(); the table is absolute
    lines = [f"{'program':<10} {'cold ms':>9} {'backend':<12} "
             f"{'cycles':>10}  parity"]
    for name, row in sorted((payload.get("programs") or {}).items()):
        lines.append(
            f"{name:<10} {row.get('cold_ms', 0):>9.3f} "
            f"{row.get('served_backend') or '-':<12} "
            f"{row.get('cycles') or 0:>10}  served==cli")
    coalesce = payload.get("coalesce") or {}
    lines.append(
        f"coalesce   {coalesce.get('requests', 0)} identical requests "
        f"-> {coalesce.get('analyses', 0)} analysis "
        f"({coalesce.get('coalesced', 0)} coalesced)")
    warm = payload.get("warm") or {}
    lines.append(
        f"warm       {warm.get('req_s', 0):>9} req/s over "
        f"{warm.get('duration_s', 0)}s "
        f"(p50 {warm.get('p50_s', 0) * 1e3:.2f}ms, "
        f"p95 {warm.get('p95_s', 0) * 1e3:.2f}ms, "
        f"p99 {warm.get('p99_s', 0) * 1e3:.2f}ms, "
        f"{warm.get('errors', 0)} errors)")
    gate = payload.get("gate") or {}
    lines.append(
        f"gate       >= {gate.get('warm_min_req_s', 0)} req/s warm, "
        f"p99 <= {gate.get('p99_max_s', 0)}s")
    for failure in payload.get("divergences") or []:
        lines.append(f"DIVERGENCE {failure}")
    return "\n".join(lines)
