"""Host wall-clock benchmark of the interpreter itself.

The paper's Figure 12 numbers are *simulated* cycles — deterministic and
host-independent (:mod:`repro.bench.timing`).  This module measures the
orthogonal quantity: how fast the *host* interpreter executes those
simulated cycles.  It exists so interpreter performance work (compiled
dispatch, null instrumentation, inline caches — see
``docs/PERFORMANCE.md``) is measured, committed, and guarded against
regression in CI.

``measure()`` runs each registry benchmark in both check modes with
``RunOptions(instrument=False, validate=False)`` — null observability
sinks, no soundness re-validation — so the wall time reflects the
interpreter hot loop alone.  Results go into a JSON payload
(``BENCH_interp.json`` at the repo root); ``compare()`` diffs two
payloads and reports wall-clock regressions beyond a threshold, which is
how the ``bench-smoke`` CI job fails a PR that slows the interpreter
down.

Determinism note: wall seconds vary with the host; simulated cycles must
not.  ``compare()`` therefore treats a *cycle* difference as a hard
error (the program or cost model changed), while *wall* differences are
judged against the regression threshold.
"""

from __future__ import annotations

import hashlib
import platform
import time
from typing import Any, Dict, Iterable, List, Optional

from ..core.api import analyze
from ..interp.machine import RunOptions, run_source
from .compare import (check_exact, check_missing, check_wall, collect,
                      load_payload, save_payload)
from .suite import BENCHMARKS

__all__ = ["SCHEMA", "MODES", "measure", "measure_benchmark", "compare",
           "format_table", "load_payload", "save_payload"]

#: payload schema identifier (bump when the JSON layout changes)
SCHEMA = "repro-bench-interp/1"

#: mode name -> checks_enabled
MODES = {"dynamic": True, "static": False}


def _run_once(analyzed, enabled: bool):
    options = RunOptions(checks_enabled=enabled, validate=False,
                         instrument=False)
    start = time.perf_counter()
    result = run_source(analyzed, options)
    elapsed = time.perf_counter() - start
    return elapsed, result


def measure_benchmark(name: str, fast: bool = True,
                      repeats: int = 3) -> Dict[str, Any]:
    """Measure one benchmark in both modes; wall time is the best of
    ``repeats`` runs (min is the standard estimator for noisy timers —
    noise is strictly additive)."""
    bench = BENCHMARKS[name]
    analyzed = analyze(bench.source(fast=fast))
    if analyzed.errors:
        raise analyzed.errors[0]
    row: Dict[str, Any] = {}
    for mode, enabled in MODES.items():
        best = None
        result = None
        for _ in range(max(repeats, 1)):
            elapsed, result = _run_once(analyzed, enabled)
            best = elapsed if best is None else min(best, elapsed)
        digest = hashlib.sha256(
            "\n".join(result.output).encode()).hexdigest()
        row[mode] = {
            "wall_s": round(best, 6),
            "cycles": result.stats.cycles,
            "mcycles_per_s": round(result.stats.cycles / best / 1e6, 3)
            if best else 0.0,
            "output_sha256": digest,
            "steps": result.stats.steps,
        }
    dyn, sta = row["dynamic"], row["static"]
    row["cycle_overhead"] = (round(dyn["cycles"] / sta["cycles"], 4)
                             if sta["cycles"] else 0.0)
    row["wall_overhead"] = (round(dyn["wall_s"] / sta["wall_s"], 4)
                            if sta["wall_s"] else 0.0)
    return row


def measure(names: Optional[Iterable[str]] = None, fast: bool = True,
            repeats: int = 3) -> Dict[str, Any]:
    """Run the (selected) benchmark registry and return the full
    payload."""
    selected = list(names) if names is not None else list(BENCHMARKS)
    results = {name: measure_benchmark(name, fast=fast, repeats=repeats)
               for name in selected}
    total_wall = sum(row[mode]["wall_s"]
                     for row in results.values() for mode in MODES)
    total_cycles = sum(row[mode]["cycles"]
                       for row in results.values() for mode in MODES)
    return {
        "schema": SCHEMA,
        "fast": fast,
        "repeats": repeats,
        "python": platform.python_version(),
        "benchmarks": results,
        "totals": {
            "wall_s": round(total_wall, 6),
            "cycles": total_cycles,
            "mcycles_per_s": round(total_cycles / total_wall / 1e6, 3)
            if total_wall else 0.0,
        },
    }


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            threshold: float = 0.30) -> List[str]:
    """Regression check: returns human-readable failure messages.

    * wall-clock more than ``threshold`` (fractional) slower than the
      baseline on any benchmark/mode → regression;
    * different simulated cycle count → determinism break (always an
      error, no threshold);
    * missing benchmark in the current payload → error.

    Benchmarks present only in the baseline's ``benchmarks`` section are
    compared; extra current-side benchmarks are ignored, so a baseline
    can be a subset.
    """
    failures: List[str] = []
    base_rows = baseline.get("benchmarks", {})
    cur_rows = current.get("benchmarks", {})
    for name, base_row in base_rows.items():
        cur_row = cur_rows.get(name)
        if cur_row is None:
            failures.append(check_missing(name))
            continue
        for mode in MODES:
            base_mode = base_row.get(mode)
            cur_mode = cur_row.get(mode)
            if not base_mode or not cur_mode:
                continue
            collect(failures, check_exact(
                f"{name}/{mode}", "simulated cycles",
                base_mode.get("cycles"), cur_mode.get("cycles")))
            collect(failures, check_wall(
                f"{name}/{mode}", base_mode.get("wall_s") or 0.0,
                cur_mode.get("wall_s") or 0.0, threshold))
    return failures


def format_table(payload: Dict[str, Any],
                 baseline: Optional[Dict[str, Any]] = None) -> str:
    """Aligned text rendering of a payload (optionally with speedup
    columns against a baseline payload)."""
    lines = []
    header = (f"{'benchmark':<10} {'mode':<8} {'wall s':>10} "
              f"{'Mcyc/s':>8} {'cycles':>10}")
    if baseline is not None:
        header += f" {'vs base':>8}"
    lines.append(header)
    base_rows = (baseline or {}).get("benchmarks", {})
    for name, row in payload.get("benchmarks", {}).items():
        for mode in MODES:
            data = row[mode]
            line = (f"{name:<10} {mode:<8} {data['wall_s']:>10.6f} "
                    f"{data['mcycles_per_s']:>8.1f} "
                    f"{data['cycles']:>10}")
            base = base_rows.get(name, {}).get(mode)
            if baseline is not None:
                if base and base.get("wall_s") and data["wall_s"]:
                    line += f" {base['wall_s'] / data['wall_s']:>7.2f}x"
                else:
                    line += f" {'-':>8}"
            lines.append(line)
    totals = payload.get("totals", {})
    if totals:
        lines.append(f"{'total':<10} {'':<8} "
                     f"{totals['wall_s']:>10.6f} "
                     f"{totals['mcycles_per_s']:>8.1f} "
                     f"{totals['cycles']:>10}")
    return "\n".join(lines)


# load_payload / save_payload re-exported from .compare (shared JSON
# conventions across both suites and the regression observatory)
