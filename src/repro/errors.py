"""Exception hierarchy for the whole reproduction.

Static errors (lexing, parsing, typechecking) derive from
:class:`StaticError`; runtime failures of the simulated RTSJ platform derive
from :class:`RuntimeCheckError`.  The paper's central claim is that for
well-typed programs no :class:`RuntimeCheckError` subclass corresponding to
an RTSJ dynamic check (:class:`IllegalAssignmentError`,
:class:`MemoryAccessError`, :class:`ScopedCycleError`) is ever raised; the
test suite asserts exactly that.
"""

from __future__ import annotations

from typing import Optional

from .source import Span


class ReproError(Exception):
    """Root of every error raised by this library."""


# ---------------------------------------------------------------------------
# Static (compile-time) errors
# ---------------------------------------------------------------------------

class StaticError(ReproError):
    """A compile-time error with an optional source location."""

    def __init__(self, message: str, span: Optional[Span] = None):
        self.message = message
        self.span = span
        where = f"{span}: " if span is not None else ""
        super().__init__(f"{where}{message}")


class LexError(StaticError):
    """Malformed token in the input program."""


class ParseError(StaticError):
    """The input program does not conform to the grammar (Figure 13)."""


class OwnershipTypeError(StaticError):
    """A typing judgment of Appendix B failed.

    ``rule`` names the judgment ([EXPR NEW], [AV HANDLE], ...) whose premise
    was violated, so errors can be audited against the paper.
    """

    def __init__(self, message: str, span: Optional[Span] = None,
                 rule: Optional[str] = None):
        self.rule = rule
        prefix = f"[{rule}] " if rule else ""
        super().__init__(prefix + message, span)


class InferenceError(StaticError):
    """Intra-procedural owner inference (Section 2.5) failed to unify."""


# ---------------------------------------------------------------------------
# Runtime errors of the simulated RTSJ platform
# ---------------------------------------------------------------------------

class RuntimeCheckError(ReproError):
    """Base class for failures of the simulated RTSJ runtime."""


class IllegalAssignmentError(RuntimeCheckError):
    """RTSJ assignment check failed: storing a reference to an object whose
    region does not outlive the target's region would create a dangling
    reference (violates property R3)."""


class MemoryAccessError(RuntimeCheckError):
    """RTSJ heap-access check failed: a no-heap real-time thread read,
    wrote, or received a reference to a heap-allocated object."""


class ScopedCycleError(RuntimeCheckError):
    """A thread attempted to enter scoped regions in a non-LIFO order."""


class OutOfRegionMemoryError(RuntimeCheckError):
    """An LT region's preallocated budget was exhausted (the paper: 'the
    system throws an exception to signal that the region size was too
    small')."""


class OutOfMemoryError(RuntimeCheckError):
    """The simulated machine ran out of backing memory for VT/heap chunks."""


class RealtimeViolationError(RuntimeCheckError):
    """A real-time thread performed an operation with unbounded latency
    (heap allocation, VT allocation, region creation, GC-blocked wait)."""


class InterpreterError(ReproError):
    """Internal interpreter failure (null dereference of the simulated
    program, missing method, ...)."""


class SimulatedNullPointerError(InterpreterError):
    """The simulated program dereferenced null."""


class DeadlockError(ReproError):
    """The cooperative scheduler found all live threads blocked."""
