"""Exception hierarchy for the whole reproduction.

Static errors (lexing, parsing, typechecking) derive from
:class:`StaticError`; runtime failures of the simulated RTSJ platform derive
from :class:`RuntimeCheckError`.  The paper's central claim is that for
well-typed programs no :class:`RuntimeCheckError` subclass corresponding to
an RTSJ dynamic check (:class:`IllegalAssignmentError`,
:class:`MemoryAccessError`, :class:`ScopedCycleError`) is ever raised; the
test suite asserts exactly that.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .source import Span


class ReproError(Exception):
    """Root of every error raised by this library.

    Every instance can render itself as a *structured diagnostic* — a
    plain dict with the error type, message, and (when the failure
    happened inside a simulated run) the fault site, thread, and cycle
    it occurred at.  The fault-injection plane (:mod:`repro.rtsj.faults`)
    and the chaos driver rely on this: a run must never end in a bare
    traceback, only in a diagnosable record.
    """

    #: fault site this error is associated with (``lt_alloc``,
    #: ``vt_chunk``, ``region_enter``, ``portal_write``,
    #: ``thread_spawn``, ...) or None for organic static/runtime errors
    site: Optional[str] = None
    #: True when the failure was injected by a :class:`FaultInjector`
    #: rather than arising organically
    injected: bool = False
    #: simulated thread the failure occurred on (filled by the scheduler)
    thread: Optional[str] = None
    #: global simulated-clock value at failure (filled by the scheduler)
    cycle: Optional[int] = None

    def diagnostic(self) -> Dict[str, Any]:
        """The structured, JSON-able view of this failure."""
        return {
            "type": type(self).__name__,
            "message": str(self),
            "site": self.site,
            "injected": self.injected,
            "thread": self.thread,
            "cycle": self.cycle,
        }


# ---------------------------------------------------------------------------
# Static (compile-time) errors
# ---------------------------------------------------------------------------

class StaticError(ReproError):
    """A compile-time error with an optional source location."""

    def __init__(self, message: str, span: Optional[Span] = None):
        self.message = message
        self.span = span
        where = f"{span}: " if span is not None else ""
        super().__init__(f"{where}{message}")


class LexError(StaticError):
    """Malformed token in the input program."""


class ParseError(StaticError):
    """The input program does not conform to the grammar (Figure 13)."""


class OwnershipTypeError(StaticError):
    """A typing judgment of Appendix B failed.

    ``rule`` names the judgment ([EXPR NEW], [AV HANDLE], ...) whose premise
    was violated, so errors can be audited against the paper.
    """

    def __init__(self, message: str, span: Optional[Span] = None,
                 rule: Optional[str] = None):
        self.rule = rule
        prefix = f"[{rule}] " if rule else ""
        super().__init__(prefix + message, span)


class InferenceError(StaticError):
    """Intra-procedural owner inference (Section 2.5) failed to unify."""


# ---------------------------------------------------------------------------
# Runtime errors of the simulated RTSJ platform
# ---------------------------------------------------------------------------

class RuntimeCheckError(ReproError):
    """Base class for failures of the simulated RTSJ runtime."""


class IllegalAssignmentError(RuntimeCheckError):
    """RTSJ assignment check failed: storing a reference to an object whose
    region does not outlive the target's region would create a dangling
    reference (violates property R3)."""


class MemoryAccessError(RuntimeCheckError):
    """RTSJ heap-access check failed: a no-heap real-time thread read,
    wrote, or received a reference to a heap-allocated object."""


class ScopedCycleError(RuntimeCheckError):
    """A thread attempted to enter scoped regions in a non-LIFO order."""


class OutOfRegionMemoryError(RuntimeCheckError):
    """An LT region's preallocated budget was exhausted (the paper: 'the
    system throws an exception to signal that the region size was too
    small')."""


class OutOfMemoryError(RuntimeCheckError):
    """The simulated machine ran out of backing memory for VT/heap chunks."""


class RealtimeViolationError(RuntimeCheckError):
    """A real-time thread performed an operation with unbounded latency
    (heap allocation, VT allocation, region creation, GC-blocked wait)."""


class RegionEnterError(RuntimeCheckError):
    """Entering a (sub)region failed transiently (the RTSJ analogue of a
    scope stack under teardown or a denied enter).  Recoverable: the
    interpreter retries with exponential backoff before giving up."""

    site = "region_enter"


class PortalWriteError(RuntimeCheckError):
    """A portal store failed transiently — the model of a portal
    teardown race, where the owning region is being flushed while a
    writer holds a handle.  Recoverable via bounded retry."""

    site = "portal_write"


class ThreadSpawnError(RuntimeCheckError):
    """The platform denied a thread spawn (thread table pressure).
    Recoverable via bounded retry; persistent denial surfaces as a
    structured diagnostic rather than a silently missing thread."""

    site = "thread_spawn"


class InterpreterError(ReproError):
    """Internal interpreter failure (null dereference of the simulated
    program, missing method, ...)."""


class SimulatedNullPointerError(InterpreterError):
    """The simulated program dereferenced null."""


class ThreadCrashError(InterpreterError):
    """A simulated thread raised a non-simulated (host-level) exception.

    The scheduler wraps the crash so the run surfaces a structured
    diagnostic — naming the thread and the original exception — instead
    of a bare traceback that abandons the run queue mid-flight."""

    def __init__(self, message: str,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.cause = cause

    def diagnostic(self) -> Dict[str, Any]:
        out = super().diagnostic()
        if self.cause is not None:
            out["cause"] = type(self.cause).__name__
        return out


class SanitizerViolation(ReproError):
    """The runtime region sanitizer found a broken invariant.

    ``invariant`` names the paper rule that failed (``O1``..``O3``,
    ``R1``..``R3``, ``F1``..``F3`` for the three flush conditions) and
    ``path`` is the offending area/object chain, so a violation is
    immediately diagnosable."""

    def __init__(self, invariant: str, path: str, message: str,
                 checkpoint: str = "") -> None:
        self.invariant = invariant
        self.path = path
        self.checkpoint = checkpoint
        super().__init__(f"[{invariant}] {message} (at {path})")

    def diagnostic(self) -> Dict[str, Any]:
        out = super().diagnostic()
        out["invariant"] = self.invariant
        out["path"] = self.path
        out["checkpoint"] = self.checkpoint
        return out


class DeadlockError(ReproError):
    """The cooperative scheduler found all live threads blocked."""
