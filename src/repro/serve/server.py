"""``repro serve`` — the analysis-as-a-service HTTP frontend.

Request path, in admission order (each layer sheds before the next
spends anything):

1. **shape + size** — malformed JSON is ``400``, oversized programs
   ``413``, before any hashing happens;
2. **tenant quota** — a token-bucket per tenant (see
   :mod:`repro.serve.quota`); an empty bucket is ``429`` with a
   ``Retry-After`` naming the next token's arrival;
3. **hot results** — a frontend LRU keyed by job fingerprint.  The
   machine is deterministic, so a finished body is exact forever; warm
   traffic is answered here without touching the pool (this tier is
   why warm throughput is thousands of req/s on one core);
4. **coalescing** — an identical job already in flight adopts that
   job's outcome instead of queueing a duplicate (N concurrent cold
   requests for one program ⇒ exactly one analysis);
5. **bounded queue** — ``pool.outstanding`` at the queue depth is
   ``429 + Retry-After`` (load shedding), never silent queue growth;
6. **the pool** — micro-batched dispatch to pre-forked warm workers
   (:mod:`repro.serve.pool`), deadline re-checked at every hop.

Socket tuning that the throughput gate depends on: HTTP/1.1
keep-alive (persistent client connections), Nagle off, and one
buffered ``wfile`` write per response — header and body coalesce into
a single segment instead of paying a 40 ms delayed-ACK stall.

The whole service is stdlib-only and single-object: build a
:class:`ServeService`, then ``serve_background()`` (tests) or
``serve_forever()`` (the CLI).  Construction order matters — workers
are forked *before* any HTTP thread starts, so the fork start method
is safe.
"""

from __future__ import annotations

import json
import math
import queue
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..obs.exporters import to_prometheus
from ..obs.live import PROMETHEUS_CONTENT_TYPE
from ..obs.metrics import MetricsRegistry
from ..obs.trace import RequestTrace, TraceBuffer, queue_compute_ms
from .degrade import (BACKEND_BROWNOUT_FALLBACK, RUNG_BROWNOUT,
                      RUNG_HEALTHY, RUNG_NAMES, RUNG_SHED,
                      DegradationLadder)
from .pool import PendingJob, WorkerPool
from .protocol import (ENDPOINTS, MAX_PROGRAM_BYTES, TRACE_HEADER,
                       TRACE_ID_HEADER, Job, admit_trace, error_body,
                       job_fingerprint, program_sha, validate_request)
from .quota import QuotaTable

#: request-latency buckets in seconds (sub-ms to 10 s)
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


@dataclass
class ServeConfig:
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    #: admission bound: queued + in-flight jobs past this shed with 429
    queue_depth: int = 64
    #: max jobs per worker dispatch (micro-batching)
    batch_max: int = 8
    #: per-tenant token-bucket refill rate (req/s); 0 disables quotas
    quota_rate: float = 0.0
    #: bucket capacity (burst); defaults to max(rate, 1)
    quota_burst: float = 0.0
    #: shared content-addressed AnalysisCache tree (None = memory only)
    cache_dir: Optional[str] = None
    #: default backend when the request names none
    default_backend: str = "py"
    #: deadline applied when the request names none (None = unbounded)
    default_deadline_ms: Optional[float] = None
    #: frontend hot-results LRU size (finished bodies by fingerprint)
    hot_results: int = 1024
    #: leader wait bound for jobs without a deadline
    request_timeout_s: float = 60.0
    #: pool stall watchdog: a worker that doesn't reply within this is
    #: killed and replaced (None disables — not recommended)
    stall_timeout_s: Optional[float] = 60.0
    #: per-connection socket timeout for header/body reads — a
    #: slow-loris client times out instead of pinning a handler thread
    read_timeout_s: float = 30.0
    #: a job that rode a dying worker is resubmitted once,
    #: transparently, before any client-visible 500
    requeue_on_crash: bool = True
    #: queue-pressure ratio (outstanding / queue_depth) that counts as
    #: trouble for the degradation ladder
    brownout_ratio: float = 0.9
    #: calm seconds before the ladder steps down one rung
    heal_after_s: float = 0.5
    #: troubles while already browned out that escalate to shed
    shed_after_troubles: int = 5
    #: request tracing (span trees + tail-based sampling); per-request
    #: cost is a handful of dict allocations — see obs/trace.py
    tracing: bool = True
    #: retained-trace ring capacity (completed traces kept in memory)
    trace_capacity: int = 512
    #: 1-in-N retention for healthy fast traces (the tail — errors,
    #: faults, degradation, slower-than-p99 — is always kept)
    trace_sample: int = 16
    #: structured JSONL access-log path (None disables); writes happen
    #: on a dedicated thread, never on the response path
    access_log: Optional[str] = None
    #: directory where traced /v1/inspect jobs dump their flight
    #: records, keyed by trace id (None disables)
    flight_dir: Optional[str] = None


class _AccessLog:
    """Structured JSONL access log on a dedicated writer thread.

    Handler threads enqueue a dict and return immediately — disk
    latency (or a full disk) never blocks the response path.  One
    line per request: timestamp, trace id, tenant, endpoint, status,
    degradation rung, queue/compute decomposition, duration, flags.
    """

    _CLOSE = object()

    def __init__(self, path: str) -> None:
        self.path = path
        self._queue: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-accesslog",
            daemon=True)
        self._thread.start()

    def write(self, entry: Dict[str, Any]) -> None:
        self._queue.put(entry)

    def _run(self) -> None:
        try:
            handle = open(self.path, "a", encoding="utf-8")
        except OSError:
            handle = None  # an unwritable path disables, not crashes
        try:
            while True:
                entry = self._queue.get()
                if entry is self._CLOSE:
                    break
                if handle is None:
                    continue
                try:
                    handle.write(json.dumps(entry, sort_keys=True)
                                 + "\n")
                    handle.flush()  # each line lands whole, promptly
                except (OSError, ValueError):
                    pass
        finally:
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass

    def close(self, timeout: float = 2.0) -> None:
        self._queue.put(self._CLOSE)
        self._thread.join(timeout=timeout)


class ServeService:
    """The served frontend: HTTP threads over one shared pool."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 fault_injector: Optional[Any] = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = registry if registry is not None \
            else MetricsRegistry()
        self._started = time.monotonic()
        # instruments (created eagerly so /metrics shows zeros, not
        # absences, before the first request)
        m = self.metrics
        self._requests = m.counter(
            "repro_serve_requests_total",
            "served requests by endpoint and status")
        self._latency = m.histogram(
            "repro_serve_request_seconds",
            "request latency by endpoint (seconds)",
            buckets=LATENCY_BUCKETS)
        self._queue_gauge = m.gauge(
            "repro_serve_queue_depth",
            "jobs queued or in flight in the worker pool")
        self._coalesced = m.counter(
            "repro_serve_coalesced_total",
            "requests that adopted an identical in-flight job")
        self._shed = m.counter(
            "repro_serve_shed_total",
            "requests shed by admission control, by reason")
        self._hits = m.counter(
            "repro_serve_result_cache_hits_total",
            "requests answered from a finished-result tier")
        self._cancelled = m.counter(
            "repro_serve_deadline_cancelled_total",
            "jobs cancelled before execution (deadline expired)")
        self._analyses = m.counter(
            "repro_serve_analyses_total",
            "frontend analyses actually performed by workers")
        #: completed request traces with tail-based retention (None
        #: when tracing is off — e.g. for overhead A/B benches)
        self.traces: Optional[TraceBuffer] = (
            TraceBuffer(capacity=self.config.trace_capacity,
                        sample=self.config.trace_sample, metrics=m)
            if self.config.tracing else None)
        self._access_log: Optional[_AccessLog] = (
            _AccessLog(self.config.access_log)
            if self.config.access_log else None)
        # the ladder exists before the pool so worker-lifecycle
        # events have somewhere to land from the first fork on
        self.ladder = DegradationLadder(
            heal_after_s=self.config.heal_after_s,
            shed_after_troubles=self.config.shed_after_troubles,
            calm=self._calm, metrics=m)
        # the pool forks before any HTTP thread exists
        self.pool = WorkerPool(
            workers=self.config.workers,
            cache_root=self.config.cache_dir,
            batch_max=self.config.batch_max, metrics=m,
            fault_injector=fault_injector,
            stall_timeout_s=self.config.stall_timeout_s,
            requeue_on_crash=self.config.requeue_on_crash,
            on_worker_event=self.ladder.worker_event,
            flight_dir=self.config.flight_dir)
        self.quotas = QuotaTable(self.config.quota_rate,
                                 self.config.quota_burst)
        self._lock = threading.Lock()
        self._inflight: Dict[str, PendingJob] = {}
        self._hot: "OrderedDict[str, Tuple[int, Dict[str, Any]]]" = \
            OrderedDict()
        self._httpd = _ServeHTTPServer(
            (self.config.host, self.config.port), _make_handler(self))
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        #: the bound port (resolves port 0 to the kernel's choice);
        #: the listen backlog queues connections from here on, so
        #: publishing this value *is* the readiness signal
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    # -- degradation ---------------------------------------------------

    def _pressure_line(self) -> float:
        """Outstanding-job count that counts as queue pressure. A
        non-positive line (queue_depth=0 shed-everything configs) is
        degenerate: pressure never fires and never blocks healing —
        the queue-full 429 branch owns that regime."""
        return self.config.brownout_ratio * self.config.queue_depth

    def _calm(self) -> bool:
        """Heal precondition for the ladder: every worker alive and
        the queue back under the pressure line."""
        line = self._pressure_line()
        return (self.pool.alive_workers() >= self.pool.workers
                and (line <= 0 or self.pool.outstanding < line))

    # -- request handling ----------------------------------------------

    def handle_job(self, endpoint: str, payload: Any,
                   trace: Optional[Tuple[str, Optional[str], bool]]
                   = None
                   ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """The full admission + execution path for one POST body.
        Returns ``(status, body, extra_headers)``.

        ``trace`` is the admitted ``(trace_id, parent_span, sampled)``
        context from :func:`admit_trace`; when tracing is on, the
        request's span tree is assembled here, offered to the tail
        sampler on completion, and the resolved trace id is added to
        the response headers.
        """
        if self.traces is None:
            started = time.perf_counter()
            status, body, extra = self._admit(endpoint, payload, None)
            if self._access_log is not None:
                tenant = (payload.get("tenant", "default")
                          if isinstance(payload, dict) else "")
                self._access_log.write({
                    "ts": round(time.time(), 6), "trace": "",
                    "tenant": tenant, "endpoint": endpoint,
                    "status": status, "rung": None,
                    "queue_ms": 0.0, "compute_ms": 0.0,
                    "duration_ms": round(
                        (time.perf_counter() - started) * 1e3, 3),
                    "flags": []})
            return status, body, extra
        trace_id, parent, _sampled = trace or admit_trace(None)
        rt = RequestTrace(trace_id, endpoint, parent=parent)
        try:
            status, body, extra = self._admit(endpoint, payload, rt)
        except Exception:
            record = rt.finish(500)
            self.traces.offer(record)  # crashes are tail, kept
            self._log_access(record)
            raise
        record = rt.finish(status)
        self.traces.offer(record)
        self._log_access(record)
        extra = dict(extra)
        extra[TRACE_ID_HEADER] = trace_id
        return status, body, extra

    def _log_access(self, record: Dict[str, Any]) -> None:
        if self._access_log is None:
            return
        queue_ms, compute_ms = queue_compute_ms(record)
        self._access_log.write({
            "ts": round(time.time(), 6),
            "trace": record["trace"],
            "tenant": record.get("tenant", ""),
            "endpoint": record.get("endpoint", ""),
            "status": record.get("status"),
            "rung": (record.get("attrs") or {}).get("rung"),
            "queue_ms": round(queue_ms, 3),
            "compute_ms": round(compute_ms, 3),
            "duration_ms": round(
                record.get("duration_s", 0.0) * 1e3, 3),
            "flags": record.get("flags") or []})

    def _admit(self, endpoint: str, payload: Any,
               rt: Optional[RequestTrace]
               ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        complaint = validate_request(payload)
        if complaint is not None:
            return 400, error_body(complaint), {}
        source = payload["program"]
        if len(source.encode("utf-8", "ignore")) > MAX_PROGRAM_BYTES:
            return 413, error_body(
                f"program exceeds {MAX_PROGRAM_BYTES} bytes"), {}
        tenant = payload.get("tenant", "default")
        adm = rt.begin("admission") if rt is not None else None
        if rt is not None:
            rt.note(tenant=tenant)
        admitted, wait = self.quotas.allow(tenant)
        if not admitted:
            self._shed.labels(reason="quota").inc()
            if rt is not None:
                rt.end(adm, outcome="quota")
                rt.flag("shed")
            return (429, error_body("tenant quota exhausted",
                                    retry_after_s=round(wait, 3)),
                    {"Retry-After": _retry_after(wait)})
        mode = payload.get("mode", "static")
        backend = payload.get("backend", self.config.default_backend)
        # degradation: heal if calm, count sustained queue pressure as
        # trouble, and in brownout drop compiled backends one rung
        # down the capability ladder (results stay byte-identical, so
        # the swap is honest) — *before* the fingerprint is computed,
        # so hot-tier entries stay exact
        rung = self.ladder.observe()
        line = self._pressure_line()
        if line > 0 and self.pool.outstanding >= line:
            rung = self.ladder.trouble("queue_pressure")
        if rt is not None:
            rt.note(rung=RUNG_NAMES[rung])
            if rung > RUNG_HEALTHY:
                rt.flag("degraded")
        if rung >= RUNG_BROWNOUT:
            backend = BACKEND_BROWNOUT_FALLBACK.get(backend, backend)
        sha = program_sha(source)
        fingerprint = job_fingerprint(endpoint, sha, mode, backend)
        deadline_ms = payload.get("deadline_ms",
                                  self.config.default_deadline_ms)
        deadline = (time.monotonic() + deadline_ms / 1000.0
                    if deadline_ms else None)
        retry_degraded = {"Retry-After":
                          _retry_after(self.config.heal_after_s)}
        wait_span = None  # the coalesce-wait span, followers only
        leader = False
        with self._lock:
            hot = self._hot.get(fingerprint)
            if hot is not None:
                # the hot tier is fingerprint-exact and one dict
                # lookup — it stays on at every rung
                self._hot.move_to_end(fingerprint)
                self._hits.labels(tier="frontend").inc()
                if rt is not None:
                    rt.end(adm, outcome="hot")
                    rt.instant("cache-hot", tier="frontend")
                return hot[0], hot[1], {}
            if rung >= RUNG_SHED:
                self._shed.labels(reason="degraded").inc()
                if rt is not None:
                    rt.end(adm, outcome="shed")
                    rt.flag("shed")
                return (503, error_body(
                    "service shedding load (degraded)",
                    rung=RUNG_NAMES[rung]), retry_degraded)
            if rung >= RUNG_BROWNOUT and endpoint != "analyze":
                self._shed.labels(reason="degraded").inc()
                if rt is not None:
                    rt.end(adm, outcome="shed")
                    rt.flag("shed")
                return (503, error_body(
                    "service degraded: analyze-only (brownout)",
                    rung=RUNG_NAMES[rung]), retry_degraded)
            pending = self._inflight.get(fingerprint)
            if pending is not None:
                self._coalesced.inc()
                if rt is not None:
                    # a follower: its trace shows one coalesce-wait
                    # span naming the leader's trace, where the full
                    # pool/worker subtree lives
                    rt.end(adm, outcome="coalesced")
                    rt.flag("coalesced")
                    wait_span = rt.begin(
                        "coalesce-wait",
                        leader_trace=pending.job.trace_id)
            else:
                if self.pool.outstanding >= self.config.queue_depth:
                    self._shed.labels(reason="queue_full").inc()
                    if rt is not None:
                        rt.end(adm, outcome="queue_full")
                        rt.flag("shed")
                    return (429, error_body("service overloaded"),
                            {"Retry-After": _retry_after(1.0)})
                job = Job(endpoint=endpoint, source=source,
                          source_sha=sha, fingerprint=fingerprint,
                          mode=mode, backend=backend, tenant=tenant,
                          deadline=deadline,
                          trace_id=rt.trace_id if rt else "",
                          root_span=rt.root["span"] if rt else "")
                pending = PendingJob(job, on_resolve=self._complete)
                self._inflight[fingerprint] = pending
                leader = True
                if rt is not None:
                    rt.end(adm, outcome="admitted")
                self.pool.submit(pending)
                self._queue_gauge.set(self.pool.outstanding)
        budget = (max(0.0, deadline - time.monotonic()) + 5.0
                  if deadline is not None
                  else self.config.request_timeout_s)
        if not pending.done.wait(timeout=budget):
            # the job is still running; it will land in the hot tier
            # for whoever retries.  Don't adopt spans here — the
            # dispatcher still owns them
            if rt is not None:
                if wait_span is not None:
                    rt.end(wait_span, outcome="timeout")
                rt.flag("timeout")
            return 504, error_body("request timed out"), {}
        outcome = pending.outcome
        if rt is not None:
            if wait_span is not None:
                rt.end(wait_span, status=outcome.status)
            elif leader:
                # the dispatcher finished writing before done was
                # set, so this read is safe without the pool lock
                rt.adopt(pending.spans)
                if pending.faulted:
                    rt.flag("faulted")
                if pending.requeued:
                    rt.flag("requeued")
        if outcome.memo:
            self._hits.labels(tier="worker").inc()
        return outcome.status, outcome.body, {}

    def _complete(self, pending: PendingJob) -> None:
        """Runs in a dispatcher thread the moment a job resolves."""
        outcome = pending.outcome
        with self._lock:
            self._inflight.pop(pending.job.fingerprint, None)
            if outcome is not None and outcome.ok:
                self._hot[pending.job.fingerprint] = (outcome.status,
                                                      outcome.body)
                self._hot.move_to_end(pending.job.fingerprint)
                while len(self._hot) > self.config.hot_results:
                    self._hot.popitem(last=False)
        if pending.computed:
            self._analyses.inc()
        if pending.cancelled:
            self._cancelled.inc()
        self._queue_gauge.set(self.pool.outstanding)

    # -- read-only routes ----------------------------------------------

    def metrics_text(self) -> str:
        return to_prometheus(self.metrics)

    def health(self) -> Dict[str, Any]:
        rung = self.ladder.observe()
        return {
            "status": "ok",
            "rung": RUNG_NAMES[rung],
            "ready": rung == RUNG_HEALTHY,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": self.pool.workers,
            "workers_alive": self.pool.alive_workers(),
            "worker_restarts": self.pool.restarts,
            "outstanding": self.pool.outstanding,
            "inflight_fingerprints": len(self._inflight),
            "hot_results": len(self._hot),
            "queue_depth": self.config.queue_depth,
            "cache_dir": self.config.cache_dir,
        }

    # -- lifecycle ------------------------------------------------------

    def serve_background(self) -> "ServeService":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-serve:{self.port}", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.pool.close()
        if self._access_log is not None:
            self._access_log.close()

    def __enter__(self) -> "ServeService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: deep listen backlog: bursts of new connections queue in the
    #: kernel instead of getting connection-refused
    request_queue_size = 128


def _retry_after(seconds: float) -> str:
    # a true ceiling: the header must never name a wait shorter than
    # the bucket's (int(s + 0.999) under-waits for s just above an
    # integer, inviting a guaranteed-futile retry)
    return str(max(1, math.ceil(seconds)))


def _make_handler(service: ServeService):
    class Handler(BaseHTTPRequestHandler):
        #: keep-alive is the throughput contract: closed-loop clients
        #: reuse one connection per thread
        protocol_version = "HTTP/1.1"
        #: one buffered write per response — with Nagle disabled this
        #: puts header+body in a single segment (no delayed-ACK stall)
        wbufsize = 1 << 16
        disable_nagle_algorithm = True
        #: per-connection socket timeout (slow-loris defence): header
        #: and body reads that stall past this drop the connection
        #: instead of pinning a handler thread forever
        timeout = service.config.read_timeout_s

        def log_message(self, fmt: str, *args: Any) -> None:
            pass  # request logging is the metrics registry's job

        def _send(self, status: int, body: bytes, content_type: str,
                  extra: Optional[Dict[str, str]] = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in (extra or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload: Any,
                       extra: Optional[Dict[str, str]] = None) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._send(status, body, "application/json", extra)

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    self._send(200,
                               service.metrics_text().encode("utf-8"),
                               PROMETHEUS_CONTENT_TYPE)
                elif path == "/healthz":
                    self._send_json(200, service.health())
                elif path == "/livez":
                    # liveness: the process answers — always 200 while
                    # the HTTP loop runs, whatever the rung
                    self._send_json(200, {"status": "alive"})
                elif path == "/readyz":
                    # readiness: only the healthy rung accepts full
                    # traffic; load balancers drain on 503 here while
                    # /livez keeps the process from being killed
                    rung = service.ladder.observe()
                    self._send_json(
                        200 if rung == RUNG_HEALTHY else 503,
                        {"status": ("ready" if rung == RUNG_HEALTHY
                                    else "degraded"),
                         "rung": RUNG_NAMES[rung]})
                elif path == "/traces" \
                        and service.traces is not None:
                    self._send_json(200, {
                        "stats": service.traces.stats(),
                        "traces": service.traces.snapshot()})
                elif path.startswith("/traces/") \
                        and service.traces is not None:
                    trace_id = path[len("/traces/"):]
                    record = service.traces.get(trace_id)
                    if record is None:
                        self._send_json(404, error_body(
                            f"no retained trace {trace_id!r}"))
                    else:
                        self._send_json(200, record)
                else:
                    self._send_json(
                        404, error_body(f"no route {path!r}"))
            except BrokenPipeError:
                pass
            except Exception as err:
                self._send_json(500, error_body(str(err)))

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            started = time.perf_counter()
            # admit the trace context first: every response — shed,
            # rejected, crashed — names its trace id, because the
            # rejects are exactly the traces worth pulling up
            trace_ctx = (admit_trace(self.headers.get(TRACE_HEADER))
                         if service.traces is not None else None)
            trace_hdr = ({TRACE_ID_HEADER: trace_ctx[0]}
                         if trace_ctx is not None else {})
            path = self.path.split("?", 1)[0].rstrip("/")
            endpoint = path[len("/v1/"):] if path.startswith("/v1/") \
                else None
            if endpoint not in ENDPOINTS:
                self._send_json(404, error_body(f"no route {path!r}"),
                                trace_hdr)
                return
            # body hygiene: a declared, bounded length is the price of
            # admission — chunked or lengthless bodies are 411 (we
            # never read unbounded), oversized declarations are 413
            # before a single body byte is read
            if self.headers.get("Transfer-Encoding"):
                self.close_connection = True
                self._send_json(411, error_body(
                    "chunked bodies not accepted; "
                    "send Content-Length"), trace_hdr)
                return
            declared = self.headers.get("Content-Length")
            if declared is None:
                self.close_connection = True
                self._send_json(411, error_body(
                    "Content-Length required"), trace_hdr)
                return
            try:
                length = int(declared)
            except ValueError:
                length = -1
            if length < 0 or length > MAX_PROGRAM_BYTES * 2:
                self.close_connection = True
                self._send_json(413, error_body("bad request length"),
                                trace_hdr)
                return
            try:
                raw = self.rfile.read(length)
            except socket.timeout:
                # slow-loris body: drop the connection rather than
                # wait out a client that trickles bytes forever
                self.close_connection = True
                self._send_json(408,
                                error_body("body read timed out"),
                                trace_hdr)
                return
            if len(raw) < length:
                self.close_connection = True
                self._send_json(400, error_body("truncated body"),
                                trace_hdr)
                return
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                service._requests.labels(endpoint=endpoint,
                                         status="400").inc()
                self._send_json(400, error_body("invalid JSON body"),
                                trace_hdr)
                return
            try:
                status, body, extra = service.handle_job(
                    endpoint, payload, trace=trace_ctx)
            except Exception as err:  # the service must stay up
                status, body, extra = 500, error_body(
                    f"{type(err).__name__}: {err}"), dict(trace_hdr)
            service._requests.labels(endpoint=endpoint,
                                     status=str(status)).inc()
            # a latency observation carries its trace id as an
            # exemplar only when the tail sampler retained the trace
            # — a scraped tail bucket then names a pullable trace
            exemplar = None
            if (trace_ctx is not None
                    and service.traces.get(trace_ctx[0]) is not None):
                exemplar = trace_ctx[0]
            service._latency.labels(endpoint=endpoint).observe(
                time.perf_counter() - started, exemplar=exemplar)
            try:
                self._send_json(status, body, extra)
            except BrokenPipeError:
                pass

    return Handler
