"""Deterministic fault-injection plane for the *serving* layer.

:mod:`repro.rtsj.faults` makes the simulated runtime's failure paths
exercisable deterministically; this module does the same one layer up,
at the service boundary, so worker crash storms, stuck workers, torn
cache shards, broken pipes, and latency spikes are tested the same way
region faults are — seeded, recorded, and replayable bit-for-bit:

* a :class:`ServiceFaultPlan` names the service sites to perturb and a
  per-site probability, all derived from one seed;
* a :class:`ServiceFaultInjector` is consulted by the worker pool at
  each dispatch (``fire``) and records every injected fault as a
  :class:`~repro.rtsj.faults.FaultRecord` — the ordered list is a
  *schedule*;
* a :class:`ReplayServiceInjector` re-fires a recorded schedule
  exactly: the nth consult of a site fails iff it failed in the
  recorded run.

Determinism contract: ``fire`` keys decisions on the per-site consult
counter under a lock, never on wall clock.  A chaos campaign that
drives the service with one sequential client (the way
:mod:`repro.serve.chaos` does) therefore produces a consult sequence —
and an injected schedule — that is a pure function of (traffic, plan).

The sites, in consult order at each dispatch:

``worker_crash``   the worker process is SIGKILLed before the batch is
                   sent — the dispatcher sees EOF and must respawn
``worker_stall``   the worker sleeps past the pool's stall watchdog —
                   a missed deadline; the watchdog must kill + respawn
``latency_spike``  the worker sleeps *within* the watchdog budget — a
                   slow analysis the client's tail policy must absorb
``pipe_write``     the parent-side pipe send fails — same healing path
                   as a crash, without a dead process
``cache_corrupt``  the job's on-disk analysis-cache shard is torn
                   (truncated JSON) before dispatch — the worker's
                   quarantine path must recompute, never serve garbage

Schedules persist in the same JSONL shape as runtime schedules, with a
``target: "serve"`` header field so ``repro chaos --replay`` can route
a file to the right replay engine.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field
from typing import (Any, Dict, IO, Iterable, List, Mapping, Optional,
                    Tuple)

from ..rtsj.faults import FaultRecord, fault_key

__all__ = [
    "SERVICE_FAULT_SITES", "ServiceFaultPlan", "ServiceFaultInjector",
    "ReplayServiceInjector", "fault_key", "FaultRecord",
    "write_schedule", "save_schedule", "load_schedule",
    "peek_schedule_target",
]

#: every service site the injector can be consulted at, in the order
#: the pool consults them per dispatch
SERVICE_FAULT_SITES: Tuple[str, ...] = (
    "worker_crash",    # SIGKILL the worker before dispatch
    "worker_stall",    # worker sleeps past the stall watchdog
    "latency_spike",   # worker sleeps within the watchdog budget
    "pipe_write",      # parent-side pipe send fails
    "cache_corrupt",   # torn on-disk analysis-cache shard
)

SCHEDULE_VERSION = 1
SCHEDULE_TARGET = "serve"


@dataclass(frozen=True)
class ServiceFaultPlan:
    """What to inject at the service boundary: one seed, per-site
    rates, an optional site filter, and the two sleep magnitudes.

    ``stall_ms`` must exceed the pool's stall watchdog for
    ``worker_stall`` to register as a missed deadline; ``spike_ms``
    must stay inside it so a spike is slow, not stuck.
    """

    seed: int = 0
    rate: float = 0.0
    rates: Mapping[str, float] = field(default_factory=dict)
    sites: Optional[Tuple[str, ...]] = None
    max_faults: Optional[int] = None
    #: worker sleep when ``worker_stall`` fires (milliseconds)
    stall_ms: float = 2000.0
    #: worker sleep when ``latency_spike`` fires (milliseconds)
    spike_ms: float = 50.0

    def __post_init__(self) -> None:
        unknown = set(self.rates) - set(SERVICE_FAULT_SITES)
        if self.sites is not None:
            unknown |= set(self.sites) - set(SERVICE_FAULT_SITES)
        if unknown:
            raise ValueError(
                f"unknown service fault site(s) {sorted(unknown)}; "
                f"known: {list(SERVICE_FAULT_SITES)}")

    def rate_for(self, site: str) -> float:
        if self.sites is not None and site not in self.sites:
            return 0.0
        return float(self.rates.get(site, self.rate))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "rates": dict(self.rates),
            "sites": list(self.sites) if self.sites is not None else None,
            "max_faults": self.max_faults,
            "stall_ms": self.stall_ms,
            "spike_ms": self.spike_ms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceFaultPlan":
        sites = data.get("sites")
        return cls(seed=int(data.get("seed", 0)),
                   rate=float(data.get("rate", 0.0)),
                   rates=dict(data.get("rates") or {}),
                   sites=tuple(sites) if sites is not None else None,
                   max_faults=data.get("max_faults"),
                   stall_ms=float(data.get("stall_ms", 2000.0)),
                   spike_ms=float(data.get("spike_ms", 50.0)))


class ServiceFaultInjector:
    """Seeded random injector for the serving layer.

    Unlike the runtime injector (which lives inside a deterministic
    single-threaded scheduler) this one is consulted from dispatcher
    threads, so every consult takes a lock: the per-site counters and
    the PRNG stream stay coherent no matter which thread asks.
    """

    def __init__(self, plan: ServiceFaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self.site_counts: Dict[str, int] = {s: 0
                                            for s in SERVICE_FAULT_SITES}
        self.injected: List[FaultRecord] = []
        self._rates = {s: plan.rate_for(s) for s in SERVICE_FAULT_SITES}

    @property
    def stall_ms(self) -> float:
        return self.plan.stall_ms

    @property
    def spike_ms(self) -> float:
        return self.plan.spike_ms

    def fire(self, site: str, detail: str = "") -> bool:
        """Consult the injector at ``site``; True means inject here.
        Always advances the per-site consult counter so recorded and
        replayed campaigns stay aligned."""
        with self._lock:
            seq = self.site_counts[site]
            self.site_counts[site] = seq + 1
            rate = self._rates[site]
            if rate <= 0.0:
                return False
            if (self.plan.max_faults is not None
                    and len(self.injected) >= self.plan.max_faults):
                return False
            if self._rng.random() >= rate:
                return False
            self.injected.append(
                FaultRecord(index=len(self.injected), site=site,
                            seq=seq, detail=detail))
            return True

    def counts(self) -> Dict[str, int]:
        """Injected faults per site (not consults)."""
        out = {s: 0 for s in SERVICE_FAULT_SITES}
        with self._lock:
            for record in self.injected:
                out[record.site] += 1
        return out


class ReplayServiceInjector:
    """Re-fires a recorded service schedule exactly: the nth consult
    of a site fails iff the recorded run's nth consult did."""

    def __init__(self, records: Iterable[FaultRecord],
                 plan: Optional[ServiceFaultPlan] = None) -> None:
        self.plan = plan or ServiceFaultPlan()
        self._fire_at = {(r.site, r.seq) for r in records}
        self._lock = threading.Lock()
        self.site_counts: Dict[str, int] = {s: 0
                                            for s in SERVICE_FAULT_SITES}
        self.injected: List[FaultRecord] = []

    @property
    def stall_ms(self) -> float:
        return self.plan.stall_ms

    @property
    def spike_ms(self) -> float:
        return self.plan.spike_ms

    def fire(self, site: str, detail: str = "") -> bool:
        with self._lock:
            seq = self.site_counts[site]
            self.site_counts[site] = seq + 1
            if (site, seq) not in self._fire_at:
                return False
            self.injected.append(
                FaultRecord(index=len(self.injected), site=site,
                            seq=seq, detail=detail))
            return True

    counts = ServiceFaultInjector.counts


# ---------------------------------------------------------------------------
# schedule persistence (same JSONL shape as rtsj schedules, tagged with
# target: "serve" so the replay CLI routes the file correctly)
# ---------------------------------------------------------------------------

def write_schedule(handle: IO[str], plan: ServiceFaultPlan,
                   records: Iterable[FaultRecord],
                   meta: Optional[Dict[str, Any]] = None) -> None:
    header: Dict[str, Any] = {"version": SCHEDULE_VERSION,
                              "target": SCHEDULE_TARGET,
                              "plan": plan.to_dict()}
    if meta:
        header["meta"] = meta
    handle.write(json.dumps(header, sort_keys=True) + "\n")
    for record in records:
        handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


def save_schedule(path: str, plan: ServiceFaultPlan,
                  records: Iterable[FaultRecord],
                  meta: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        write_schedule(handle, plan, records, meta)


def load_schedule(path: str) -> Tuple[ServiceFaultPlan,
                                      List[FaultRecord],
                                      Dict[str, Any]]:
    """Read a serve schedule back: (plan, records, meta)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"empty fault schedule: {path}")
    header = json.loads(lines[0])
    version = header.get("version")
    if version != SCHEDULE_VERSION:
        raise ValueError(
            f"unsupported schedule version {version!r} in {path} "
            f"(expected {SCHEDULE_VERSION})")
    if header.get("target") != SCHEDULE_TARGET:
        raise ValueError(
            f"{path} is not a serve schedule "
            f"(target={header.get('target')!r})")
    plan = ServiceFaultPlan.from_dict(header.get("plan") or {})
    records = [FaultRecord.from_dict(json.loads(line))
               for line in lines[1:]]
    return plan, records, dict(header.get("meta") or {})


def peek_schedule_target(path: str) -> str:
    """The ``target`` of a persisted schedule file without loading it:
    ``"serve"`` for service schedules, ``"runtime"`` for the rtsj
    plane's (whose headers predate the field)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                header = json.loads(line)
                return str(header.get("target") or "runtime")
    raise ValueError(f"empty fault schedule: {path}")
