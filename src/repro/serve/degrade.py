"""The degradation ladder: healthy → brownout → shed.

Overload and attrition policy for ``repro serve``, in one small state
machine the HTTP frontend consults on every admission:

* **healthy** (rung 0) — everything is admitted;
* **brownout** (rung 1) — expensive modes are disabled: ``run`` and
  ``inspect`` misses are answered ``503 + Retry-After`` (analyze-only
  service), and compiled backends fall one rung down the capability
  ladder (``c`` → ``py-fused`` — observable results are byte-identical
  across backends, so the downgrade is invisible except in
  ``backend_used``);
* **shed** (rung 2) — only fingerprint-exact hot-tier hits, health,
  and metrics are served; every miss is ``503 + Retry-After``.

Escalation is event-driven: worker deaths, stalls, pipe failures
(reported by the pool's ``on_worker_event``) and sustained queue
pressure call :meth:`DegradationLadder.trouble`.  One trouble takes a
healthy service to brownout; a streak of them while already browned
out takes it to shed.  Healing is time-driven: once the service has
been *calm* (no trouble, full worker complement, low queue) for
``heal_after_s``, :meth:`observe` steps down one rung per interval —
shed → brownout → healthy, never straight down.

The hot-results tier stays on at every rung on purpose: those bodies
are fingerprint-exact (the machine is deterministic), so serving them
costs one dict lookup and is always correct — the cheapest possible
request is the last thing to turn off.

Every transition is counted
(``repro_serve_rung_transitions_total{from,to}``) and the current rung
exported as a gauge (``repro_serve_degradation_rung``), which is what
the serve-chaos gate uses to assert the healthy → brownout → healthy
arc actually happened.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

__all__ = ["RUNG_HEALTHY", "RUNG_BROWNOUT", "RUNG_SHED", "RUNG_NAMES",
           "BACKEND_BROWNOUT_FALLBACK", "DegradationLadder"]

RUNG_HEALTHY = 0
RUNG_BROWNOUT = 1
RUNG_SHED = 2
RUNG_NAMES = ("healthy", "brownout", "shed")

#: brownout backend downgrade — one step down the capability ladder
#: that serve's startup probing already uses; results stay
#: byte-identical (the codegen equivalence gate is the proof), so only
#: ``backend_used`` betrays the swap
BACKEND_BROWNOUT_FALLBACK = {"c": "py-fused"}


class DegradationLadder:
    """Tracks the rung, escalates on trouble, heals when calm."""

    def __init__(self, heal_after_s: float = 0.5,
                 shed_after_troubles: int = 5,
                 calm: Optional[Callable[[], bool]] = None,
                 metrics: Optional[Any] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.heal_after_s = max(0.0, heal_after_s)
        self.shed_after_troubles = max(2, shed_after_troubles)
        #: extra heal precondition (full worker complement, quiet
        #: queue); None means time alone heals
        self._calm = calm
        self._clock = clock
        self._lock = threading.Lock()
        self._rung = RUNG_HEALTHY
        self._streak = 0          # troubles since last step down
        self._last_trouble = 0.0  # clock stamp of the newest trouble
        self._last_reason = ""
        if metrics is not None:
            self._rung_gauge = metrics.gauge(
                "repro_serve_degradation_rung",
                "current degradation rung "
                "(0=healthy 1=brownout 2=shed)")
            self._rung_gauge.set(RUNG_HEALTHY)
            self._transitions = metrics.counter(
                "repro_serve_rung_transitions_total",
                "degradation rung transitions")
        else:
            self._rung_gauge = self._transitions = None

    # -- introspection --------------------------------------------------

    @property
    def rung(self) -> int:
        with self._lock:
            return self._rung

    @property
    def rung_name(self) -> str:
        return RUNG_NAMES[self.rung]

    @property
    def last_reason(self) -> str:
        with self._lock:
            return self._last_reason

    # -- transitions ----------------------------------------------------

    def _move(self, target: int) -> None:
        """Record a rung change; caller holds the lock."""
        if target == self._rung:
            return
        if self._transitions is not None:
            self._transitions.labels(
                src=RUNG_NAMES[self._rung],
                dst=RUNG_NAMES[target]).inc()
        self._rung = target
        if self._rung_gauge is not None:
            self._rung_gauge.set(target)

    def trouble(self, reason: str) -> int:
        """A service-level failure signal (worker death, stall, pipe
        failure, sustained queue pressure).  One trouble browns out a
        healthy service; a streak of ``shed_after_troubles`` while
        already degraded sheds.  Returns the rung after the event."""
        now = self._clock()
        with self._lock:
            self._last_trouble = now
            self._last_reason = reason
            self._streak += 1
            if self._rung == RUNG_HEALTHY:
                self._move(RUNG_BROWNOUT)
            elif (self._rung == RUNG_BROWNOUT
                    and self._streak >= self.shed_after_troubles):
                self._move(RUNG_SHED)
            return self._rung

    def observe(self) -> int:
        """The admission-path consult: heal if the calm window has
        elapsed, then return the current rung.  Healing steps down one
        rung per elapsed window — recovery is gradual by design, so a
        service that sheds doesn't slam straight back into full
        admission while its workers are still warming."""
        with self._lock:
            if self._rung == RUNG_HEALTHY:
                return self._rung
            now = self._clock()
            if now - self._last_trouble < self.heal_after_s:
                return self._rung
            if self._calm is not None and not self._calm():
                # not calm yet: restart the window so flapping load
                # can't oscillate the rung
                self._last_trouble = now
                return self._rung
            self._move(self._rung - 1)
            self._streak = 0
            self._last_trouble = now  # next rung needs its own window
            return self._rung

    def worker_event(self, kind: str) -> None:
        """Pool ``on_worker_event`` hook: failures escalate, respawns
        are neutral (healing is time-based, not event-based)."""
        if kind in ("crash", "stall", "pipe_write"):
            self.trouble(kind)
