"""Seeded chaos campaigns against a live ``repro serve`` instance.

The runtime chaos plane (:mod:`repro.chaos`) proves the *machine*
degrades honestly under injected faults; this module proves the
*service* does.  A campaign:

1. boots a real :class:`~repro.serve.server.ServeService` (forked
   workers, HTTP sockets, the whole admission path) with a
   :class:`~repro.serve.faults.ServiceFaultInjector` wired into the
   pool's dispatch loop;
2. drives it with one sequential
   :class:`~repro.serve.client.ResilientClient` over a deterministic
   program corpus (each request a fresh content address, so every
   request is a cold dispatch that consults the fault sites);
3. checks the **resilience contract**: zero admitted requests lost
   (every request ends in a correct-or-honest answer), byte parity
   with direct CLI execution on every success (a corrupt cache shard
   must *never* leak into a response), every killed worker respawned,
   torn shards quarantined on disk, and the degradation ladder riding
   healthy → brownout → healthy;
4. optionally re-runs the whole campaign under a
   :class:`~repro.serve.faults.ReplayServiceInjector` and demands the
   same *identity* — fault schedule, per-request final statuses, and
   response digests — bit for bit.

Why replay works here at all: the client is strictly sequential, so
jobs reach the pool in request order regardless of how long retries,
backoff, or degradation 503s delay them (a blocked request retries
until admitted — it never reorders past another).  Pool dispatch count
is therefore a pure function of (traffic, fault decisions), and the
injector's per-site consult counters line up exactly between recorded
and replayed runs.  Wall-clock effects (how long a brownout lasted,
how many 503 retries a request burned) are deliberately excluded from
the identity.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from .client import ClientPolicy, ResilientClient
from .faults import (ReplayServiceInjector, ServiceFaultInjector,
                     ServiceFaultPlan, fault_key, save_schedule)
from .server import ServeConfig, ServeService

__all__ = ["CAMPAIGN_SCHEMA", "DEFAULT_MINIMA", "default_plan",
           "run_campaign", "run_serve_chaos", "replay_schedule",
           "campaign_telemetry"]

CAMPAIGN_SCHEMA = "repro-serve-chaos/1"

#: campaign corpus bases — small fast registry programs (cold cost in
#: the low ms); every request appends a variant comment so each one is
#: a fresh content address and a real pool dispatch
CORPUS_BASES = ("Array", "Tree")

#: every Nth request exercises ``run`` (full machine execution +
#: brownout gating); the rest are ``analyze`` (admitted at any rung
#: below shed, which keeps campaigns fast under heavy degradation)
RUN_EVERY = 4

#: the acceptance floor for a campaign's injected schedule — the gate
#: keeps issuing extra requests (bounded) until these are met
DEFAULT_MINIMA = {"worker_crash": 3, "worker_stall": 1,
                  "cache_corrupt": 1}

#: hard cap on top-up traffic, as a multiple of the requested count
TOPUP_FACTOR = 3


def default_plan(seed: int = 0) -> ServiceFaultPlan:
    """Rates tuned so ~32 requests meet :data:`DEFAULT_MINIMA` for
    most seeds without top-up traffic."""
    return ServiceFaultPlan(
        seed=seed,
        rates={"worker_crash": 0.14, "worker_stall": 0.05,
               "latency_spike": 0.10, "pipe_write": 0.06,
               "cache_corrupt": 0.08},
        stall_ms=4000.0, spike_ms=40.0)


def _campaign_config(workers: int, cache_dir: str) -> ServeConfig:
    return ServeConfig(
        workers=workers, cache_dir=cache_dir,
        # the watchdog must sit far above a legitimate small-program
        # analysis (ms) and far below plan.stall_ms, so only injected
        # stalls trip it even on a noisy CI host
        stall_timeout_s=1.25,
        heal_after_s=0.25,
        default_backend="py")


def _campaign_policy(seed: int) -> ClientPolicy:
    return ClientPolicy(
        # generous retries: a request may ride a crash (500 after the
        # transparent requeue also fails), then a brownout 503, and
        # still has budget to land — "zero lost" is the contract
        max_retries=10,
        backoff_base_s=0.02, backoff_cap_s=0.5,
        jitter_seed=seed,
        # the breaker and hedging stay off in campaigns: both make
        # request timing feed back into request *behavior*, which
        # would break bit-for-bit replay
        breaker_threshold=0, hedge=False)


def _corpus_sources(fast: bool = True) -> Dict[str, str]:
    from ..bench.suite import BENCHMARKS
    return {name: BENCHMARKS[name].source(fast=fast)
            for name in CORPUS_BASES}


def _references(sources: Dict[str, str]) -> Dict[str, Dict[str, Any]]:
    """Direct in-process execution: the byte-identity reference a
    served success must match exactly."""
    from ..core.api import analyze
    from ..interp.machine import RunOptions, execute
    out: Dict[str, Dict[str, Any]] = {}
    for name, source in sources.items():
        analyzed = analyze(source)
        assert not analyzed.errors, f"{name} failed analysis"
        result, _machine = execute(analyzed, RunOptions(
            checks_enabled=False, validate=False, instrument=False,
            backend="py"))
        out[name] = {
            "classes": len(analyzed.program.classes),
            "cycles": result.stats.cycles,
            "output_sha256": hashlib.sha256(
                "\n".join(result.output).encode()).hexdigest(),
        }
    return out


def _body_digest(body: Dict[str, Any]) -> str:
    """Canonical digest of a response body with the volatile bits
    (per-worker cache statistics) dropped — the replay identity unit."""
    trimmed = {k: v for k, v in body.items() if k != "cache"}
    return hashlib.sha256(json.dumps(
        trimmed, sort_keys=True,
        separators=(",", ":")).encode()).hexdigest()


def _labeled_value(text: str, name: str,
                   want: Dict[str, str]) -> float:
    """Sum of exposition samples of ``name`` whose labels include
    ``want`` — how the campaign reads rung transitions off /metrics."""
    total = 0.0
    prefix = name + "{"
    for line in text.splitlines():
        if not line.startswith(prefix):
            continue
        label_part = line[len(prefix):line.index("}")]
        pairs = {}
        for item in label_part.split(","):
            key, _, value = item.partition("=")
            pairs[key] = value.strip('"')
        if all(pairs.get(k) == v for k, v in want.items()):
            total += float(line.split()[-1])
    return total


def _count_quarantined(cache_dir: str) -> int:
    count = 0
    for _root, _dirs, files in os.walk(cache_dir):
        count += sum(1 for f in files if ".corrupt-" in f)
    return count


def _minima_met(injector: Any,
                minima: Dict[str, int]) -> bool:
    counts = injector.counts()
    return all(counts.get(site, 0) >= floor
               for site, floor in minima.items())


def run_campaign(plan: Optional[ServiceFaultPlan] = None,
                 requests: int = 32, workers: int = 2,
                 injector: Optional[Any] = None,
                 minima: Optional[Dict[str, int]] = None,
                 fast: bool = True) -> Dict[str, Any]:
    """One full campaign against a freshly booted service.  Pass a
    ``ReplayServiceInjector`` as ``injector`` to re-run a recorded
    schedule; otherwise a seeded random injector is built from
    ``plan``."""
    plan = plan or default_plan()
    minima = DEFAULT_MINIMA if minima is None else minima
    if injector is None:
        injector = ServiceFaultInjector(plan)
    sources = _corpus_sources(fast=fast)
    reference = _references(sources)
    bases = list(CORPUS_BASES)
    started = time.perf_counter()
    results: List[Dict[str, Any]] = []
    parity_failures: List[str] = []
    contract_failures: List[str] = []

    with tempfile.TemporaryDirectory(
            prefix="repro-serve-chaos-") as tmp:
        config = _campaign_config(workers, tmp)
        with ServeService(config,
                          fault_injector=injector
                          ).serve_background() as service:
            client = ResilientClient(service.host, service.port,
                                     _campaign_policy(plan.seed))
            cap = requests * TOPUP_FACTOR + 12
            index = 0
            while (index < requests
                   or (not _minima_met(injector, minima)
                       and index < cap)):
                base = bases[index % len(bases)]
                endpoint = ("run" if index % RUN_EVERY == RUN_EVERY - 1
                            else "analyze")
                program = (sources[base]
                           + f"\n// chaos variant {index}\n")
                outcome = client.post(endpoint, {
                    "program": program, "mode": "static",
                    "backend": "py"})
                record = {
                    "index": index, "base": base,
                    "endpoint": endpoint,
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "body_sha256": (_body_digest(outcome.body)
                                    if outcome.ok else None),
                    # the join key into the service's retained traces;
                    # diagnostics only — replay identity stays
                    # fault_key/statuses/digests
                    "trace": outcome.headers.get(
                        "X-Repro-Trace-Id", ""),
                }
                if outcome.ok:
                    body = outcome.body
                    ref = reference[base]
                    if endpoint == "analyze":
                        if (not body.get("well_typed")
                                or body.get("classes")
                                != ref["classes"]):
                            parity_failures.append(
                                f"request {index}: analyze body "
                                f"diverges from CLI analysis")
                    else:
                        for quantity in ("cycles", "output_sha256"):
                            if body.get(quantity) != ref[quantity]:
                                parity_failures.append(
                                    f"request {index}: served "
                                    f"{quantity} {body.get(quantity)}"
                                    f" != CLI {ref[quantity]} "
                                    f"(determinism break)")
                else:
                    contract_failures.append(
                        f"request {index} ({endpoint}) lost: final "
                        f"status {outcome.status} after "
                        f"{outcome.attempts} attempts: "
                        f"{outcome.body.get('error')}")
                results.append(record)
                index += 1

            # -- recovery: the service must climb back to healthy ----
            recovered = False
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                status, raw = client.get("/healthz")
                if status == 200:
                    try:
                        health = json.loads(raw.decode("utf-8"))
                    except ValueError:
                        health = {}
                    if health.get("ready"):
                        recovered = True
                        break
                time.sleep(0.05)
            _status, metrics_raw = client.get("/metrics")
            metrics_text = metrics_raw.decode("utf-8", "replace")
            final_health: Dict[str, Any] = {}
            status, raw = client.get("/healthz")
            if status == 200:
                try:
                    final_health = json.loads(raw.decode("utf-8"))
                except ValueError:
                    pass
            client.close()
            quarantined = _count_quarantined(tmp)
            workers_alive = service.pool.alive_workers()
            restarts = service.pool.restarts

    wall_s = time.perf_counter() - started
    counts = injector.counts()
    down = _labeled_value(metrics_text,
                          "repro_serve_rung_transitions_total",
                          {"src": "healthy", "dst": "brownout"})
    up = _labeled_value(metrics_text,
                        "repro_serve_rung_transitions_total",
                        {"src": "brownout", "dst": "healthy"})

    contract_failures.extend(parity_failures)
    for site, floor in minima.items():
        if counts.get(site, 0) < floor:
            contract_failures.append(
                f"schedule minimum not met: {site} fired "
                f"{counts.get(site, 0)} < {floor} (cap {cap})")
    if workers_alive < workers:
        contract_failures.append(
            f"worker attrition not healed: {workers_alive}/{workers} "
            f"alive at campaign end")
    if counts.get("cache_corrupt", 0) > 0 and quarantined < 1:
        contract_failures.append(
            "cache_corrupt fired but no shard was quarantined")
    if not recovered:
        contract_failures.append(
            "service did not recover to the healthy rung within 15s")
    total_faults = len(injector.injected)
    if total_faults > 0 and (down < 1 or up < 1):
        contract_failures.append(
            f"degradation arc missing from /metrics: "
            f"healthy->brownout={int(down)} "
            f"brownout->healthy={int(up)}")

    identity = {
        "fault_key": [list(pair)
                      for pair in fault_key(injector.injected)],
        "statuses": [r["status"] for r in results],
        "digests": [r["body_sha256"] for r in results],
    }
    if not contract_failures:
        status_word = "recovered" if total_faults else "clean"
    else:
        status_word = "violation"
    return {
        "schema": CAMPAIGN_SCHEMA,
        "plan": plan.to_dict(),
        "requests": len(results),
        "wall_s": round(wall_s, 3),
        "faults": counts,
        "fault_total": total_faults,
        "records": [r.to_dict() for r in injector.injected],
        "results": results,
        "identity": identity,
        "contract": {
            "lost_requests": sum(1 for r in results
                                 if r["status"] != 200),
            "parity_failures": len(parity_failures),
            "workers_alive": workers_alive,
            "workers": workers,
            "worker_restarts": restarts,
            "quarantined_shards": quarantined,
            "recovered_healthy": recovered,
            "transitions_down": int(down),
            "transitions_up": int(up),
            "final_rung": final_health.get("rung"),
        },
        "failures": contract_failures,
        "status": status_word,
        "ok": not contract_failures,
    }


def _identity_mismatches(expected: Dict[str, Any],
                         actual: Dict[str, Any]) -> List[str]:
    out: List[str] = []
    # JSON round-trips turn tuples into lists; normalise both sides
    for key in ("fault_key", "statuses", "digests"):
        want = [list(v) if isinstance(v, (list, tuple)) else v
                for v in expected.get(key, [])]
        have = [list(v) if isinstance(v, (list, tuple)) else v
                for v in actual.get(key, [])]
        if want != have:
            out.append(
                f"{key} diverged: recorded {len(want)} item(s), "
                f"replay {len(have)}"
                + ("" if len(want) != len(have) else
                   next((f"; first at index {i}: "
                         f"{want[i]!r} != {have[i]!r}"
                         for i in range(len(want))
                         if want[i] != have[i]), "")))
    return out


def run_serve_chaos(seed: int = 0, requests: int = 32,
                    workers: int = 2, verify: bool = True,
                    schedule_path: Optional[str] = None,
                    fast: bool = True) -> Dict[str, Any]:
    """Record a campaign, optionally verify it replays bit-for-bit,
    and optionally persist the schedule."""
    plan = default_plan(seed)
    report = run_campaign(plan, requests=requests, workers=workers,
                          fast=fast)
    if schedule_path:
        from .faults import FaultRecord
        save_schedule(schedule_path, plan,
                      [FaultRecord.from_dict(r)
                       for r in report["records"]],
                      meta={"identity": report["identity"],
                            "requests": requests,
                            "workers": workers})
        report["schedule_path"] = schedule_path
    if verify:
        from .faults import FaultRecord
        records = [FaultRecord.from_dict(r)
                   for r in report["records"]]
        replayed = run_campaign(
            plan, requests=requests, workers=workers,
            injector=ReplayServiceInjector(records, plan), fast=fast)
        mismatches = _identity_mismatches(report["identity"],
                                          replayed["identity"])
        report["replay_ok"] = (not mismatches) and replayed["ok"]
        report["replay_mismatches"] = mismatches
        report["replay_failures"] = replayed["failures"]
        if mismatches:
            report["status"] = "violation"
            report["ok"] = False
        elif not replayed["ok"]:
            report["ok"] = False
    return report


def replay_schedule(path: str, requests: Optional[int] = None,
                    workers: Optional[int] = None) -> Dict[str, Any]:
    """Re-run a persisted serve schedule and diff against its recorded
    identity."""
    from .faults import load_schedule
    plan, records, meta = load_schedule(path)
    report = run_campaign(
        plan,
        requests=int(requests or meta.get("requests", 32)),
        workers=int(workers or meta.get("workers", 2)),
        injector=ReplayServiceInjector(records, plan))
    mismatches: List[str] = []
    expected = meta.get("identity")
    if expected is not None:
        mismatches = _identity_mismatches(expected,
                                          report["identity"])
    report["replay_ok"] = (not mismatches) and report["ok"]
    report["replay_mismatches"] = mismatches
    if mismatches:
        report["status"] = "violation"
        report["ok"] = False
    return report


def campaign_telemetry(report: Dict[str, Any]) -> Dict[str, Any]:
    """Compact projection for telemetry envelopes."""
    contract = report.get("contract") or {}
    return {
        "schema": CAMPAIGN_SCHEMA,
        "requests": report.get("requests"),
        "fault_total": report.get("fault_total"),
        "faults": report.get("faults"),
        "status": report.get("status"),
        "ok": report.get("ok"),
        "lost_requests": contract.get("lost_requests"),
        "worker_restarts": contract.get("worker_restarts"),
        "replay_ok": report.get("replay_ok"),
    }
