"""Per-tenant token buckets: the admission layer's quota half.

The paper's framing (via Gerakios et al. in PAPERS.md) treats a
request's resources as a region-like capability: admitted as a unit,
metered while held, reclaimed on exit.  Here the capability is a token
from the tenant's bucket — refilled at ``rate`` per second up to
``burst`` — and a request that cannot take one is shed *before* it
touches the queue, with a ``Retry-After`` telling the client exactly
when the next token lands.

Thread-safe; buckets are created on first sight of a tenant and the
table is bounded so an adversarial tenant-id stream cannot grow it
without limit (past the cap, unknown tenants share one overflow
bucket, mirroring the metrics registry's label-cardinality cap).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

#: past this many distinct tenants, new ones share the overflow bucket
DEFAULT_MAX_TENANTS = 1024

_OVERFLOW = "<other>"


class TokenBucket:
    """Classic token bucket; one per tenant."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float,
                 now: Optional[float] = None) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = time.monotonic() if now is None else now

    def allow(self, now: Optional[float] = None,
              cost: float = 1.0) -> Tuple[bool, float]:
        """Take ``cost`` tokens if available.

        Returns ``(True, 0.0)`` on admission, else ``(False, wait)``
        where ``wait`` is the seconds until the bucket will hold
        ``cost`` tokens again — the ``Retry-After`` value.
        """
        if now is None:
            now = time.monotonic()
        elapsed = now - self.stamp
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True, 0.0
        if self.rate <= 0:
            return False, float("inf")
        return False, (cost - self.tokens) / self.rate


class QuotaTable:
    """Tenant name -> bucket, lazily populated, bounded, thread-safe.

    ``rate <= 0`` disables quotas entirely (every request admitted) —
    the default for tests and single-user CLI serving.
    """

    def __init__(self, rate: float = 0.0, burst: float = 0.0,
                 max_tenants: int = DEFAULT_MAX_TENANTS) -> None:
        self.rate = float(rate)
        self.burst = float(burst) if burst > 0 else max(1.0, float(rate))
        self.max_tenants = max_tenants
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, tenant: str) -> Tuple[bool, float]:
        if not self.enabled:
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                if len(self._buckets) >= self.max_tenants:
                    tenant = _OVERFLOW
                    bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = TokenBucket(self.rate, self.burst)
                    self._buckets[tenant] = bucket
            return bucket.allow()

    def tenants(self) -> int:
        with self._lock:
            return len(self._buckets)
