"""The pre-forked worker pool and its micro-batching dispatchers.

Topology: N forked worker processes (fork start method on Linux — the
pool is constructed *before* the HTTP threads start, so forking is
safe), each wired to the parent by one ``Pipe`` and fed by one
dispatcher thread.  All dispatchers pull from a single shared queue:

* a dispatcher blocks for the next pending job, then **drains up to
  ``batch_max - 1`` more without blocking** — under load, queued jobs
  ride along in one pipe round-trip (micro-batching), while an idle
  service degenerates to batch size 1 and minimum latency;
* jobs whose deadline passed while queued are answered ``504`` right
  here and never cross the pipe (cancellation before execution — the
  worker re-checks per item for deadlines that expire mid-batch);
* a worker that dies mid-batch fails only that batch (each job gets a
  ``500``), and the dispatcher forks a fresh replacement before
  pulling more work — the pool heals itself.

Admission control belongs to the caller: :attr:`WorkerPool.outstanding`
is the live queued+in-flight count the frontend compares against its
bounded queue depth before calling :meth:`submit`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .protocol import Job, JobOutcome, error_body

_SHUTDOWN = object()


@dataclass
class PendingJob:
    """One submitted job: the dispatcher resolves it exactly once."""

    job: Job
    #: called (in the dispatcher thread) with the outcome — the serve
    #: frontend uses it to fill the coalescing slot and hot cache
    on_resolve: Optional[Callable[["PendingJob"], None]] = None
    outcome: Optional[JobOutcome] = None
    #: True when the pool cancelled the job before execution
    cancelled: bool = False
    #: True when a worker actually computed (ran frontend/machine)
    computed: bool = False
    done: threading.Event = field(default_factory=threading.Event)

    def resolve(self, outcome: JobOutcome, *, cancelled: bool = False,
                computed: bool = False) -> None:
        self.outcome = outcome
        self.cancelled = cancelled
        self.computed = computed
        if self.on_resolve is not None:
            try:
                self.on_resolve(self)
            except Exception:
                pass  # a frontend bug must not wedge the dispatcher
        self.done.set()


class WorkerPool:
    """N warm workers behind one bounded dispatch queue."""

    def __init__(self, workers: int = 2,
                 cache_root: Optional[str] = None,
                 batch_max: int = 8,
                 metrics: Optional[Any] = None) -> None:
        import multiprocessing as mp
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.cache_root = cache_root
        self.batch_max = max(1, batch_max)
        self._ctx = mp.get_context()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.Lock()
        self._outstanding = 0
        self._closed = False
        self._procs: List[Any] = [None] * workers
        self._conns: List[Any] = [None] * workers
        self._restarts = 0
        self._metrics = metrics
        if metrics is not None:
            self._batch_hist = metrics.histogram(
                "repro_serve_batch_size",
                "jobs per worker dispatch (micro-batching)",
                buckets=tuple(range(1, self.batch_max + 1)))
            self._restart_ctr = metrics.counter(
                "repro_serve_worker_restarts_total",
                "worker processes replaced after a crash")
        else:
            self._batch_hist = self._restart_ctr = None
        for i in range(workers):
            self._spawn(i)
        self._threads = [
            threading.Thread(target=self._dispatch, args=(i,),
                             name=f"repro-serve-dispatch-{i}",
                             daemon=True)
            for i in range(workers)]
        for t in self._threads:
            t.start()

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, index: int) -> None:
        from .worker import worker_main
        parent_conn, child_conn = self._ctx.Pipe()
        # the fork copies every parent-side pipe end into the child —
        # including this very pipe's, which would keep its write end
        # open *inside the worker* and turn a dead parent into a
        # forever-blocked recv instead of EOF.  Hand the child the full
        # list to close first thing, so workers always exit when the
        # parent goes away, however it went away.
        unwanted = ([parent_conn]
                    + [c for c in self._conns if c is not None])
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.cache_root, unwanted),
            name=f"repro-serve-worker-{index}", daemon=True)
        proc.start()
        child_conn.close()
        self._procs[index] = proc
        self._conns[index] = parent_conn

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    @property
    def restarts(self) -> int:
        return self._restarts

    def alive_workers(self) -> int:
        return sum(1 for p in self._procs
                   if p is not None and p.is_alive())

    # -- submission -----------------------------------------------------

    def submit(self, pending: PendingJob) -> PendingJob:
        """Enqueue; the caller is responsible for admission control
        (checking :attr:`outstanding` against its queue bound first)."""
        if self._closed:
            pending.resolve(JobOutcome(
                503, error_body("service shutting down")))
            return pending
        with self._lock:
            self._outstanding += 1
        self._queue.put(pending)
        return pending

    def _finish(self, pending: PendingJob, outcome: JobOutcome,
                **kw: Any) -> None:
        with self._lock:
            self._outstanding -= 1
        pending.resolve(outcome, **kw)

    # -- the dispatcher -------------------------------------------------

    def _take_batch(self) -> Optional[List[PendingJob]]:
        head = self._queue.get()
        if head is _SHUTDOWN:
            return None
        batch = [head]
        while len(batch) < self.batch_max:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # keep the sentinel moving so every dispatcher stops
                self._queue.put(item)
                break
            batch.append(item)
        return batch

    def _dispatch(self, index: int) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            now = time.monotonic()
            live: List[PendingJob] = []
            for p in batch:
                if (p.job.deadline is not None
                        and now >= p.job.deadline):
                    self._finish(p, JobOutcome(
                        504, error_body("deadline exceeded")),
                        cancelled=True)
                else:
                    live.append(p)
            if not live:
                continue
            if self._batch_hist is not None:
                self._batch_hist.observe(len(live))
            conn = self._conns[index]
            try:
                conn.send([p.job.to_wire() for p in live])
                replies = conn.recv()
            except (EOFError, OSError, ValueError):
                for p in live:
                    self._finish(p, JobOutcome(
                        500, error_body("worker process died")))
                if not self._closed:
                    self._restarts += 1
                    if self._restart_ctr is not None:
                        self._restart_ctr.inc()
                    self._spawn(index)
                continue
            for p, reply in zip(live, replies):
                self._finish(
                    p,
                    JobOutcome(reply["status"], reply["body"],
                               memo=reply.get("memo", False)),
                    cancelled=reply.get("cancelled", False),
                    computed=reply.get("computed", False))

    # -- shutdown -------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop dispatchers, drain workers, reap every child process."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for t in self._threads:
            t.join(timeout=timeout)
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for i, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            self._procs[i] = None
        for i, conn in enumerate(self._conns):
            try:
                conn.close()
            except OSError:
                pass
            self._conns[i] = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
