"""The pre-forked worker pool and its micro-batching dispatchers.

Topology: N forked worker processes (fork start method on Linux — the
pool is constructed *before* the HTTP threads start, so forking is
safe), each wired to the parent by one ``Pipe`` and fed by one
dispatcher thread.  All dispatchers pull from a single shared queue:

* a dispatcher blocks for the next pending job, then **drains up to
  ``batch_max - 1`` more without blocking** — under load, queued jobs
  ride along in one pipe round-trip (micro-batching), while an idle
  service degenerates to batch size 1 and minimum latency;
* jobs whose deadline passed while queued are answered ``504`` right
  here and never cross the pipe (cancellation before execution — the
  worker re-checks per item for deadlines that expire mid-batch);
* a worker that dies or wedges mid-batch fails only that batch: each
  job is **requeued once, transparently** (the retry is invisible to
  the client — a single crash costs latency, not an error) or answered
  ``500`` honestly if it already rode a dead worker, and the
  dispatcher forks a fresh replacement before pulling more work — the
  pool heals itself;
* an optional **stall watchdog** (``stall_timeout_s``) bounds how long
  a dispatcher waits for a worker's reply: a wedged worker — stuck,
  not dead — is killed and replaced through the same healing path as a
  crash, so a missed deadline can't pin a dispatcher forever.

The pool is also where the serve resilience plane injects failures: an
optional :class:`~repro.serve.faults.ServiceFaultInjector` is
consulted once per site per dispatch (fixed order, so recorded chaos
schedules replay bit-for-bit), and worker-lifecycle events are
reported to an optional callback the degradation ladder listens on.

Admission control belongs to the caller: :attr:`WorkerPool.outstanding`
is the live queued+in-flight count the frontend compares against its
bounded queue depth before calling :meth:`submit`.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..obs.trace import end_span, start_span
from .protocol import Job, JobOutcome, error_body

_SHUTDOWN = object()


@dataclass
class PendingJob:
    """One submitted job: the dispatcher resolves it exactly once."""

    job: Job
    #: called (in the dispatcher thread) with the outcome — the serve
    #: frontend uses it to fill the coalescing slot and hot cache
    on_resolve: Optional[Callable[["PendingJob"], None]] = None
    outcome: Optional[JobOutcome] = None
    #: True when the pool cancelled the job before execution
    cancelled: bool = False
    #: True when a worker actually computed (ran frontend/machine)
    computed: bool = False
    #: True once the job has been transparently resubmitted after a
    #: worker failure — a second failure is answered 500, not retried
    requeued: bool = False
    #: True when a service fault touched this job's dispatch (injected
    #: crash/stall/spike/pipe/corruption, or a real worker death) —
    #: the tail sampler always retains fault-affected traces
    faulted: bool = False
    #: pool/worker spans accumulated for this job (traced jobs only);
    #: written by the dispatcher strictly before ``done`` is set, read
    #: by the coalescing leader strictly after — no lock needed
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: the open queue-wait span (one per submit/requeue)
    qspan: Optional[Dict[str, Any]] = None
    #: the open dispatch span for the in-flight attempt
    dspan: Optional[Dict[str, Any]] = None
    done: threading.Event = field(default_factory=threading.Event)

    def resolve(self, outcome: JobOutcome, *, cancelled: bool = False,
                computed: bool = False) -> None:
        self.outcome = outcome
        self.cancelled = cancelled
        self.computed = computed
        if self.on_resolve is not None:
            try:
                self.on_resolve(self)
            except Exception:
                pass  # a frontend bug must not wedge the dispatcher
        self.done.set()


class WorkerPool:
    """N warm workers behind one bounded dispatch queue."""

    def __init__(self, workers: int = 2,
                 cache_root: Optional[str] = None,
                 batch_max: int = 8,
                 metrics: Optional[Any] = None,
                 fault_injector: Optional[Any] = None,
                 stall_timeout_s: Optional[float] = None,
                 requeue_on_crash: bool = True,
                 on_worker_event: Optional[Callable[[str], None]]
                 = None,
                 flight_dir: Optional[str] = None) -> None:
        import multiprocessing as mp
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.cache_root = cache_root
        #: handed to each worker: traced inspect jobs dump their flight
        #: record here, keyed by trace id (see WarmWorker._dump_flight)
        self.flight_dir = flight_dir
        self.batch_max = max(1, batch_max)
        #: anything with fire(site, detail) / stall_ms / spike_ms —
        #: a ServiceFaultInjector or its replay twin (None in prod)
        self.faults = fault_injector
        #: reply-wait bound per dispatch; None disables the watchdog
        self.stall_timeout_s = stall_timeout_s
        self.requeue_on_crash = requeue_on_crash
        self._on_worker_event = on_worker_event
        self._ctx = mp.get_context()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.Lock()
        self._outstanding = 0
        self._closed = False
        self._procs: List[Any] = [None] * workers
        self._conns: List[Any] = [None] * workers
        self._restarts = 0
        self._metrics = metrics
        if metrics is not None:
            self._batch_hist = metrics.histogram(
                "repro_serve_batch_size",
                "jobs per worker dispatch (micro-batching)",
                buckets=tuple(range(1, self.batch_max + 1)))
            self._restart_ctr = metrics.counter(
                "repro_serve_worker_restarts_total",
                "worker processes replaced after a crash")
            self._requeue_ctr = metrics.counter(
                "repro_serve_requeued_jobs_total",
                "jobs transparently resubmitted after a worker "
                "failure")
        else:
            self._batch_hist = self._restart_ctr = None
            self._requeue_ctr = None
        for i in range(workers):
            self._spawn(i)
        self._threads = [
            threading.Thread(target=self._dispatch, args=(i,),
                             name=f"repro-serve-dispatch-{i}",
                             daemon=True)
            for i in range(workers)]
        for t in self._threads:
            t.start()

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, index: int) -> None:
        from .worker import worker_main
        parent_conn, child_conn = self._ctx.Pipe()
        # the fork copies every parent-side pipe end into the child —
        # including this very pipe's, which would keep its write end
        # open *inside the worker* and turn a dead parent into a
        # forever-blocked recv instead of EOF.  Hand the child the full
        # list to close first thing, so workers always exit when the
        # parent goes away, however it went away.
        unwanted = ([parent_conn]
                    + [c for c in self._conns if c is not None])
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.cache_root, unwanted,
                  self.flight_dir),
            name=f"repro-serve-worker-{index}", daemon=True)
        proc.start()
        child_conn.close()
        self._procs[index] = proc
        self._conns[index] = parent_conn

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    @property
    def restarts(self) -> int:
        return self._restarts

    def alive_workers(self) -> int:
        return sum(1 for p in self._procs
                   if p is not None and p.is_alive())

    # -- submission -----------------------------------------------------

    def submit(self, pending: PendingJob) -> PendingJob:
        """Enqueue; the caller is responsible for admission control
        (checking :attr:`outstanding` against its queue bound first)."""
        if self._closed:
            pending.resolve(JobOutcome(
                503, error_body("service shutting down")))
            return pending
        if pending.job.trace_id:
            pending.qspan = start_span("queue-wait", "pool",
                                       parent=pending.job.root_span)
        with self._lock:
            self._outstanding += 1
        self._queue.put(pending)
        return pending

    def _finish(self, pending: PendingJob, outcome: JobOutcome,
                **kw: Any) -> None:
        with self._lock:
            self._outstanding -= 1
        pending.resolve(outcome, **kw)

    def _event(self, kind: str) -> None:
        """Report a worker-lifecycle event (``crash`` / ``stall`` /
        ``pipe_write`` / ``respawn``) to the ladder, if one listens."""
        if self._on_worker_event is not None:
            try:
                self._on_worker_event(kind)
            except Exception:
                pass  # an observer bug must not wedge the dispatcher

    # -- fault consultation (chaos campaigns only; no-op in prod) -------

    def _consult_faults(self, index: int, live: List[PendingJob]
                        ) -> tuple:
        """Consult every service fault site exactly once for this
        dispatch — the fixed per-dispatch consult pattern is what makes
        recorded schedules replayable.  Returns
        ``(kill, delay_ms, pipe_fail)``."""
        injector = self.faults
        if injector is None:
            return False, None, False
        # the trace id rides in the fault *detail* — diagnostics, not
        # identity (replay compares fault_key/statuses/digests only),
        # so stamping it keeps chaos schedules replayable while giving
        # `repro chaos` a join key into retained traces
        detail = (f"worker={index} "
                  f"job={live[0].job.fingerprint[:12]}")
        if live[0].job.trace_id:
            detail += f" trace={live[0].job.trace_id[:16]}"
        kill = injector.fire("worker_crash", detail)
        stall = injector.fire("worker_stall", detail)
        spike = injector.fire("latency_spike", detail)
        pipe_fail = injector.fire("pipe_write", detail)
        corrupt = injector.fire("cache_corrupt", detail)
        if corrupt:
            self._corrupt_shard(live[0].job.source_sha)
        delay_ms: Optional[float] = None
        if stall:
            delay_ms = float(injector.stall_ms)
        elif spike:
            delay_ms = float(injector.spike_ms)
        if kill or stall or spike or pipe_fail or corrupt:
            # any fired fault taints every job riding this dispatch —
            # the tail sampler retains their traces unconditionally
            for p in live:
                p.faulted = True
        return kill, delay_ms, pipe_fail

    def _corrupt_shard(self, sha: str) -> None:
        """Tear the job's on-disk analysis-cache shard (truncated
        JSON) so the worker's disk-tier load must take the quarantine
        path instead of trusting the bytes."""
        if not self.cache_root:
            return
        from ..core.cache import shard_path
        path = shard_path(self.cache_root, sha)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"schema": "repro-analysis-cache/1", '
                             '"entries": {"torn')
        except OSError:
            pass

    # -- the dispatcher -------------------------------------------------

    def _take_batch(self) -> Optional[List[PendingJob]]:
        head = self._queue.get()
        if head is _SHUTDOWN:
            return None
        batch = [head]
        while len(batch) < self.batch_max:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # keep the sentinel moving so every dispatcher stops
                self._queue.put(item)
                break
            batch.append(item)
        return batch

    def _dispatch(self, index: int) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            now = time.monotonic()
            live: List[PendingJob] = []
            for p in batch:
                if (p.job.deadline is not None
                        and now >= p.job.deadline):
                    if p.qspan is not None:
                        p.spans.append(end_span(p.qspan,
                                                outcome="deadline"))
                        p.qspan = None
                    self._finish(p, JobOutcome(
                        504, error_body("deadline exceeded")),
                        cancelled=True)
                else:
                    live.append(p)
            if not live:
                continue
            if self._batch_hist is not None:
                self._batch_hist.observe(len(live))
            kill, delay_ms, pipe_fail = self._consult_faults(index,
                                                             live)
            if kill:
                proc = self._procs[index]
                if proc is not None:
                    proc.kill()
                    proc.join(timeout=2.0)
            for p in live:
                if p.qspan is not None:
                    p.spans.append(end_span(p.qspan))
                    p.qspan = None
                if p.job.trace_id:
                    p.dspan = start_span(
                        "dispatch", "pool", parent=p.job.root_span,
                        attrs={"worker": index, "batch": len(live),
                               "attempt": 2 if p.requeued else 1})
            wire = [p.job.to_wire() for p in live]
            for w, p in zip(wire, live):
                if p.dspan is not None:
                    # worker spans parent under this dispatch attempt,
                    # so a requeued job shows two distinct subtrees
                    w["parent_span"] = p.dspan["span"]
            if delay_ms is not None:
                # ride the delay on the wire: the worker sleeps before
                # handling, which is what a slow or stuck analysis
                # looks like from this side of the pipe
                wire[0]["_delay_ms"] = delay_ms
            conn = self._conns[index]
            try:
                if pipe_fail:
                    raise OSError("injected pipe-write failure")
                conn.send(wire)
                if (self.stall_timeout_s is not None
                        and not conn.poll(self.stall_timeout_s)):
                    # the worker is wedged, not dead: the watchdog
                    # turns a missed deadline into the healing path
                    self._heal(index, live, "stall")
                    continue
                replies = conn.recv()
            except (EOFError, OSError, ValueError):
                self._heal(index, live,
                           "pipe_write" if pipe_fail else "crash")
                continue
            for p, reply in zip(live, replies):
                if p.dspan is not None:
                    p.spans.append(end_span(p.dspan))
                    p.dspan = None
                if isinstance(reply, dict):
                    p.spans.extend(reply.pop("spans", None) or [])
                self._finish(
                    p,
                    JobOutcome(reply["status"], reply["body"],
                               memo=reply.get("memo", False)),
                    cancelled=reply.get("cancelled", False),
                    computed=reply.get("computed", False))

    def _heal(self, index: int, live: List[PendingJob],
              reason: str) -> None:
        """Replace a dead or wedged worker and re-route its batch:
        first failure per job is requeued transparently, a repeat is
        answered ``500`` honestly — an admitted request is never
        silently dropped."""
        proc = self._procs[index]
        if proc is not None and proc.is_alive():
            proc.kill()  # a stalled worker must die before respawn
            proc.join(timeout=2.0)
        try:
            self._conns[index].close()
        except OSError:
            pass
        self._event(reason)
        for p in live:
            p.faulted = True
            if p.dspan is not None:
                p.spans.append(end_span(p.dspan, outcome=reason))
                p.dspan = None
            if (self.requeue_on_crash and not self._closed
                    and not p.requeued):
                p.requeued = True
                if self._requeue_ctr is not None:
                    self._requeue_ctr.inc()
                if p.job.trace_id:
                    # the retry waits in queue again: a fresh
                    # queue-wait span keeps the tree honest about
                    # where the second attempt's time went
                    p.qspan = start_span("queue-wait", "pool",
                                         parent=p.job.root_span,
                                         attrs={"requeued": True})
                self._queue.put(p)  # outstanding stays counted
            else:
                self._finish(p, JobOutcome(
                    500, error_body("worker process died",
                                    reason=reason)))
        if not self._closed:
            self._restarts += 1
            if self._restart_ctr is not None:
                self._restart_ctr.inc()
            self._spawn(index)
            self._event("respawn")

    # -- shutdown -------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop dispatchers, drain workers, reap every child process."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for t in self._threads:
            t.join(timeout=timeout)
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for i, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            self._procs[i] = None
        for i, conn in enumerate(self._conns):
            try:
                conn.close()
            except OSError:
                pass
            self._conns[i] = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
