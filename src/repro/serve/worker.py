"""The warm worker: one forked process, three cache tiers.

Each worker keeps, in process memory:

* an :class:`~repro.core.cache.AnalysisCache` per program fingerprint
  (LRU-bounded), whose disk shard lives in the *shared* content-
  addressed tree (``shard_path(root, sha)``) — so a program analyzed
  by one worker is a warm disk hit on every sibling;
* the post-inference :class:`AnalyzedProgram` itself, keyed by program
  sha — a repeat of the same program skips the frontend entirely;
* a result memo keyed by job fingerprint.  The simulated machine is
  deterministic (same program + options ⇒ same cycles, same output),
  so replaying a finished body is *exact*, not approximate — this memo
  is what turns warm traffic into dictionary lookups.

The worker talks to the pool over a ``multiprocessing.Pipe``: the
parent sends a micro-batch (list of job dicts), the worker replies
with one result dict per job, order-preserving.  A ``None`` message is
the shutdown sentinel.  Deadlines are re-checked here before each job
starts: a job whose deadline passed while queued is answered 504
*without executing* (``computed: false`` in the reply lets the
frontend count real analyses exactly).

Tracing: a job carrying a ``trace_id`` gets worker-side spans
(``batch-wait``, cache-tier hits, ``analyze``, ``execute``,
``serialize``) returned in the reply's top-level ``spans`` list —
*never* in the body, so memoized and fresh bodies stay byte-identical
and chaos replay digests are unaffected.  When the pool was built with
a ``flight_dir``, each *computed* ``/v1/inspect`` job additionally
dumps its flight record there with the trace id stamped into the
header meta — the join key ``repro inspect --trace`` stitches service
spans to runtime events with.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from ..core.cache import AnalysisCache, shard_path
from ..errors import ReproError
from ..obs.trace import end_span, instant_span, start_span
from .protocol import error_body

#: LRU bounds — per worker, so memory stays flat under program churn
MAX_PROGRAMS = 128
MAX_RESULTS = 512

#: flight-recorder ring capacity for served /v1/inspect jobs
INSPECT_CAPACITY = 1 << 14


class WarmWorker:
    """The per-process execution engine behind the pool."""

    def __init__(self, cache_root: Optional[str] = None,
                 flight_dir: Optional[str] = None) -> None:
        self.cache_root = cache_root
        #: when set, computed inspect jobs dump their trace-id-stamped
        #: flight record here (side channel — never in the body)
        self.flight_dir = flight_dir
        self._caches: "OrderedDict[str, AnalysisCache]" = OrderedDict()
        self._analyzed: "OrderedDict[str, Any]" = OrderedDict()
        self._results: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # -- cache tiers ----------------------------------------------------

    def _touch(self, lru: OrderedDict, key: str, limit: int) -> None:
        lru.move_to_end(key)
        while len(lru) > limit:
            lru.popitem(last=False)

    def _analyze(self, source: str, sha: str,
                 spans: Optional[List[Dict[str, Any]]] = None,
                 parent: Optional[str] = None):
        """Frontend with all three tiers consulted; returns
        ``(analyzed, computed)`` where ``computed`` says whether any
        real frontend work ran (vs a pure in-memory replay)."""
        hit = self._analyzed.get(sha)
        if hit is not None:
            self._touch(self._analyzed, sha, MAX_PROGRAMS)
            if spans is not None:
                spans.append(instant_span("cache-lru", "worker",
                                          parent, tier="analyzed-lru"))
            return hit, False
        from ..core.api import analyze
        span = (start_span("analyze", "worker", parent)
                if spans is not None else None)
        cache = self._caches.get(sha)
        if cache is None:
            path = (shard_path(self.cache_root, sha)
                    if self.cache_root else None)
            cache = AnalysisCache(path)
            self._caches[sha] = cache
        self._touch(self._caches, sha, MAX_PROGRAMS)
        try:
            analyzed = analyze(source, cache=cache)
        except Exception:
            if span is not None:
                spans.append(end_span(span, outcome="raised"))
            raise
        stats = analyzed.cache_stats or {}
        if cache.path and stats.get("check_misses", 0) > 0:
            # something was genuinely re-checked: publish the shard so
            # siblings warm from it (atomic rename, last-write-wins)
            cache.save()
        self._analyzed[sha] = analyzed
        self._touch(self._analyzed, sha, MAX_PROGRAMS)
        if span is not None:
            spans.append(end_span(
                span, tier="disk" if stats.get("check_hits") else
                "computed",
                check_hits=stats.get("check_hits", 0),
                check_misses=stats.get("check_misses", 0)))
        return analyzed, True

    # -- job execution --------------------------------------------------

    def handle(self, job: Dict[str, Any],
               batch_received: Optional[float] = None
               ) -> Dict[str, Any]:
        delay_ms = job.get("_delay_ms")
        if delay_ms:
            # fault-injected slow analysis (latency spike) or wedge
            # (stall past the pool watchdog); see serve/faults.py
            time.sleep(float(delay_ms) / 1000.0)
        parent = job.get("parent_span")
        spans: Optional[List[Dict[str, Any]]] = (
            [] if job.get("trace_id") else None)
        if spans is not None and batch_received is not None:
            # time this job spent waiting behind earlier batch members
            wait = start_span("batch-wait", "worker", parent)
            wait["start"] = batch_received
            spans.append(end_span(wait, pid=os.getpid()))
        deadline = job.get("deadline")
        if deadline is not None and time.monotonic() >= deadline:
            return {"status": 504,
                    "body": error_body("deadline exceeded"),
                    "memo": False, "computed": False,
                    "cancelled": True, "spans": spans or []}
        fingerprint = job["fingerprint"]
        memo = self._results.get(fingerprint)
        if memo is not None:
            self._touch(self._results, fingerprint, MAX_RESULTS)
            if spans is not None:
                spans.append(instant_span("cache-memo", "worker",
                                          parent, tier="memo"))
            return {"status": memo["status"], "body": memo["body"],
                    "memo": True, "computed": False,
                    "spans": spans or []}
        try:
            reply = self._execute(job, spans, parent)
        except Exception as err:  # a job must never kill the worker
            reply = {"status": 500,
                     "body": error_body(
                         f"{type(err).__name__}: {err}"),
                     "computed": True}
        reply.setdefault("memo", False)
        reply.setdefault("computed", True)
        reply["spans"] = spans or []
        if reply["status"] != 500:
            self._results[fingerprint] = {"status": reply["status"],
                                          "body": reply["body"]}
            self._touch(self._results, fingerprint, MAX_RESULTS)
        return reply

    def _execute(self, job: Dict[str, Any],
                 spans: Optional[List[Dict[str, Any]]] = None,
                 parent: Optional[str] = None) -> Dict[str, Any]:
        endpoint = job["endpoint"]
        sha = job["source_sha"]
        try:
            analyzed, computed = self._analyze(job["source"], sha,
                                               spans, parent)
        except ReproError as err:
            # lexer/parser rejections raise instead of populating
            # .errors — still the client's fault, so 422 (and
            # memoizable: the same text will fail the same way), never
            # a 500
            return {"status": 422,
                    "body": error_body("program does not parse",
                                       errors=[str(err)],
                                       source_sha=sha),
                    "computed": True}
        errors = [str(e) for e in analyzed.errors]
        if endpoint == "analyze":
            stats = analyzed.cache_stats or {}
            return {"status": 200,
                    "body": {"ok": True, "source_sha": sha,
                             "well_typed": not errors,
                             "errors": errors,
                             "classes": len(analyzed.program.classes),
                             "cache": dict(stats)},
                    "computed": computed}
        if errors:
            return {"status": 422,
                    "body": error_body("program is not well-typed",
                                       errors=errors, source_sha=sha),
                    "computed": computed}
        from ..interp.machine import RunOptions, execute
        options = RunOptions(
            checks_enabled=(job["mode"] == "dynamic"),
            validate=False, instrument=False,
            backend=job["backend"],
            record=(endpoint == "inspect"),
            record_capacity=INSPECT_CAPACITY)
        exec_span = (start_span("execute", "worker", parent)
                     if spans is not None else None)
        try:
            result, machine = execute(analyzed, options)
        finally:
            if exec_span is not None:
                spans.append(end_span(exec_span,
                                      backend=job["backend"]))
        ser_span = (start_span("serialize", "worker", parent)
                    if spans is not None else None)
        body: Dict[str, Any] = {
            "ok": True, "source_sha": sha, "mode": job["mode"],
            "backend": job["backend"],
            "backend_used": (machine.program.backend
                             if machine.program is not None
                             else "interp"),
            "cycles": result.stats.cycles,
            "steps": result.stats.steps,
            "output_lines": len(result.output),
            "output_sha256": hashlib.sha256(
                "\n".join(result.output).encode()).hexdigest(),
            "output": result.output,
        }
        if endpoint == "inspect":
            from ..obs.analyze import build_report
            recorder = machine.recorder
            header = recorder.header(meta={
                "source_sha": sha, "mode": job["mode"]})
            body["report"] = build_report(
                header, recorder.records()).to_dict()
            del body["output"]  # the report subsumes raw output
            self._dump_flight(recorder, job, sha)
        if ser_span is not None:
            spans.append(end_span(ser_span))
        return {"status": 200, "body": body, "computed": computed}

    def _dump_flight(self, recorder: Any, job: Dict[str, Any],
                     sha: str) -> None:
        """Side-channel flight dump for a traced inspect job: the
        header meta carries the trace id (the ``--trace`` join key).
        The *body's* report stays trace-free — bodies are memoized and
        digested, so a trace id there would break the determinism
        contract."""
        trace_id = job.get("trace_id")
        if not self.flight_dir or not trace_id:
            return
        from ..obs.flightrec import dump_flight
        try:
            os.makedirs(self.flight_dir, exist_ok=True)
            path = os.path.join(self.flight_dir,
                                f"{trace_id}.flight.jsonl")
            dump_flight(recorder, path,
                        meta={"source_sha": sha, "mode": job["mode"],
                              "trace_id": trace_id,
                              "fingerprint": job["fingerprint"]})
        except OSError:
            pass  # a full disk must not fail the request


def worker_main(conn, cache_root: Optional[str] = None,
                unwanted=(), flight_dir: Optional[str] = None) -> None:
    """Child-process entry: serve micro-batches until the sentinel."""
    # the parent owns shutdown; a terminal Ctrl-C must not race it
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # fork-inherited parent-side pipe ends (this worker's own and any
    # earlier siblings'): closed immediately so a vanished parent
    # surfaces as EOF on recv, not a pipe held open by ourselves
    for stale in unwanted:
        try:
            stale.close()
        except OSError:
            pass
    worker = WarmWorker(cache_root, flight_dir=flight_dir)
    try:
        while True:
            try:
                batch = conn.recv()
            except (EOFError, OSError):
                break
            if batch is None:
                break
            received = time.monotonic()
            conn.send([worker.handle(job, batch_received=received)
                       for job in batch])
    finally:
        conn.close()
