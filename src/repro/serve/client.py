"""The resilient serve client: retries, backoff, deadlines, breaker.

Every programmatic consumer of ``repro serve`` in this repo — the
bench suites, the chaos campaign, the CLI — talks through this client
rather than raw ``http.client``, so the retry discipline is uniform
and testable:

* **bounded retries with exponential backoff + deterministic jitter**
  — the jitter stream comes from a seeded ``random.Random``, so a
  chaos campaign's sleep pattern (and therefore its request order) is
  a pure function of the seed;
* **Retry-After is honored**: a 429/503 naming a wait never retries
  earlier than the server asked (the quota property test guarantees
  the server never names a wait that's too short — together these kill
  the early-retry thundering herd);
* **deadline budgets**: a per-request budget is decremented across
  attempts and propagated to the server as ``deadline_ms``, so the
  server can cancel queued work the client has already given up on;
* **circuit breaker**: consecutive 5xx responses trip the breaker;
  while open, requests fail fast with a synthetic 503 instead of
  piling onto a struggling service; after ``breaker_reset_s`` one
  probe request is allowed through (half-open);
* **optional hedging**: after enough latency samples, a second
  identical request can be fired when the first exceeds the observed
  p99 — first answer wins.  Identical jobs coalesce server-side, so a
  hedge costs a queue slot, not a duplicate analysis.  Off by default
  (and off in chaos campaigns, where request order must be
  deterministic).

Transport is pluggable (``transport(method, path, body, headers) →
(status, headers, body)``) so unit tests drive the whole policy
surface without a socket; the default transport is a keep-alive
``http.client.HTTPConnection`` with Nagle off, same as the bench
harness.
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.trace import (TRACE_SCHEMA, end_span, new_trace_id,
                         span_duration_s, start_span)
from .protocol import TRACE_HEADER, format_traceparent

__all__ = ["ClientPolicy", "ClientResult", "ResilientClient",
           "ServeClientError"]

#: statuses worth retrying: overload shedding and server-side failures
#: (client errors — 400/404/411/413/422 — never retry: the same bytes
#: would fail the same way)
RETRY_STATUSES = frozenset({429, 500, 502, 503, 504})

#: synthetic status for transport-level failures (connection refused,
#: reset, short read) — retriable, never confused with a real reply
STATUS_TRANSPORT_ERROR = 599


class ServeClientError(RuntimeError):
    """Transport-level failure the default transport reports."""


@dataclass
class ClientPolicy:
    """Knobs for the retry/backoff/breaker/hedge discipline."""

    #: attempts beyond the first (0 = fail on first error)
    max_retries: int = 4
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: seed for the jitter stream — same seed, same sleeps
    jitter_seed: int = 0
    #: consecutive 5xx replies that trip the breaker (0 disables)
    breaker_threshold: int = 5
    breaker_reset_s: float = 1.0
    #: total budget per logical request, spread across attempts and
    #: propagated to the server (None = no budget)
    deadline_budget_ms: Optional[float] = None
    #: fire a duplicate request when the first exceeds observed p99
    hedge: bool = False
    #: successful-latency samples required before hedging arms
    hedge_min_samples: int = 20
    #: stamp one trace context per attempt (``X-Repro-Trace``) and
    #: keep a client-side span record per logical request — each
    #: retry/hedge parents a distinct attempt span, so the server
    #: trees it joins stay distinguishable
    trace: bool = True


@dataclass
class ClientResult:
    """One logical request's outcome, with its retry provenance."""

    status: int
    body: Dict[str, Any]
    attempts: int = 1
    retried: bool = False
    hedged: bool = False
    breaker_open: bool = False
    headers: Dict[str, str] = field(default_factory=dict)
    #: the logical request's trace id ("" when tracing is off)
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def _default_transport(host: str, port: int, timeout: float):
    """A keep-alive HTTP/1.1 connection, rebuilt on any transport
    error (the server may have legitimately dropped it)."""
    import http.client
    import socket as socketlib
    state: Dict[str, Any] = {"conn": None}

    def transport(method: str, path: str, body: Optional[bytes],
                  headers: Dict[str, str]
                  ) -> Tuple[int, Dict[str, str], bytes]:
        conn = state["conn"]
        if conn is None:
            conn = http.client.HTTPConnection(host, port,
                                              timeout=timeout)
            try:
                conn.connect()
                conn.sock.setsockopt(socketlib.IPPROTO_TCP,
                                     socketlib.TCP_NODELAY, 1)
            except OSError as err:
                raise ServeClientError(f"connect: {err}") from err
            state["conn"] = conn
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            return (response.status,
                    {k.title(): v for k, v in response.getheaders()},
                    payload)
        except (OSError, http.client.HTTPException) as err:
            try:
                conn.close()
            finally:
                state["conn"] = None
            raise ServeClientError(str(err)) from err

    def close() -> None:
        conn = state.pop("conn", None)
        if conn is not None:
            conn.close()
        state["conn"] = None

    transport.close = close  # type: ignore[attr-defined]
    return transport


class ResilientClient:
    """Retrying, deadline-aware, breaker-guarded serve client."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 policy: Optional[ClientPolicy] = None,
                 transport: Optional[Callable[..., Tuple[int,
                                                         Dict[str, str],
                                                         bytes]]] = None,
                 timeout: float = 30.0,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or ClientPolicy()
        self._transport = (transport
                           or _default_transport(host, port, timeout))
        self._host, self._port, self._timeout = host, port, timeout
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(self.policy.jitter_seed)
        self._lock = threading.Lock()
        self._consecutive_5xx = 0
        self._breaker_open_until: Optional[float] = None
        self._latencies: List[float] = []  # successful attempts only
        #: counters the bench/chaos harnesses read back
        self.stats: Dict[str, int] = {
            "requests": 0, "attempts": 0, "retries": 0,
            "breaker_fastfail": 0, "hedges": 0,
            "transport_errors": 0}
        #: finished client-side trace records, newest last (same
        #: record shape as the server's — render_trace_text works)
        self.traces: "deque[Dict[str, Any]]" = deque(maxlen=256)

    # -- breaker --------------------------------------------------------

    def _breaker_allows(self) -> bool:
        if self.policy.breaker_threshold <= 0:
            return True
        with self._lock:
            until = self._breaker_open_until
            if until is None:
                return True
            if self._clock() >= until:
                # half-open: let exactly this request probe; a failure
                # re-trips below, a success closes
                self._breaker_open_until = None
                return True
            return False

    def _record_status(self, status: int) -> None:
        if self.policy.breaker_threshold <= 0:
            return
        with self._lock:
            if status >= 500:
                self._consecutive_5xx += 1
                if (self._consecutive_5xx
                        >= self.policy.breaker_threshold):
                    self._breaker_open_until = (
                        self._clock() + self.policy.breaker_reset_s)
            else:
                self._consecutive_5xx = 0
                self._breaker_open_until = None

    @property
    def breaker_open(self) -> bool:
        with self._lock:
            return (self._breaker_open_until is not None
                    and self._clock() < self._breaker_open_until)

    # -- hedging --------------------------------------------------------

    def _hedge_delay(self) -> Optional[float]:
        if not self.policy.hedge:
            return None
        with self._lock:
            samples = sorted(self._latencies)
        if len(samples) < max(2, self.policy.hedge_min_samples):
            return None
        rank = max(0, min(len(samples) - 1,
                          int(0.99 * (len(samples) - 1))))
        return samples[rank]

    def _note_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)
            if len(self._latencies) > 512:
                del self._latencies[:256]

    # -- one attempt ----------------------------------------------------

    def _attempt(self, method: str, path: str, body: Optional[bytes],
                 trace_hdr: Optional[str] = None
                 ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        headers = {"Content-Type": "application/json"}
        if body is not None:
            headers["Content-Length"] = str(len(body))
        if trace_hdr:
            headers[TRACE_HEADER] = trace_hdr
        started = self._clock()
        try:
            status, reply_headers, raw = self._transport(
                method, path, body, headers)
        except ServeClientError as err:
            self.stats["transport_errors"] += 1
            return (STATUS_TRANSPORT_ERROR, {},
                    {"ok": False, "error": str(err)})
        try:
            reply = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            reply = {"ok": False, "error": "unparseable body"}
        if 200 <= status < 300:
            self._note_latency(self._clock() - started)
        return status, reply_headers, reply

    def _hedged_attempt(self, method: str, path: str,
                        body: Optional[bytes], delay: float,
                        trace: Optional[Tuple[str, str,
                                              List[Dict[str, Any]],
                                              Optional[str]]] = None
                        ) -> Tuple[Tuple[int, Dict[str, str],
                                         Dict[str, Any]], bool]:
        """Primary attempt with a delayed duplicate; first reply wins.
        The hedge runs on its own one-shot connection so the two
        in-flight requests never share a socket.  ``trace`` is
        ``(trace_id, root_span_id, spans, primary_header)`` — the
        hedge gets its own span and header, so the two server trees
        stay distinguishable."""
        slot: Dict[str, Any] = {}
        done = threading.Event()

        def run(label: str, transport,
                trace_hdr: Optional[str] = None) -> None:
            headers = {"Content-Type": "application/json"}
            if body is not None:
                headers["Content-Length"] = str(len(body))
            if trace_hdr:
                headers[TRACE_HEADER] = trace_hdr
            try:
                status, hdrs, raw = transport(method, path, body,
                                              headers)
                reply = (json.loads(raw.decode("utf-8"))
                         if raw else {})
            except (ServeClientError, ValueError,
                    UnicodeDecodeError) as err:
                status, hdrs, reply = (STATUS_TRANSPORT_ERROR, {},
                                       {"ok": False,
                                        "error": str(err)})
            with self._lock:
                if "result" not in slot:
                    slot["result"] = (status, hdrs, reply)
                    slot["winner"] = label
            done.set()

        primary_hdr = trace[3] if trace is not None else None
        primary = threading.Thread(
            target=run, args=("primary", self._transport, primary_hdr),
            daemon=True)
        primary.start()
        hedged = False
        hspan: Optional[Dict[str, Any]] = None
        if not done.wait(timeout=delay):
            hedge_transport = _default_transport(
                self._host, self._port, self._timeout)
            hedged = True
            self.stats["hedges"] += 1
            hedge_hdr: Optional[str] = None
            if trace is not None:
                trace_id, root_id, spans, _ = trace
                hspan = start_span("hedge", "client", parent=root_id)
                spans.append(hspan)
                hedge_hdr = format_traceparent(trace_id,
                                               hspan["span"])
            threading.Thread(target=run,
                             args=("hedge", hedge_transport,
                                   hedge_hdr),
                             daemon=True).start()
            done.wait()
        with self._lock:
            result = slot["result"]
            winner = slot.get("winner", "primary")
        if hspan is not None:
            end_span(hspan, winner=winner)
        return result, hedged

    # -- public API -----------------------------------------------------

    def post(self, endpoint: str, payload: Dict[str, Any],
             deadline_ms: Optional[float] = None) -> ClientResult:
        """POST ``/v1/<endpoint>`` with the full retry discipline."""
        policy = self.policy
        budget_ms = (deadline_ms if deadline_ms is not None
                     else policy.deadline_budget_ms)
        start = self._clock()
        path = f"/v1/{endpoint}"
        self.stats["requests"] += 1
        attempts = 0
        hedged_any = False
        tracing = policy.trace
        trace_id = new_trace_id() if tracing else ""
        root = (start_span("client-request", "client",
                           attrs={"endpoint": endpoint})
                if tracing else None)
        spans: List[Dict[str, Any]] = [root] if tracing else []

        def _done(cr: ClientResult) -> ClientResult:
            if tracing:
                cr.trace_id = trace_id
                self._finish_trace(trace_id, root, spans,
                                   cr.status, endpoint)
            return cr

        result: Tuple[int, Dict[str, str], Dict[str, Any]] = (
            STATUS_TRANSPORT_ERROR, {}, {"ok": False,
                                         "error": "no attempt made"})
        while True:
            if not self._breaker_allows():
                self.stats["breaker_fastfail"] += 1
                return _done(ClientResult(
                    503, {"ok": False,
                          "error": "circuit breaker open"},
                    attempts=attempts, retried=attempts > 1,
                    hedged=hedged_any, breaker_open=True))
            remaining_ms: Optional[float] = None
            if budget_ms is not None:
                remaining_ms = budget_ms - (self._clock()
                                            - start) * 1000.0
                if remaining_ms <= 0:
                    return _done(ClientResult(
                        504, {"ok": False,
                              "error": "client deadline exhausted"},
                        attempts=attempts, retried=attempts > 1,
                        hedged=hedged_any))
            wire = dict(payload)
            if remaining_ms is not None:
                # the server sees what's actually left, so it can
                # cancel queued work we've already given up on
                wire["deadline_ms"] = remaining_ms
            body = json.dumps(wire, sort_keys=True).encode("utf-8")
            attempts += 1
            self.stats["attempts"] += 1
            aspan: Optional[Dict[str, Any]] = None
            trace_hdr: Optional[str] = None
            if tracing:
                # one attempt span per wire request: the server's
                # `request` root parents *this* span, so retries show
                # as sibling server trees under one logical request
                aspan = start_span("attempt", "client",
                                   parent=root["span"],
                                   attrs={"n": attempts})
                spans.append(aspan)
                trace_hdr = format_traceparent(trace_id,
                                               aspan["span"])
            delay = self._hedge_delay()
            if delay is not None:
                result, was_hedged = self._hedged_attempt(
                    "POST", path, body, delay,
                    trace=((trace_id, root["span"], spans, trace_hdr)
                           if tracing else None))
                hedged_any = hedged_any or was_hedged
            else:
                result = self._attempt("POST", path, body, trace_hdr)
            status, headers, reply = result
            if aspan is not None:
                end_span(aspan, status=status)
            self._record_status(status)
            if (status not in RETRY_STATUSES
                    and status != STATUS_TRANSPORT_ERROR):
                return _done(ClientResult(
                    status, reply, attempts=attempts,
                    retried=attempts > 1, hedged=hedged_any,
                    headers=headers))
            if attempts > policy.max_retries:
                return _done(ClientResult(
                    status, reply, attempts=attempts,
                    retried=attempts > 1, hedged=hedged_any,
                    headers=headers))
            # exponential backoff with deterministic jitter, never
            # earlier than the server's Retry-After
            wait = min(policy.backoff_cap_s,
                       policy.backoff_base_s * (2 ** (attempts - 1)))
            wait += self._rng.random() * policy.backoff_base_s
            retry_after = headers.get("Retry-After")
            if retry_after:
                try:
                    wait = max(wait, float(retry_after))
                except ValueError:
                    pass
            if budget_ms is not None:
                leftover = (budget_ms
                            - (self._clock() - start) * 1000.0) / 1000.0
                if wait >= leftover:
                    return _done(ClientResult(
                        status, reply, attempts=attempts,
                        retried=attempts > 1, hedged=hedged_any,
                        headers=headers))
            self.stats["retries"] += 1
            if tracing:
                bspan = start_span("backoff", "client",
                                   parent=root["span"],
                                   attrs={"wait_s": round(wait, 4)})
                spans.append(bspan)
                self._sleep(wait)
                end_span(bspan)
            else:
                self._sleep(wait)

    def _finish_trace(self, trace_id: str, root: Dict[str, Any],
                      spans: List[Dict[str, Any]], status: int,
                      endpoint: str) -> Dict[str, Any]:
        end_span(root, status=status)
        for span in spans:
            if span.get("end") is None:
                end_span(span, truncated=True)
        record = {"schema": TRACE_SCHEMA, "trace": trace_id,
                  "root": root["span"], "status": status,
                  "endpoint": endpoint, "tenant": "",
                  "duration_s": round(span_duration_s(root), 9),
                  "flags": [], "attrs": {"process": "client"},
                  "time": round(time.time(), 3), "spans": spans}
        self.traces.append(record)
        return record

    def get(self, path: str) -> Tuple[int, bytes]:
        """Raw GET for ``/metrics`` / ``/healthz`` — no retries; the
        read-only routes are the ground truth probes."""
        try:
            status, _, raw = self._transport("GET", path, None, {})
            return status, raw
        except ServeClientError as err:
            return STATUS_TRANSPORT_ERROR, str(err).encode()

    def close(self) -> None:
        closer = getattr(self._transport, "close", None)
        if closer is not None:
            closer()
