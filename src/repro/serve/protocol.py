"""Wire and job shapes for ``repro serve``.

Everything the service coalesces, memoizes, or shards hangs off two
content addresses:

* :func:`program_sha` — the SHA-256 of the program text, which names
  the shared :class:`~repro.core.cache.AnalysisCache` disk shard for
  the program (see :func:`repro.core.cache.shard_path`);
* :func:`job_fingerprint` — the program sha joined with every request
  knob that can change the observable result (endpoint, checks mode,
  backend).  The simulated machine is deterministic, so two jobs with
  equal fingerprints have byte-identical results — which is what makes
  request coalescing and result memoization *correct*, not merely
  fast.

Jobs travel to the worker pool as plain dicts (they cross a ``Pipe``),
with deadlines as absolute ``time.monotonic()`` instants — on Linux
the monotonic clock is system-wide, so a deadline stamped in the HTTP
thread means the same thing inside a forked worker.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

SCHEMA = "repro-serve/1"

#: the three job endpoints (``/healthz`` and ``/metrics`` are served
#: in the frontend and never reach the pool)
ENDPOINTS = ("analyze", "run", "inspect")

MODES = ("static", "dynamic")

#: request programs larger than this are rejected with 413 before any
#: hashing or queueing happens
MAX_PROGRAM_BYTES = 1 << 20


def program_sha(source: str) -> str:
    """Content address of the program text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def job_fingerprint(endpoint: str, source_sha: str, mode: str,
                    backend: str) -> str:
    """Content address of one *job*: every knob that can alter the
    result is part of the key, nothing else is."""
    return hashlib.sha256(
        f"{SCHEMA}\x00{endpoint}\x00{source_sha}\x00{mode}\x00{backend}"
        .encode("ascii")).hexdigest()


@dataclass
class Job:
    """One unit of work bound for a warm worker."""

    endpoint: str                  # "analyze" | "run" | "inspect"
    source: str
    source_sha: str
    fingerprint: str
    mode: str = "static"           # "static" | "dynamic"
    backend: str = "py"            # request's spot on the ladder
    tenant: str = "default"
    #: absolute time.monotonic() instant, or None for no deadline
    deadline: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        return {"endpoint": self.endpoint, "source": self.source,
                "source_sha": self.source_sha,
                "fingerprint": self.fingerprint, "mode": self.mode,
                "backend": self.backend, "tenant": self.tenant,
                "deadline": self.deadline}


@dataclass
class JobOutcome:
    """What came back from the pool for one job."""

    status: int                    # HTTP status the frontend will send
    body: Dict[str, Any] = field(default_factory=dict)
    #: set when the result was replayed from a worker memo rather than
    #: recomputed; transport-level, never part of ``body`` (so memoized
    #: and fresh bodies stay byte-identical)
    memo: bool = False

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def error_body(message: str, **extra: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {"ok": False, "error": message}
    out.update(extra)
    return out


def validate_request(payload: Any) -> Optional[str]:
    """Shape-check one decoded request body; returns a complaint or
    ``None`` when the payload is well-formed."""
    if not isinstance(payload, dict):
        return "request body must be a JSON object"
    source = payload.get("program")
    if not isinstance(source, str) or not source.strip():
        return "missing 'program' (the source text)"
    mode = payload.get("mode", "static")
    if mode not in MODES:
        return f"mode must be one of {MODES}, not {mode!r}"
    backend = payload.get("backend", "py")
    from ..cli import BACKEND_CHOICES
    if backend not in BACKEND_CHOICES:
        return (f"backend must be one of {BACKEND_CHOICES}, "
                f"not {backend!r}")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            return "deadline_ms must be a positive number"
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        return "tenant must be a non-empty string"
    return None
