"""Wire and job shapes for ``repro serve``.

Everything the service coalesces, memoizes, or shards hangs off two
content addresses:

* :func:`program_sha` — the SHA-256 of the program text, which names
  the shared :class:`~repro.core.cache.AnalysisCache` disk shard for
  the program (see :func:`repro.core.cache.shard_path`);
* :func:`job_fingerprint` — the program sha joined with every request
  knob that can change the observable result (endpoint, checks mode,
  backend).  The simulated machine is deterministic, so two jobs with
  equal fingerprints have byte-identical results — which is what makes
  request coalescing and result memoization *correct*, not merely
  fast.

Jobs travel to the worker pool as plain dicts (they cross a ``Pipe``),
with deadlines as absolute ``time.monotonic()`` instants — on Linux
the monotonic clock is system-wide, so a deadline stamped in the HTTP
thread means the same thing inside a forked worker.

**Trace context** (``repro-trace/1``): every request carries a 128-bit
trace id, a 64-bit span id, and a sampling bit in the
``X-Repro-Trace`` header, formatted
``repro-trace/1;trace=<32 hex>;span=<16 hex>;sampled=<0|1>``.  The
resilient client stamps one per attempt; the server generates a fresh
context at admission when the header is absent or malformed (a bad
header must never shed a request), and always answers with the
resolved id in ``X-Repro-Trace-Id``.  The trace id rides the job dict
across the pool pipe so worker spans join the same tree — and it is
deliberately **not** part of :func:`job_fingerprint`: two jobs from
different traces still have byte-identical results, which is what
keeps coalescing, memoization, and chaos replay identity honest under
tracing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..obs.trace import TRACE_SCHEMA, new_trace_id

SCHEMA = "repro-serve/1"

#: request header carrying the propagated trace context
TRACE_HEADER = "X-Repro-Trace"

#: response header naming the resolved trace id (on *every* response,
#: including shed/rejected ones — errors are the traces worth keeping)
TRACE_ID_HEADER = "X-Repro-Trace-Id"

#: the three job endpoints (``/healthz`` and ``/metrics`` are served
#: in the frontend and never reach the pool)
ENDPOINTS = ("analyze", "run", "inspect")

MODES = ("static", "dynamic")

#: request programs larger than this are rejected with 413 before any
#: hashing or queueing happens
MAX_PROGRAM_BYTES = 1 << 20


def program_sha(source: str) -> str:
    """Content address of the program text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def job_fingerprint(endpoint: str, source_sha: str, mode: str,
                    backend: str) -> str:
    """Content address of one *job*: every knob that can alter the
    result is part of the key, nothing else is."""
    return hashlib.sha256(
        f"{SCHEMA}\x00{endpoint}\x00{source_sha}\x00{mode}\x00{backend}"
        .encode("ascii")).hexdigest()


def format_traceparent(trace_id: str, span_id: str,
                       sampled: bool = True) -> str:
    """Render one trace context for the ``X-Repro-Trace`` header."""
    return (f"{TRACE_SCHEMA};trace={trace_id};span={span_id};"
            f"sampled={1 if sampled else 0}")


def parse_traceparent(value: Optional[str]
                      ) -> Optional[Tuple[str, Optional[str], bool]]:
    """Parse an ``X-Repro-Trace`` header into
    ``(trace_id, parent_span_id, sampled)``.

    Strict on shape, forgiving in consequence: anything malformed —
    wrong schema, short ids, non-hex — returns ``None`` and the server
    starts a fresh trace instead of rejecting the request.
    """
    if not value:
        return None
    parts = value.strip().split(";")
    if not parts or parts[0] != TRACE_SCHEMA:
        return None
    fields: Dict[str, str] = {}
    for part in parts[1:]:
        key, sep, val = part.partition("=")
        if sep:
            fields[key.strip()] = val.strip()
    trace_id = fields.get("trace", "")
    span_id = fields.get("span", "")
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    parent = span_id if (len(span_id) == 16
                         and _is_hex(span_id)) else None
    return trace_id, parent, fields.get("sampled", "1") != "0"


def admit_trace(header_value: Optional[str]
                ) -> Tuple[str, Optional[str], bool]:
    """The admission-side context: the parsed header when sound, a
    freshly generated trace otherwise."""
    parsed = parse_traceparent(header_value)
    if parsed is not None:
        return parsed
    return new_trace_id(), None, True


def _is_hex(value: str) -> bool:
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


@dataclass
class Job:
    """One unit of work bound for a warm worker."""

    endpoint: str                  # "analyze" | "run" | "inspect"
    source: str
    source_sha: str
    fingerprint: str
    mode: str = "static"           # "static" | "dynamic"
    backend: str = "py"            # request's spot on the ladder
    tenant: str = "default"
    #: absolute time.monotonic() instant, or None for no deadline
    deadline: Optional[float] = None
    #: propagated trace context: the request's trace id and the root
    #: ``request`` span id worker/pool spans hang from.  Transport
    #: only — never part of the fingerprint, never part of the body
    #: (equal fingerprints must stay byte-identical across traces)
    trace_id: str = ""
    root_span: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return {"endpoint": self.endpoint, "source": self.source,
                "source_sha": self.source_sha,
                "fingerprint": self.fingerprint, "mode": self.mode,
                "backend": self.backend, "tenant": self.tenant,
                "deadline": self.deadline, "trace_id": self.trace_id,
                "root_span": self.root_span}


@dataclass
class JobOutcome:
    """What came back from the pool for one job."""

    status: int                    # HTTP status the frontend will send
    body: Dict[str, Any] = field(default_factory=dict)
    #: set when the result was replayed from a worker memo rather than
    #: recomputed; transport-level, never part of ``body`` (so memoized
    #: and fresh bodies stay byte-identical)
    memo: bool = False

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def error_body(message: str, **extra: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {"ok": False, "error": message}
    out.update(extra)
    return out


def validate_request(payload: Any) -> Optional[str]:
    """Shape-check one decoded request body; returns a complaint or
    ``None`` when the payload is well-formed."""
    if not isinstance(payload, dict):
        return "request body must be a JSON object"
    source = payload.get("program")
    if not isinstance(source, str) or not source.strip():
        return "missing 'program' (the source text)"
    mode = payload.get("mode", "static")
    if mode not in MODES:
        return f"mode must be one of {MODES}, not {mode!r}"
    backend = payload.get("backend", "py")
    from ..cli import BACKEND_CHOICES
    if backend not in BACKEND_CHOICES:
        return (f"backend must be one of {BACKEND_CHOICES}, "
                f"not {backend!r}")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            return "deadline_ms must be a positive number"
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        return "tenant must be a non-empty string"
    return None
