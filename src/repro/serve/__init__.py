"""``repro serve``: sharded analysis-as-a-service.

A long-lived stdlib-only HTTP service that runs analyze→run→inspect
jobs on a pre-forked pool of warm workers over the shared
content-addressed :class:`~repro.core.cache.AnalysisCache` tree, with
request coalescing, micro-batching, bounded-queue admission control,
per-tenant token-bucket quotas, and deadline propagation.  See
``docs/SERVING.md`` for the architecture and tuning guide.

The resilience plane lives alongside: deterministic service-fault
injection (:mod:`~repro.serve.faults`), the healthy→brownout→shed
degradation ladder (:mod:`~repro.serve.degrade`), a self-healing
retrying client (:mod:`~repro.serve.client`), and seeded chaos
campaigns against a live service (:mod:`~repro.serve.chaos`).  See
``docs/ROBUSTNESS.md``.

Every request carries a wire-propagated trace context
(``X-Repro-Trace``, schema ``repro-trace/1``): the client, frontend,
pool dispatcher and warm workers each contribute spans to one tree,
tail-sampled into the service's trace buffer and analysed by ``repro
trace``.  See the "Request tracing" section of
``docs/OBSERVABILITY.md``.
"""

from .client import ClientPolicy, ResilientClient, ServeClientError
from .degrade import (RUNG_BROWNOUT, RUNG_HEALTHY, RUNG_NAMES,
                      RUNG_SHED, DegradationLadder)
from .faults import (SERVICE_FAULT_SITES, ReplayServiceInjector,
                     ServiceFaultInjector, ServiceFaultPlan)
from .pool import PendingJob, WorkerPool
from .protocol import (ENDPOINTS, TRACE_HEADER, TRACE_ID_HEADER, Job,
                       JobOutcome, admit_trace, format_traceparent,
                       job_fingerprint, parse_traceparent, program_sha)
from .quota import QuotaTable, TokenBucket
from .server import ServeConfig, ServeService
from .worker import WarmWorker

__all__ = [
    "ENDPOINTS", "Job", "JobOutcome", "PendingJob", "QuotaTable",
    "ServeConfig", "ServeService", "TokenBucket", "WarmWorker",
    "WorkerPool", "job_fingerprint", "program_sha",
    "SERVICE_FAULT_SITES", "ServiceFaultPlan", "ServiceFaultInjector",
    "ReplayServiceInjector", "DegradationLadder", "RUNG_HEALTHY",
    "RUNG_BROWNOUT", "RUNG_SHED", "RUNG_NAMES", "ClientPolicy",
    "ResilientClient", "ServeClientError", "TRACE_HEADER",
    "TRACE_ID_HEADER", "admit_trace", "format_traceparent",
    "parse_traceparent",
]
