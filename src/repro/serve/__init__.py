"""``repro serve``: sharded analysis-as-a-service.

A long-lived stdlib-only HTTP service that runs analyze→run→inspect
jobs on a pre-forked pool of warm workers over the shared
content-addressed :class:`~repro.core.cache.AnalysisCache` tree, with
request coalescing, micro-batching, bounded-queue admission control,
per-tenant token-bucket quotas, and deadline propagation.  See
``docs/SERVING.md`` for the architecture and tuning guide.
"""

from .pool import PendingJob, WorkerPool
from .protocol import (ENDPOINTS, Job, JobOutcome, job_fingerprint,
                       program_sha)
from .quota import QuotaTable, TokenBucket
from .server import ServeConfig, ServeService
from .worker import WarmWorker

__all__ = [
    "ENDPOINTS", "Job", "JobOutcome", "PendingJob", "QuotaTable",
    "ServeConfig", "ServeService", "TokenBucket", "WarmWorker",
    "WorkerPool", "job_fingerprint", "program_sha",
]
