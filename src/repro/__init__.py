"""Ownership types for safe region-based memory management in real-time
Java — a full reproduction of Boyapati, Sălcianu, Beebee & Rinard
(PLDI 2003).

The library has four layers:

* :mod:`repro.lang`   — lexer/parser/pretty-printer for the paper's core
  language (Classic Java + owner parameters, region kinds, portals,
  effects, ``fork``/``RT fork``).
* :mod:`repro.core`   — the static type system (Appendix B), Section 2.5
  inference/defaults, and the Figure 6 relation extraction.
* :mod:`repro.rtsj`   — the simulated RTSJ platform: LT/VT/shared regions,
  subregions, portals, dynamic checks, garbage collector, scheduler.
* :mod:`repro.interp` — the execution engine and the Section 2.6
  translation to RTSJ.

Quick start::

    from repro import analyze, run_source, RunOptions

    analyzed = analyze(source_text)      # parse → infer → typecheck
    analyzed.require_well_typed()
    rtsj = run_source(analyzed, RunOptions(checks_enabled=True))
    ours = run_source(analyzed, RunOptions(checks_enabled=False))
    assert rtsj.output == ours.output    # same behaviour, fewer cycles
"""

from .core.api import AnalyzedProgram, analyze, typecheck_source
from .errors import (IllegalAssignmentError, InferenceError,
                     MemoryAccessError, OwnershipTypeError, ParseError,
                     RealtimeViolationError, ReproError)
from .interp.machine import Machine, RunOptions, RunResult, run_source
from .interp.compile_py import (CompiledProgram, CompileError,
                                compile_to_python)
from .interp.translate import AllocStrategy, Translation, translate
from .lang import parse_program, pretty_program
from .rtsj.stats import CostModel, Stats

__version__ = "1.0.0"

__all__ = [
    "analyze", "typecheck_source", "AnalyzedProgram",
    "parse_program", "pretty_program",
    "run_source", "Machine", "RunOptions", "RunResult",
    "translate", "Translation", "AllocStrategy",
    "compile_to_python", "CompiledProgram", "CompileError",
    "CostModel", "Stats",
    "ReproError", "ParseError", "OwnershipTypeError", "InferenceError",
    "IllegalAssignmentError", "MemoryAccessError",
    "RealtimeViolationError",
    "__version__",
]
