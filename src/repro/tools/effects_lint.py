"""Effects linter: find redundant ``accesses`` declarations.

The effect system is a contract: a method's clause must *cover* every
owner the body (and everything it transitively calls or spawns) accesses.
Over-declaring is sound but costly — a too-wide clause forces every
caller to widen too, and (Section 2.3) an unnecessary ``heap`` effect
makes a method unusable from real-time threads.

``lint_effects`` re-runs the typechecker with an observer on the
``E ⊢ X ≽ o`` judgment, records each method's actually-demanded owners,
and reports declared effects that cover no demand the rest of the clause
would not also cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.api import AnalyzedProgram, analyze
from ..core.checker import Checker
from ..core.env import Env
from ..core.owners import HEAP, Owner, RT_EFFECT


@dataclass
class MethodEffectsReport:
    class_name: str
    method_name: str
    declared: Tuple[Owner, ...]
    demanded: Tuple[Owner, ...]
    redundant: Tuple[Owner, ...]

    @property
    def qualified(self) -> str:
        return f"{self.class_name}.{self.method_name}"


class _ObservingChecker(Checker):
    def __init__(self, program_info):
        super().__init__(program_info)
        self.demands: Dict[Tuple[str, str], List[Tuple[Env, Owner]]] = {}
        self._current_key: Optional[Tuple[str, str]] = None
        self._method_envs: Dict[Tuple[str, str], Env] = {}

    def _check_method(self, class_env, info, mi):
        self._current_key = (info.name, mi.name)
        self.demands.setdefault(self._current_key, [])
        try:
            super()._check_method(class_env, info, mi)
        finally:
            self._current_key = None

    def check_block(self, env, block, permitted, rcr):
        # remember the outermost env of the current method so entailment
        # questions can be answered afterwards
        if self._current_key is not None \
                and self._current_key not in self._method_envs:
            self._method_envs[self._current_key] = env
        super().check_block(env, block, permitted, rcr)

    def _covers(self, env, permitted, owner):
        if self._current_key is not None:
            self.demands[self._current_key].append((env, owner))
        return super()._covers(env, permitted, owner)


def lint_effects(source) -> List[MethodEffectsReport]:
    """Report per-method declared vs demanded effects; methods with
    redundant declarations come back with a non-empty ``redundant``."""
    analyzed = source if isinstance(source, AnalyzedProgram) \
        else analyze(source)
    analyzed.require_well_typed()
    checker = _ObservingChecker(analyzed.info)
    errors = checker.check()
    if errors:
        raise errors[0]

    reports: List[MethodEffectsReport] = []
    for (class_name, method_name), demands in checker.demands.items():
        info = analyzed.info.classes[class_name]
        mi = info.methods[method_name]
        declared = tuple(mi.effects or ())
        env = checker._method_envs.get((class_name, method_name))
        redundant: List[Owner] = []
        if env is not None:
            def covers_all(clause: frozenset) -> bool:
                for demand_env, owner in demands:
                    if owner == RT_EFFECT:
                        if RT_EFFECT not in clause:
                            return False
                    elif owner == HEAP:
                        if HEAP not in clause:
                            return False
                    elif not demand_env.effect_covers(clause, owner):
                        return False
                return True

            # greedy elimination; try to drop the special owners first —
            # an unnecessary `heap` is what locks real-time threads out
            keep = frozenset(declared)
            order = sorted(
                declared,
                key=lambda o: (o != HEAP, o != Owner("immortal"), str(o)))
            for candidate in order:
                trial = keep - {candidate}
                if covers_all(trial):
                    keep = trial
                    redundant.append(candidate)
        demanded = tuple(dict.fromkeys(owner for _env, owner in demands))
        reports.append(MethodEffectsReport(
            class_name, method_name, declared, demanded,
            tuple(redundant)))
    return reports


def format_report(reports: List[MethodEffectsReport],
                  only_redundant: bool = True) -> str:
    lines = []
    for report in sorted(reports, key=lambda r: r.qualified):
        if only_redundant and not report.redundant:
            continue
        declared = ", ".join(map(str, report.declared)) or "(none)"
        extra = ", ".join(map(str, report.redundant))
        lines.append(f"{report.qualified}: accesses {declared}"
                     + (f"  [redundant: {extra}]" if extra else ""))
    return "\n".join(lines) if lines else "(no redundant effects)"
