"""Execution timeline: render the machine's event log as text.

The simulator records region/thread lifecycle and GC events with their
cycle timestamps (``Stats.events``).  This module renders them as an
aligned text timeline — the quickest way to *see* the paper's memory
model working: subregions flushing every iteration, scratch regions dying
with their phase, the collector firing while the real-time thread's
events continue undisturbed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rtsj.stats import Stats

_MARKS = {
    "region-created": "+",
    "region-destroyed": "-",
    "region-flushed": "~",
    "thread-spawned": ">",
    "thread-finished": "<",
    "gc": "#",
}


def render_timeline(stats: Stats, width: int = 60,
                    kinds: Optional[List[str]] = None) -> str:
    """Aligned text rendering of the event log.

    One line per event: cycle timestamp, a mark per event kind
    (``+``/``-`` region created/destroyed, ``~`` flushed, ``>``/``<``
    thread spawned/finished, ``#`` GC), positioned proportionally to time
    along a ``width``-column gutter, followed by the description.
    """
    events = stats.events
    if kinds is not None:
        wanted = set(kinds)
        events = [e for e in events if e[1] in wanted]
    if not events:
        return "(no events)"
    horizon = max(stats.cycles, events[-1][0], 1)
    lines = []
    for cycle, kind, subject in events:
        column = min(int(cycle / horizon * (width - 1)), width - 1)
        mark = _MARKS.get(kind, "?")
        gutter = " " * column + mark + " " * (width - column - 1)
        lines.append(f"{cycle:>10} |{gutter}| {kind:<17} {subject}")
    legend = ("legend: + region created   - region destroyed   "
              "~ region flushed\n"
              "        > thread spawned   < thread finished    # gc run")
    return "\n".join(lines) + "\n" + legend


def event_counts(stats: Stats) -> dict:
    out: dict = {}
    for _cycle, kind, _subject in stats.events:
        out[kind] = out.get(kind, 0) + 1
    return out


def events_between(stats: Stats, start: int,
                   end: int) -> List[Tuple[int, str, str]]:
    return [e for e in stats.events if start <= e[0] <= end]
