"""Execution timeline: render the machine's event log as text.

The simulator records structured events in two places: the tracer
(:class:`repro.obs.TraceEvent`, when tracing was requested) and the
flight recorder (:class:`repro.obs.FlightRecord`, when post-mortem
recording was requested).  This module renders either as an aligned
text timeline — the quickest way to *see* the paper's memory model
working: subregions flushing every iteration, scratch regions dying
with their phase, the collector firing while the real-time thread's
events continue undisturbed.

When a run carried a flight recorder, it is the preferred source — it
captures every event kind (policy decisions, faults, check elisions)
regardless of trace detail level.  Otherwise the tracer's records are
used.  Both record shapes expose ``cycle``/``kind``/``subject``, so
the rendering is source-agnostic.

Marks and the legend both derive from the single :data:`MARKS` table,
so adding an event kind in the obs layer means adding exactly one row
here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..rtsj.stats import Stats

#: kind -> (mark, legend description).  The single source of truth for
#: both the gutter marks and the rendered legend.
MARKS = {
    "region-created": ("+", "region created"),
    "region-destroyed": ("-", "region destroyed"),
    "region-flushed": ("~", "region flushed"),
    "region-enter": ("[", "region entered"),
    "region-exit": ("]", "region exited"),
    "alloc": (".", "allocation"),
    "check-assign": ("!", "assignment check"),
    "check-read": ("?", "read check"),
    "check-elide-assign": ("e", "assign check elided"),
    "check-elide-read": ("r", "read check elided"),
    "thread-spawned": (">", "thread spawned"),
    "thread-finished": ("<", "thread finished"),
    "thread-aborted": ("x", "thread aborted"),
    "thread-failed": ("x", "thread failed"),
    "gc": ("#", "gc run"),
    "fault-injected": ("F", "fault injected"),
    "recovery": ("R", "recovery retry"),
    "vt-spill": ("S", "VT overflow spill"),
    "portal-read": ("p", "portal read"),
    "portal-write": ("P", "portal write"),
    "policy": ("%", "policy decision"),
    "checker-phase": ("@", "checker phase"),
}

#: mark used for kinds missing from :data:`MARKS`
UNKNOWN_MARK = "*"


def timeline_events(stats: Stats) -> Sequence:
    """The run's event records, preferring the flight recorder (full
    kind coverage) over the tracer."""
    recorder = stats.recorder
    if recorder is not None and recorder.total:
        return recorder.records()
    return stats.tracer.records


def _legend(kinds_present) -> str:
    """Legend lines derived from :data:`MARKS`, restricted to the kinds
    that actually occur (falling back to the full table when empty)."""
    rows = [(mark, desc) for kind, (mark, desc) in MARKS.items()
            if not kinds_present or kind in kinds_present]
    if any(kind not in MARKS for kind in kinds_present):
        rows.append((UNKNOWN_MARK, "other"))
    if not rows:
        rows = [(mark, desc) for mark, desc in MARKS.values()]
    cells = [f"{mark} {desc:<18}" for mark, desc in rows]
    lines = []
    for i in range(0, len(cells), 3):
        prefix = "legend: " if i == 0 else "        "
        lines.append(prefix + " ".join(cells[i:i + 3]).rstrip())
    return "\n".join(lines)


def render_timeline(stats: Stats, width: int = 60,
                    kinds: Optional[List[str]] = None) -> str:
    """Aligned text rendering of the event log.

    One line per event: cycle timestamp, the kind's mark positioned
    proportionally to time along a ``width``-column gutter, then the
    kind and subject.  ``kinds`` filters to a subset of event kinds.
    """
    events = timeline_events(stats)
    if kinds is not None:
        wanted = set(kinds)
        events = [e for e in events if e.kind in wanted]
    if not events:
        return "(no events)"
    horizon = max(stats.cycles, events[-1].cycle, 1)
    lines = []
    present = set()
    for event in events:
        present.add(event.kind)
        column = min(int(event.cycle / horizon * (width - 1)), width - 1)
        mark = MARKS.get(event.kind, (UNKNOWN_MARK, ""))[0]
        gutter = " " * column + mark + " " * (width - column - 1)
        lines.append(f"{event.cycle:>10} |{gutter}| {event.kind:<17} "
                     f"{event.subject}")
    return "\n".join(lines) + "\n" + _legend(present)


def event_counts(stats: Stats) -> dict:
    recorder = stats.recorder
    if recorder is not None and recorder.total:
        return recorder.kinds()
    return stats.tracer.kinds()


def events_between(stats: Stats, start: int,
                   end: int) -> List[Tuple[int, str, str]]:
    """``(cycle, kind, subject)`` triples inside a cycle window."""
    return [(e.cycle, e.kind, e.subject) for e in timeline_events(stats)
            if start <= e.cycle <= end]
