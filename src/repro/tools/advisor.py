"""Region-sizing and placement advisor.

The paper (Section 4): "The additional development burden consists of
grouping objects into regions and determining the maximum size of LT
regions [31, 32]" — the cited works do this with static preallocation
analysis and offline dynamic analysis [26, 27].  This module implements
the dynamic-analysis flavour on our simulated platform: run the program
once under instrumentation, then report

* **LT budget suggestions** — the observed peak occupancy of every LT
  region/subregion with headroom, vs the declared budget (flagging both
  near-overflow and gross over-provisioning);
* **VT → LT candidates** — VT regions whose peak size is small and
  stable enough that preallocating them would give real-time threads
  linear-time allocation;
* **heap escape report** — how many heap-allocated objects were
  reclaimed by the collector (i.e. died young), the population the
  paper's region discipline wants moved out of the heap.

The advisor never changes semantics; it only reads the statistics the
machine already tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.api import AnalyzedProgram, analyze
from ..interp.machine import Machine, RunOptions
from ..rtsj.regions import LT, VT


@dataclass
class RegionAdvice:
    name: str
    kind_name: str
    policy: str
    declared_budget: int
    peak_bytes: int
    suggested_budget: int
    note: str


@dataclass
class AdvisorReport:
    regions: List[RegionAdvice] = field(default_factory=list)
    heap_allocated: int = 0
    heap_collected: int = 0
    gc_runs: int = 0

    @property
    def heap_death_rate(self) -> float:
        if not self.heap_allocated:
            return 0.0
        return self.heap_collected / self.heap_allocated

    def lt_suggestions(self) -> Dict[str, int]:
        return {advice.name: advice.suggested_budget
                for advice in self.regions if advice.policy == LT}

    def vt_to_lt_candidates(self) -> List[str]:
        return [advice.name for advice in self.regions
                if advice.policy == VT and "candidate" in advice.note]

    def format(self) -> str:
        lines = [f"{'Region':<22} {'Policy':>6} {'Declared':>9} "
                 f"{'Peak':>7} {'Suggest':>8}  Note"]
        lines.append("-" * len(lines[0]))
        for advice in self.regions:
            declared = (str(advice.declared_budget)
                        if advice.policy == LT else "-")
            lines.append(
                f"{advice.name:<22} {advice.policy:>6} {declared:>9} "
                f"{advice.peak_bytes:>7} {advice.suggested_budget:>8}  "
                f"{advice.note}")
        lines.append(
            f"heap: {self.heap_allocated} objects allocated, "
            f"{self.heap_collected} collected "
            f"({self.heap_death_rate:.0%} died young) across "
            f"{self.gc_runs} GCs")
        return "\n".join(lines)


#: round suggested budgets up to this granularity
_GRANULARITY = 256
#: headroom multiplier over the observed peak
_HEADROOM = 1.5


def _suggest(peak: int) -> int:
    target = max(int(peak * _HEADROOM), _GRANULARITY)
    return ((target + _GRANULARITY - 1) // _GRANULARITY) * _GRANULARITY


def advise(source: Union[str, AnalyzedProgram],
           options: Optional[RunOptions] = None) -> AdvisorReport:
    """Run ``source`` once under instrumentation and produce sizing
    advice."""
    analyzed = analyze(source) if isinstance(source, str) else source
    analyzed.require_well_typed()
    machine = Machine(analyzed, options or RunOptions())
    result = machine.run()

    report = AdvisorReport(gc_runs=result.stats.gc_runs)
    heap = machine.regions.heap
    # every heap object ever allocated is either still resident or was
    # swept by the collector
    collected = result.stats.gc_objects_collected
    report.heap_allocated = len(heap.objects) + collected
    report.heap_collected = collected

    for area in machine.regions.areas:
        if area.is_heap or area.is_immortal:
            continue
        if area.policy == LT:
            usage = (area.peak_bytes / area.lt_budget
                     if area.lt_budget else 1.0)
            if usage > 0.9:
                note = "near overflow — raise the budget"
            elif usage < 0.25 and area.lt_budget > _GRANULARITY:
                note = "over-provisioned — shrink the budget"
            else:
                note = "well sized"
            report.regions.append(RegionAdvice(
                area.name, area.kind_name, LT, area.lt_budget,
                area.peak_bytes, _suggest(area.peak_bytes), note))
        else:
            stable = area.generation <= 1  # never re-grown after a flush
            small = area.peak_bytes <= 64 * 1024
            note = ("LT candidate — preallocate "
                    f"{_suggest(area.peak_bytes)} bytes for linear-time "
                    "allocation" if (stable and small)
                    else "keep VT (large or growing)")
            report.regions.append(RegionAdvice(
                area.name, area.kind_name, VT, 0, area.peak_bytes,
                _suggest(area.peak_bytes), note))
    return report
