"""Developer tools layered on the reproduction.

* :mod:`~repro.tools.advisor` — profiling-based advice for the two
  development burdens the paper names in Section 4: "grouping objects
  into regions and determining the maximum size of LT regions [31, 32]".
* :mod:`~repro.tools.effects_lint` — find redundant ``accesses``
  declarations (an unnecessary heap effect makes a method unusable from
  real-time threads).
* :mod:`~repro.tools.timeline` — render the machine's region/thread/GC
  event log as a text timeline.
"""

from .advisor import AdvisorReport, advise
from .effects_lint import MethodEffectsReport, format_report, lint_effects
from .timeline import event_counts, render_timeline

__all__ = [
    "AdvisorReport", "advise",
    "MethodEffectsReport", "lint_effects", "format_report",
    "render_timeline", "event_counts",
]
